//! # lp-bbv — execution slicing and basic-block-vector profiling
//!
//! Implements LoopPoint's *where to simulate* analysis (§III-A/B/C of the
//! paper):
//!
//! * [`LoopAlignedSlicer`] cuts the (constrained, replayed) execution into
//!   slices of approximately `N × slice_base` **spin-filtered** global
//!   instructions for an N-thread run, ending each slice at the next
//!   execution of a *main-image loop header* — so every boundary is a
//!   stable `(PC, count)` marker;
//! * per-slice, per-thread BBVs are collected (block entries weighted by
//!   block length), with every library-image instruction excluded — the
//!   paper's `libiomp5.so` filter — and concatenated per thread so
//!   heterogeneous thread behaviour (Fig. 3) is visible to clustering;
//! * [`FixedSlicer`] is the *naive multi-threaded SimPoint* baseline the
//!   paper criticizes in §II: fixed global instruction-count slices, no
//!   filtering, no loop alignment, boundaries expressed as raw global
//!   instruction indices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixed;
mod slicer;
mod vector;

pub use fixed::{FixedSlice, FixedSlicer};
pub use slicer::{LoopAlignedSlicer, Slice, SlicePolicy, SliceProfile};
pub use vector::SparseVec;
