//! Sparse feature vectors (basic-block vectors).

use std::collections::HashMap;

/// A sparse non-negative feature vector keyed by dimension index.
///
/// Dimensions encode `(thread, basic block)` pairs so per-thread behaviour
/// is preserved under concatenation (§III-B: "per-region BBVs of each
/// thread are concatenated into a longer, global BBV").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u64, f64)>,
}

impl SparseVec {
    /// Builds a vector from an accumulation map.
    pub fn from_map(map: &HashMap<u64, u64>) -> Self {
        let mut entries: Vec<(u64, f64)> = map
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(&k, &v)| (k, v as f64))
            .collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        SparseVec { entries }
    }

    /// Rebuilds a vector from previously captured [`SparseVec::entries`]
    /// pairs (deserialization path). Entries are re-sorted and zero weights
    /// dropped, so the result is always in canonical form.
    pub fn from_entries(mut entries: Vec<(u64, f64)>) -> Self {
        entries.retain(|&(_, v)| v != 0.0);
        entries.sort_unstable_by_key(|&(k, _)| k);
        SparseVec { entries }
    }

    /// The non-zero `(dimension, weight)` pairs, sorted by dimension.
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// Number of non-zero dimensions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of weights (the L1 norm for non-negative vectors).
    pub fn l1(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Returns an L1-normalized copy (vectors compare by *shape* of work,
    /// not slice length — slices are only approximately equal-sized).
    #[must_use]
    pub fn normalized(&self) -> SparseVec {
        let l1 = self.l1();
        if l1 == 0.0 {
            return self.clone();
        }
        SparseVec {
            entries: self.entries.iter().map(|&(k, v)| (k, v / l1)).collect(),
        }
    }

    /// Euclidean distance to another sparse vector.
    pub fn distance(&self, other: &SparseVec) -> f64 {
        self.dist_sq_to(other).sqrt()
    }

    /// Squared Euclidean distance to another sparse vector, computed by a
    /// single merge walk over the two sorted entry lists — no allocation,
    /// no square root. This is the hot-path primitive shared by batch
    /// k-means and the online (live-mode) classifier; [`SparseVec::distance`]
    /// is exactly `dist_sq_to(..).sqrt()`.
    pub fn dist_sq_to(&self, other: &SparseVec) -> f64 {
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0f64;
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ka, va)), Some(&(kb, vb))) => {
                    if ka == kb {
                        acc += (va - vb) * (va - vb);
                        i += 1;
                        j += 1;
                    } else if ka < kb {
                        acc += va * va;
                        i += 1;
                    } else {
                        acc += vb * vb;
                        j += 1;
                    }
                }
                (Some(&(_, va)), None) => {
                    acc += va * va;
                    i += 1;
                }
                (None, Some(&(_, vb))) => {
                    acc += vb * vb;
                    j += 1;
                }
                (None, None) => break,
            }
        }
        acc
    }

    /// Squared Euclidean distance between the *L1-normalized* views of the
    /// two vectors, scaling each weight on the fly — the non-allocating
    /// equivalent of `self.normalized().dist_sq_to(&other.normalized())`
    /// (bit-identical: the same divisions, subtractions, and summation
    /// order). The previous hot path cloned both operands via
    /// [`SparseVec::normalized`] per comparison; online classification
    /// compares one region vector against every live centroid, so those
    /// clones dominated.
    pub fn dist_sq_to_normalized(&self, other: &SparseVec) -> f64 {
        let la = self.l1();
        let lb = other.l1();
        let sa = if la == 0.0 { 1.0 } else { la };
        let sb = if lb == 0.0 { 1.0 } else { lb };
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0f64;
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ka, va)), Some(&(kb, vb))) => {
                    if ka == kb {
                        let d = va / sa - vb / sb;
                        acc += d * d;
                        i += 1;
                        j += 1;
                    } else if ka < kb {
                        let a = va / sa;
                        acc += a * a;
                        i += 1;
                    } else {
                        let b = vb / sb;
                        acc += b * b;
                        j += 1;
                    }
                }
                (Some(&(_, va)), None) => {
                    let a = va / sa;
                    acc += a * a;
                    i += 1;
                }
                (None, Some(&(_, vb))) => {
                    let b = vb / sb;
                    acc += b * b;
                    j += 1;
                }
                (None, None) => break,
            }
        }
        acc
    }

    /// Decaying centroid update: `self ← (1 − alpha)·self + alpha·point`,
    /// merging the two sorted entry lists in one pass. Entries present in
    /// only one operand decay (or fade in) accordingly; exact zeros are
    /// dropped to keep the canonical form.
    pub fn decay_toward(&mut self, point: &SparseVec, alpha: f64) {
        let keep = 1.0 - alpha;
        let mut merged = Vec::with_capacity(self.entries.len() + point.entries.len());
        let mut i = 0;
        let mut j = 0;
        while i < self.entries.len() || j < point.entries.len() {
            match (self.entries.get(i), point.entries.get(j)) {
                (Some(&(ka, va)), Some(&(kb, vb))) => {
                    if ka == kb {
                        merged.push((ka, keep * va + alpha * vb));
                        i += 1;
                        j += 1;
                    } else if ka < kb {
                        merged.push((ka, keep * va));
                        i += 1;
                    } else {
                        merged.push((kb, alpha * vb));
                        j += 1;
                    }
                }
                (Some(&(ka, va)), None) => {
                    merged.push((ka, keep * va));
                    i += 1;
                }
                (None, Some(&(kb, vb))) => {
                    merged.push((kb, alpha * vb));
                    j += 1;
                }
                (None, None) => break,
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        self.entries = merged;
    }
}

/// Encodes a `(thread, block)` pair as a vector dimension.
pub(crate) fn dim(tid: usize, block: u32) -> u64 {
    ((tid as u64) << 32) | u64::from(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(u64, u64)]) -> SparseVec {
        let map: HashMap<u64, u64> = pairs.iter().copied().collect();
        SparseVec::from_map(&map)
    }

    #[test]
    fn from_map_sorts_and_drops_zeros() {
        let v = vec_of(&[(5, 2), (1, 3), (9, 0)]);
        assert_eq!(v.entries(), &[(1, 3.0), (5, 2.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.l1(), 5.0);
    }

    #[test]
    fn normalization() {
        let v = vec_of(&[(0, 1), (1, 3)]).normalized();
        assert!((v.l1() - 1.0).abs() < 1e-12);
        assert!((v.entries()[1].1 - 0.75).abs() < 1e-12);
        let empty = SparseVec::default().normalized();
        assert!(empty.is_empty());
    }

    #[test]
    fn distance_properties() {
        let a = vec_of(&[(0, 3)]);
        let b = vec_of(&[(1, 4)]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12, "disjoint dims");
        assert_eq!(a.distance(&a), 0.0);
        let c = vec_of(&[(0, 1)]);
        assert!((a.distance(&c) - 2.0).abs() < 1e-12, "shared dim");
        // Symmetry.
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    /// The pre-refactor distance implementation, kept verbatim as the
    /// reference: allocate normalized copies, then walk. The micro-assert
    /// below pins the non-allocating rewrite to it bit-for-bit, so batch
    /// clustering results cannot drift.
    fn legacy_normalized_distance_sq(a: &SparseVec, b: &SparseVec) -> f64 {
        let (a, b) = (a.normalized(), b.normalized());
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0f64;
        while i < a.entries.len() || j < b.entries.len() {
            match (a.entries.get(i), b.entries.get(j)) {
                (Some(&(ka, va)), Some(&(kb, vb))) => {
                    if ka == kb {
                        acc += (va - vb) * (va - vb);
                        i += 1;
                        j += 1;
                    } else if ka < kb {
                        acc += va * va;
                        i += 1;
                    } else {
                        acc += vb * vb;
                        j += 1;
                    }
                }
                (Some(&(_, va)), None) => {
                    acc += va * va;
                    i += 1;
                }
                (None, Some(&(_, vb))) => {
                    acc += vb * vb;
                    j += 1;
                }
                (None, None) => break,
            }
        }
        acc
    }

    #[test]
    fn dist_sq_to_is_bit_identical_to_the_allocating_path() {
        // A spread of overlap patterns: disjoint, partial, identical,
        // empty, and awkward magnitudes that exercise rounding.
        let cases = [
            vec_of(&[(0, 3), (7, 11), (1 << 40, 5)]),
            vec_of(&[(0, 1)]),
            vec_of(&[(7, 11), (9, 2)]),
            vec_of(&[(2, 1_000_000_007), (3, 1)]),
            SparseVec::default(),
            vec_of(&[(0, 3), (1, 4), (2, 5), (3, 6), (4, 7)]),
        ];
        for a in &cases {
            for b in &cases {
                // distance == sqrt(dist_sq_to), exactly.
                assert_eq!(
                    a.distance(b).to_bits(),
                    a.dist_sq_to(b).sqrt().to_bits(),
                    "{a:?} vs {b:?}"
                );
                // The fused normalized walk matches normalize-then-walk
                // bit-for-bit (same divisions, same summation order).
                assert_eq!(
                    a.dist_sq_to_normalized(b).to_bits(),
                    legacy_normalized_distance_sq(a, b).to_bits(),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn decay_toward_blends_and_fades() {
        let mut c = vec_of(&[(0, 4), (1, 8)]);
        let p = vec_of(&[(1, 4), (2, 16)]);
        c.decay_toward(&p, 0.25);
        assert_eq!(c.entries(), &[(0, 3.0), (1, 7.0), (2, 4.0)]);
        // alpha = 1 replaces the centroid outright.
        let mut c = vec_of(&[(0, 4)]);
        c.decay_toward(&p, 1.0);
        assert_eq!(c.entries(), p.entries());
    }

    #[test]
    fn dim_encoding_separates_threads() {
        assert_ne!(dim(0, 7), dim(1, 7));
        assert_eq!(dim(2, 7) >> 32, 2);
        assert_eq!(dim(2, 7) & 0xffff_ffff, 7);
    }
}
