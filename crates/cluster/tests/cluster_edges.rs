//! In-process multi-node integration tests: forwarding, cluster-wide
//! dedup through the store, protocol negotiation, and failover
//! re-adoption — the cluster contracts that need real sockets and real
//! journals but not real workloads.

use lp_cluster::{spawn_node, ClusterConfig, NodeSpec, Ring, RunningNode};
use lp_farm::{FarmConfig, JobBackend, JobSpec, ShutdownMode};
use lp_farm_proto::{FarmClient, FORWARDED_HEADER, PROTO_HEADER};
use lp_obs::{names, Observer};
use lp_store::{ArtifactKind, Store, StoreKey};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lp-cluster-test-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Grabs a free loopback port by binding to `:0` and releasing it.
fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    format!("127.0.0.1:{}", l.local_addr().unwrap().port())
}

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// The content key the mock backend derives — same function on every
/// node, 32 hex chars so the key participates in the ring and the
/// store.
fn mock_key(spec: &JobSpec) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{}|{}|{}", spec.program, spec.input, spec.ncores).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    let h2 = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    format!("{h:016x}{h2:016x}")
}

/// Content-keyed mock workload: memoizes its summary in the node's
/// store (as the real pipeline backend does), counts true computes, and
/// optionally blocks while `gate` is up so a job can be pinned inside a
/// node we are about to crash.
struct MockBackend {
    computes: Arc<AtomicU64>,
    store: Option<Arc<Store>>,
    gate: Option<Arc<AtomicBool>>,
}

impl JobBackend for MockBackend {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        Ok(mock_key(spec))
    }

    fn execute(&self, spec: &JobSpec, cancel: &looppoint::CancelToken) -> Result<String, String> {
        if let Some(gate) = &self.gate {
            while gate.load(Ordering::SeqCst) {
                if cancel.is_cancelled() {
                    return Err("cancelled while gated".to_string());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let key = StoreKey::from_hex(&mock_key(spec)).expect("mock keys are store-shaped");
        if let Some(store) = &self.store {
            if let Some(cached) = store.load(&key, ArtifactKind::JobSummary) {
                return String::from_utf8(cached).map_err(|e| e.to_string());
            }
        }
        self.computes.fetch_add(1, Ordering::SeqCst);
        let summary = format!(r#"{{"program":"{}","regions":3}}"#, spec.program);
        if let Some(store) = &self.store {
            store
                .save(&key, ArtifactKind::JobSummary, summary.as_bytes())
                .map_err(|e| e.to_string())?;
        }
        Ok(summary)
    }
}

struct TestNode {
    running: RunningNode,
    addr: String,
    computes: Arc<AtomicU64>,
    obs: Observer,
}

impl TestNode {
    fn client(&self) -> FarmClient {
        let mut c = FarmClient::connect(self.addr.clone());
        c.set_timeout(Duration::from_secs(5));
        c
    }
}

/// Boots `addrs.len()` nodes under `root`, each with its own store,
/// journal, observer, and mock backend; `gates[i]` pins node i's
/// executes while up.
fn boot_cluster(root: &Path, addrs: &[String], gates: &[Option<Arc<AtomicBool>>]) -> Vec<TestNode> {
    let peers: Vec<NodeSpec> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| NodeSpec {
            addr: a.clone(),
            dir: Some(root.join(format!("farm-{i}"))),
        })
        .collect();
    addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let obs = Observer::enabled();
            let store =
                Arc::new(Store::open(root.join(format!("store-{i}")), obs.clone()).unwrap());
            let computes = Arc::new(AtomicU64::new(0));
            let gate = gates.get(i).cloned().flatten();
            let backend = Arc::new(MockBackend {
                computes: Arc::clone(&computes),
                store: Some(Arc::clone(&store)),
                gate: gate.clone(),
            });
            let running = spawn_node(
                addr,
                ClusterConfig {
                    self_addr: addr.clone(),
                    peers: peers.clone(),
                    vnodes: 64,
                    heartbeat_ms: 100,
                    failure_threshold: 3,
                    rpc_timeout_ms: 2_000,
                },
                FarmConfig {
                    workers: 2,
                    dir: Some(root.join(format!("farm-{i}"))),
                    journal_flush_ms: 0,
                    ..FarmConfig::default()
                },
                backend,
                Some(store),
                obs.clone(),
            )
            .unwrap();
            TestNode {
                running,
                addr: addr.clone(),
                computes,
                obs,
            }
        })
        .collect()
}

/// A spec whose content key the given ring member owns (and, when
/// `replicas_exclude` is set, whose 2-owner set avoids that member).
fn spec_owned_by(ring: &Ring, owner: &str, replicas_exclude: Option<&str>) -> JobSpec {
    for i in 0..10_000 {
        let spec = JobSpec {
            program: format!("wl-{i}"),
            ..JobSpec::default()
        };
        let key = StoreKey::from_hex(&mock_key(&spec)).unwrap();
        if ring.owner(&key.0) != Some(owner) {
            continue;
        }
        if let Some(excluded) = replicas_exclude {
            if ring.owners(&key.0, 2).contains(&excluded) {
                continue;
            }
        }
        return spec;
    }
    panic!("no spec found owned by {owner}");
}

fn ordinal(addrs: &[String], addr: &str) -> u64 {
    let mut sorted: Vec<&String> = addrs.iter().collect();
    sorted.sort();
    sorted.iter().position(|a| *a == addr).unwrap() as u64
}

#[test]
fn forwarded_submit_returns_owner_range_id() {
    let root = tmpdir("forward");
    let addrs = vec![free_addr(), free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None, None]);
    let ring = Ring::build(&addrs, 64);

    // A spec owned by node B, submitted to node A, must come back with
    // an id carved from B's range — proof the submission crossed nodes.
    let spec = spec_owned_by(&ring, &addrs[1], None);
    let (status, outcomes) = nodes[0]
        .client()
        .submit(std::slice::from_ref(&spec), None)
        .unwrap();
    assert_eq!(status, 202);
    let id = outcomes[0].id().expect("forwarded submit accepted");
    assert_eq!(
        id >> lp_cluster::ID_RANGE_BITS,
        ordinal(&addrs, &addrs[1]) + 1,
        "id {id:#x} not in the owner's range"
    );

    // The job record lives on the owner and completes there.
    let mut owner_client = nodes[1].client();
    assert!(
        wait_until(
            || owner_client
                .job(id)
                .map(|j| j.is_terminal())
                .unwrap_or(false),
            Duration::from_secs(10),
        ),
        "forwarded job never finished on the owner"
    );
    assert_eq!(owner_client.job(id).unwrap().state, "done");
    assert_eq!(nodes[1].computes.load(Ordering::SeqCst), 1);
    assert_eq!(nodes[0].computes.load(Ordering::SeqCst), 0);
    assert!(nodes[0].obs.counter(names::CLUSTER_FORWARDED).get() >= 1);

    // /healthz on any member reports the cluster block.
    let health = nodes[0].client().healthz().unwrap();
    let cluster = health.get("cluster").expect("healthz cluster block");
    assert_eq!(cluster.get("ring_nodes").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(cluster.get("peers_alive").and_then(|v| v.as_u64()), Some(2));

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn incompatible_protocol_version_is_rejected_with_426() {
    let root = tmpdir("proto");
    let addrs = vec![free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None]);

    let mut raw = lp_obs::http::HttpClient::new(addrs[0].clone());
    let resp = raw
        .send(
            "GET",
            "/healthz",
            &[(PROTO_HEADER.to_string(), "999".to_string())],
            &[],
            None,
            true,
        )
        .unwrap();
    assert_eq!(resp.status, 426);
    // Every response (including the refusal) advertises the server's
    // version so the client knows what to upgrade to.
    assert_eq!(resp.header(PROTO_HEADER), Some("1"));

    // Legacy clients (no header) still pass.
    let resp = raw.send("GET", "/healthz", &[], &[], None, true).unwrap();
    assert_eq!(resp.status, 200);

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cross_node_dedup_fetches_the_owner_artifact_instead_of_computing() {
    let root = tmpdir("dedup");
    let addrs = vec![free_addr(), free_addr(), free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None, None, None]);
    let ring = Ring::build(&addrs, 64);

    // Owned by A with a 2-owner set that excludes C: replication will
    // never seed C's store, so C answering without a compute proves the
    // fetch-on-miss path.
    let spec = spec_owned_by(&ring, &addrs[0], Some(&addrs[2]));

    let (status, outcomes) = nodes[0]
        .client()
        .submit(std::slice::from_ref(&spec), None)
        .unwrap();
    assert_eq!(status, 202);
    let first_id = outcomes[0].id().unwrap();
    let mut a_client = nodes[0].client();
    assert!(wait_until(
        || a_client
            .job(first_id)
            .map(|j| j.is_terminal())
            .unwrap_or(false),
        Duration::from_secs(10),
    ));
    assert_eq!(nodes[0].computes.load(Ordering::SeqCst), 1);

    // Same work submitted to C, marked forwarded so C must handle it
    // locally instead of handing it back to A.
    let (status, outcomes) = nodes[2]
        .client()
        .submit_with(
            &[spec],
            None,
            &[(FORWARDED_HEADER.to_string(), "1".to_string())],
        )
        .unwrap();
    assert_eq!(status, 202);
    let second_id = outcomes[0].id().unwrap();
    assert_eq!(
        second_id >> lp_cluster::ID_RANGE_BITS,
        ordinal(&addrs, &addrs[2]) + 1,
        "forced-local submit must use C's id range"
    );
    let mut c_client = nodes[2].client();
    assert!(wait_until(
        || c_client
            .job(second_id)
            .map(|j| j.is_terminal())
            .unwrap_or(false),
        Duration::from_secs(10),
    ));
    let record = c_client.job(second_id).unwrap();
    assert_eq!(record.state, "done");
    assert_eq!(
        record
            .result
            .as_ref()
            .and_then(|r| r.get("regions"))
            .and_then(|v| v.as_u64()),
        Some(3),
        "fetched artifact must parse as the job summary"
    );

    // The cluster computed once, total; C's answer came over the wire.
    assert_eq!(nodes[2].computes.load(Ordering::SeqCst), 0);
    let total: u64 = nodes
        .iter()
        .map(|n| n.computes.load(Ordering::SeqCst))
        .sum();
    assert_eq!(
        total, 1,
        "cluster-wide dedup must collapse N submits to 1 compute"
    );
    assert!(nodes[2].obs.counter(names::CLUSTER_FETCH_HITS).get() >= 1);

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dead_node_journal_is_adopted_and_completed_by_the_survivor() {
    let root = tmpdir("adopt");
    let addrs = vec![free_addr(), free_addr()];
    // Node B's backend is gated: its job starts but can never finish,
    // so the journal still holds it when B "crashes".
    let gate = Arc::new(AtomicBool::new(true));
    let mut nodes = boot_cluster(&root, &addrs, &[None, Some(Arc::clone(&gate))]);
    let ring = Ring::build(&addrs, 64);

    let spec = spec_owned_by(&ring, &addrs[1], None);
    let (status, outcomes) = nodes[1].client().submit(&[spec], None).unwrap();
    assert_eq!(status, 202);
    let id = outcomes[0].id().unwrap();
    assert_eq!(
        id >> lp_cluster::ID_RANGE_BITS,
        ordinal(&addrs, &addrs[1]) + 1
    );

    // Give the journal a beat to persist the enqueue, then crash B
    // without draining. Its gated worker thread is left behind, still
    // blocked, exactly like a process that died mid-job.
    std::thread::sleep(Duration::from_millis(200));
    let b = nodes.remove(1);
    b.running.abandon();

    // A's heartbeat declares B dead (3 failures x 100ms), adopts B's
    // journal, re-runs the job under its original id, and finishes it —
    // A's backend has no gate.
    let mut a_client = nodes[0].client();
    assert!(
        wait_until(
            || { a_client.job(id).map(|j| j.state == "done").unwrap_or(false) },
            Duration::from_secs(15),
        ),
        "survivor never completed the dead node's job"
    );
    assert!(nodes[0].obs.counter(names::CLUSTER_ADOPTED).get() >= 1);
    assert!(nodes[0].obs.counter(names::CLUSTER_PEER_DEATHS).get() >= 1);
    assert_eq!(nodes[0].computes.load(Ordering::SeqCst), 1);

    // The dead node's journal was quarantined so a resurrected B will
    // not re-run the adopted work.
    let adopted_marker = std::fs::read_dir(root.join("farm-1"))
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().ends_with(".adopted"));
    assert!(adopted_marker, "adoption must rename the dead journal");

    gate.store(false, Ordering::SeqCst);
    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}
