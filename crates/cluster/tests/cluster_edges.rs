//! In-process multi-node integration tests: forwarding, cluster-wide
//! dedup through the store, protocol negotiation, and failover
//! re-adoption — the cluster contracts that need real sockets and real
//! journals but not real workloads.

use lp_cluster::{spawn_node, ClusterConfig, NodeSpec, Ring, RunningNode};
use lp_farm::{FarmConfig, JobBackend, JobSpec, ShutdownMode};
use lp_farm_proto::{FarmClient, FORWARDED_HEADER, PROTO_HEADER};
use lp_obs::{names, Observer};
use lp_store::{ArtifactKind, Store, StoreKey};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lp-cluster-test-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Grabs a free loopback port by binding to `:0` and releasing it.
fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    format!("127.0.0.1:{}", l.local_addr().unwrap().port())
}

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// The content key the mock backend derives — same function on every
/// node, 32 hex chars so the key participates in the ring and the
/// store.
fn mock_key(spec: &JobSpec) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{}|{}|{}", spec.program, spec.input, spec.ncores).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    let h2 = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    format!("{h:016x}{h2:016x}")
}

/// Content-keyed mock workload: memoizes its summary in the node's
/// store (as the real pipeline backend does), counts true computes, and
/// optionally blocks while `gate` is up so a job can be pinned inside a
/// node we are about to crash.
struct MockBackend {
    computes: Arc<AtomicU64>,
    store: Option<Arc<Store>>,
    gate: Option<Arc<AtomicBool>>,
}

impl JobBackend for MockBackend {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        Ok(mock_key(spec))
    }

    fn execute(&self, spec: &JobSpec, cancel: &looppoint::CancelToken) -> Result<String, String> {
        if let Some(gate) = &self.gate {
            while gate.load(Ordering::SeqCst) {
                if cancel.is_cancelled() {
                    return Err("cancelled while gated".to_string());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let key = StoreKey::from_hex(&mock_key(spec)).expect("mock keys are store-shaped");
        if let Some(store) = &self.store {
            if let Some(cached) = store.load(&key, ArtifactKind::JobSummary) {
                return String::from_utf8(cached).map_err(|e| e.to_string());
            }
        }
        self.computes.fetch_add(1, Ordering::SeqCst);
        let summary = format!(r#"{{"program":"{}","regions":3}}"#, spec.program);
        if let Some(store) = &self.store {
            store
                .save(&key, ArtifactKind::JobSummary, summary.as_bytes())
                .map_err(|e| e.to_string())?;
        }
        Ok(summary)
    }
}

struct TestNode {
    running: RunningNode,
    addr: String,
    computes: Arc<AtomicU64>,
    obs: Observer,
}

impl TestNode {
    fn client(&self) -> FarmClient {
        let mut c = FarmClient::connect(self.addr.clone());
        c.set_timeout(Duration::from_secs(5));
        c
    }
}

/// Boots `addrs.len()` nodes under `root`, each with its own store,
/// journal, observer, and mock backend; `gates[i]` pins node i's
/// executes while up.
fn boot_cluster(root: &Path, addrs: &[String], gates: &[Option<Arc<AtomicBool>>]) -> Vec<TestNode> {
    let peers: Vec<NodeSpec> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| NodeSpec {
            addr: a.clone(),
            dir: Some(root.join(format!("farm-{i}"))),
        })
        .collect();
    addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let obs = Observer::enabled();
            let store =
                Arc::new(Store::open(root.join(format!("store-{i}")), obs.clone()).unwrap());
            let computes = Arc::new(AtomicU64::new(0));
            let gate = gates.get(i).cloned().flatten();
            let backend = Arc::new(MockBackend {
                computes: Arc::clone(&computes),
                store: Some(Arc::clone(&store)),
                gate: gate.clone(),
            });
            let running = spawn_node(
                addr,
                ClusterConfig {
                    self_addr: addr.clone(),
                    peers: peers.clone(),
                    vnodes: 64,
                    heartbeat_ms: 100,
                    failure_threshold: 3,
                    rpc_timeout_ms: 2_000,
                },
                FarmConfig {
                    workers: 2,
                    dir: Some(root.join(format!("farm-{i}"))),
                    journal_flush_ms: 0,
                    history_interval_ms: 50,
                    ..FarmConfig::default()
                },
                backend,
                Some(store),
                obs.clone(),
            )
            .unwrap();
            TestNode {
                running,
                addr: addr.clone(),
                computes,
                obs,
            }
        })
        .collect()
}

/// A spec whose content key the given ring member owns (and, when
/// `replicas_exclude` is set, whose 2-owner set avoids that member).
fn spec_owned_by(ring: &Ring, owner: &str, replicas_exclude: Option<&str>) -> JobSpec {
    for i in 0..10_000 {
        let spec = JobSpec {
            program: format!("wl-{i}"),
            ..JobSpec::default()
        };
        let key = StoreKey::from_hex(&mock_key(&spec)).unwrap();
        if ring.owner(&key.0) != Some(owner) {
            continue;
        }
        if let Some(excluded) = replicas_exclude {
            if ring.owners(&key.0, 2).contains(&excluded) {
                continue;
            }
        }
        return spec;
    }
    panic!("no spec found owned by {owner}");
}

fn ordinal(addrs: &[String], addr: &str) -> u64 {
    let mut sorted: Vec<&String> = addrs.iter().collect();
    sorted.sort();
    sorted.iter().position(|a| *a == addr).unwrap() as u64
}

#[test]
fn forwarded_submit_returns_owner_range_id() {
    let root = tmpdir("forward");
    let addrs = vec![free_addr(), free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None, None]);
    let ring = Ring::build(&addrs, 64);

    // A spec owned by node B, submitted to node A, must come back with
    // an id carved from B's range — proof the submission crossed nodes.
    let spec = spec_owned_by(&ring, &addrs[1], None);
    let (status, outcomes) = nodes[0]
        .client()
        .submit(std::slice::from_ref(&spec), None)
        .unwrap();
    assert_eq!(status, 202);
    let id = outcomes[0].id().expect("forwarded submit accepted");
    assert_eq!(
        id >> lp_cluster::ID_RANGE_BITS,
        ordinal(&addrs, &addrs[1]) + 1,
        "id {id:#x} not in the owner's range"
    );

    // The job record lives on the owner and completes there.
    let mut owner_client = nodes[1].client();
    assert!(
        wait_until(
            || owner_client
                .job(id)
                .map(|j| j.is_terminal())
                .unwrap_or(false),
            Duration::from_secs(10),
        ),
        "forwarded job never finished on the owner"
    );
    assert_eq!(owner_client.job(id).unwrap().state, "done");
    assert_eq!(nodes[1].computes.load(Ordering::SeqCst), 1);
    assert_eq!(nodes[0].computes.load(Ordering::SeqCst), 0);
    assert!(nodes[0].obs.counter(names::CLUSTER_FORWARDED).get() >= 1);

    // /healthz on any member reports the cluster block.
    let health = nodes[0].client().healthz().unwrap();
    let cluster = health.get("cluster").expect("healthz cluster block");
    assert_eq!(cluster.get("ring_nodes").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(cluster.get("peers_alive").and_then(|v| v.as_u64()), Some(2));

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn incompatible_protocol_version_is_rejected_with_426() {
    let root = tmpdir("proto");
    let addrs = vec![free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None]);

    let mut raw = lp_obs::http::HttpClient::new(addrs[0].clone());
    let resp = raw
        .send(
            "GET",
            "/healthz",
            &[(PROTO_HEADER.to_string(), "999".to_string())],
            &[],
            None,
            true,
        )
        .unwrap();
    assert_eq!(resp.status, 426);
    // Every response (including the refusal) advertises the server's
    // version so the client knows what to upgrade to.
    assert_eq!(resp.header(PROTO_HEADER), Some("1"));

    // Legacy clients (no header) still pass.
    let resp = raw.send("GET", "/healthz", &[], &[], None, true).unwrap();
    assert_eq!(resp.status, 200);

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cross_node_dedup_fetches_the_owner_artifact_instead_of_computing() {
    let root = tmpdir("dedup");
    let addrs = vec![free_addr(), free_addr(), free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None, None, None]);
    let ring = Ring::build(&addrs, 64);

    // Owned by A with a 2-owner set that excludes C: replication will
    // never seed C's store, so C answering without a compute proves the
    // fetch-on-miss path.
    let spec = spec_owned_by(&ring, &addrs[0], Some(&addrs[2]));

    let (status, outcomes) = nodes[0]
        .client()
        .submit(std::slice::from_ref(&spec), None)
        .unwrap();
    assert_eq!(status, 202);
    let first_id = outcomes[0].id().unwrap();
    let mut a_client = nodes[0].client();
    assert!(wait_until(
        || a_client
            .job(first_id)
            .map(|j| j.is_terminal())
            .unwrap_or(false),
        Duration::from_secs(10),
    ));
    assert_eq!(nodes[0].computes.load(Ordering::SeqCst), 1);

    // Same work submitted to C, marked forwarded so C must handle it
    // locally instead of handing it back to A.
    let (status, outcomes) = nodes[2]
        .client()
        .submit_with(
            &[spec],
            None,
            &[(FORWARDED_HEADER.to_string(), "1".to_string())],
        )
        .unwrap();
    assert_eq!(status, 202);
    let second_id = outcomes[0].id().unwrap();
    assert_eq!(
        second_id >> lp_cluster::ID_RANGE_BITS,
        ordinal(&addrs, &addrs[2]) + 1,
        "forced-local submit must use C's id range"
    );
    let mut c_client = nodes[2].client();
    assert!(wait_until(
        || c_client
            .job(second_id)
            .map(|j| j.is_terminal())
            .unwrap_or(false),
        Duration::from_secs(10),
    ));
    let record = c_client.job(second_id).unwrap();
    assert_eq!(record.state, "done");
    assert_eq!(
        record
            .result
            .as_ref()
            .and_then(|r| r.get("regions"))
            .and_then(|v| v.as_u64()),
        Some(3),
        "fetched artifact must parse as the job summary"
    );

    // The cluster computed once, total; C's answer came over the wire.
    assert_eq!(nodes[2].computes.load(Ordering::SeqCst), 0);
    let total: u64 = nodes
        .iter()
        .map(|n| n.computes.load(Ordering::SeqCst))
        .sum();
    assert_eq!(
        total, 1,
        "cluster-wide dedup must collapse N submits to 1 compute"
    );
    assert!(nodes[2].obs.counter(names::CLUSTER_FETCH_HITS).get() >= 1);

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Pulls a string out of an event's `args`.
fn arg_str<'a>(event: &'a lp_obs::json::Value, key: &str) -> Option<&'a str> {
    event.get("args")?.get(key)?.as_str()
}

#[test]
fn forwarded_job_trace_assembles_across_nodes_into_one_tree() {
    let root = tmpdir("xtrace");
    let addrs = vec![free_addr(), free_addr(), free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None, None, None]);
    let ring = Ring::build(&addrs, 64);

    // Submitted to node 0, owned (and executed) by node 1; node 2 is a
    // bystander that saw nothing of the job.
    let spec = spec_owned_by(&ring, &addrs[1], None);
    let (status, outcomes) = nodes[0].client().submit(&[spec], None).unwrap();
    assert_eq!(status, 202);
    let (id, trace_hex) = match &outcomes[0] {
        lp_farm_proto::SubmitOutcome::Accepted { id, trace_id, .. } => (
            *id,
            trace_id.clone().expect("accepted outcome carries trace id"),
        ),
        other => panic!("submit not accepted: {other:?}"),
    };
    let mut owner_client = nodes[1].client();
    assert!(wait_until(
        || owner_client
            .job(id)
            .map(|j| j.is_terminal())
            .unwrap_or(false),
        Duration::from_secs(10),
    ));

    // Satellite: /jobs/{id}/trace answered by nodes that never ran the
    // job — the id's high bits name the home node and the request is
    // proxied there instead of 404ing.
    for node in [&nodes[0], &nodes[2]] {
        let doc = node
            .client()
            .trace_document(id)
            .expect("non-owner must proxy the job trace to the home node");
        assert!(
            doc.get("traceEvents")
                .and_then(lp_obs::json::Value::as_arr)
                .is_some_and(|evs| !evs.is_empty()),
            "proxied trace must carry the owner's events"
        );
    }
    assert!(nodes[0].obs.counter(names::CLUSTER_TRACE_PROXIED).get() >= 1);

    // Tentpole: the merged cross-node trace, assembled by the
    // bystander, holds the submit node's forward span AND the owner's
    // job root in one tree under the submission's trace id, each node
    // on its own ordinal-pid lane.
    let doc = nodes[2]
        .client()
        .cluster_trace(&trace_hex)
        .expect("any member assembles the cluster trace");
    let events = doc
        .get("traceEvents")
        .and_then(lp_obs::json::Value::as_arr)
        .expect("merged document has traceEvents");

    let forward = events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(names::SPAN_CLUSTER_FORWARD))
        .expect("merged trace holds the submit node's forward span");
    let job_root = events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(names::SPAN_FARM_JOB))
        .expect("merged trace holds the owner's job root");
    assert_eq!(arg_str(forward, "trace_id"), Some(trace_hex.as_str()));
    assert_eq!(arg_str(job_root, "trace_id"), Some(trace_hex.as_str()));
    assert_eq!(
        arg_str(job_root, "parent_span_id"),
        arg_str(forward, "span_id"),
        "the owner's job root must parent under the submit node's forward span"
    );
    assert_eq!(
        forward.get("pid").and_then(|p| p.as_u64()),
        Some(ordinal(&addrs, &addrs[0])),
        "forward span rides the submit node's ordinal lane"
    );
    assert_eq!(
        job_root.get("pid").and_then(|p| p.as_u64()),
        Some(ordinal(&addrs, &addrs[1])),
        "job root rides the owner's ordinal lane"
    );

    // Each contributing node labels its pid lane with its address.
    let lane_names: Vec<(u64, String)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| {
            Some((
                e.get("pid")?.as_u64()?,
                e.get("args")?.get("name")?.as_str()?.to_string(),
            ))
        })
        .collect();
    for (node_addr, expect_ordinal) in [(&addrs[0], 0), (&addrs[1], 1)] {
        let expect_ordinal = ordinal(&addrs, addrs[expect_ordinal].as_str());
        assert!(
            lane_names
                .iter()
                .any(|(pid, name)| *pid == expect_ordinal && name.contains(node_addr.as_str())),
            "missing process_name lane for {node_addr}: {lane_names:?}"
        );
    }
    assert!(
        doc.get("otherData")
            .and_then(|o| o.get("nodes"))
            .and_then(|n| n.as_u64())
            .is_some_and(|n| n >= 2),
        "at least the submit node and the owner contribute fragments"
    );

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn federated_metrics_roll_up_to_the_sum_and_history_accumulates() {
    let root = tmpdir("federate");
    let addrs = vec![free_addr(), free_addr(), free_addr()];
    let nodes = boot_cluster(&root, &addrs, &[None, None, None]);

    // Six distinct jobs, two owned by each member (so every node's
    // snapshot carries a farm.submitted series), all entering through
    // node 0 — forwarding scatters them to their owners.
    let ring = Ring::build(&addrs, 64);
    let mut by_owner: std::collections::HashMap<String, Vec<JobSpec>> =
        std::collections::HashMap::new();
    for i in 0.. {
        let spec = JobSpec {
            program: format!("fed-wl-{i}"),
            ..JobSpec::default()
        };
        let key = StoreKey::from_hex(&mock_key(&spec)).unwrap();
        let owner = ring.owner(&key.0).unwrap().to_string();
        let owned = by_owner.entry(owner).or_default();
        if owned.len() < 2 {
            owned.push(spec);
        }
        if by_owner.len() == addrs.len() && by_owner.values().all(|v| v.len() == 2) {
            break;
        }
    }
    for spec in by_owner.values().flatten() {
        let (status, _) = nodes[0]
            .client()
            .submit(std::slice::from_ref(spec), None)
            .unwrap();
        assert_eq!(status, 202);
    }
    for node in &nodes {
        let mut c = node.client();
        assert!(wait_until(
            || c.queue()
                .ok()
                .and_then(|q| {
                    let n = |k: &str| q.get(k).and_then(lp_obs::json::Value::as_u64);
                    Some(n("queued")? == 0 && n("running")? == 0)
                })
                .unwrap_or(false),
            Duration::from_secs(10),
        ));
    }

    // Satellite: every member's /healthz reports its cluster identity
    // top-level.
    for (i, node) in nodes.iter().enumerate() {
        let health = node.client().healthz().unwrap();
        assert_eq!(
            health.get("node").and_then(|v| v.as_str()),
            Some(addrs[i].as_str())
        );
        assert_eq!(
            health.get("ordinal").and_then(|v| v.as_u64()),
            Some(ordinal(&addrs, &addrs[i]))
        );
        assert_eq!(health.get("peers_alive").and_then(|v| v.as_u64()), Some(3));
    }

    // Tentpole: the federated document carries all three nodes and its
    // rollup equals the per-node sum, counter by counter.
    let doc = nodes[0].client().cluster_metrics().unwrap();
    let per_node = doc
        .get("nodes")
        .and_then(lp_obs::json::Value::as_arr)
        .expect("federated document has nodes");
    assert_eq!(per_node.len(), 3);
    let node_counter = |n: &lp_obs::json::Value, name: &str| {
        n.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let summed: u64 = per_node
        .iter()
        .map(|n| node_counter(n, names::FARM_SUBMITTED))
        .sum();
    let rollup = doc
        .get("rollup")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get(names::FARM_SUBMITTED))
        .and_then(|v| v.as_u64())
        .expect("rollup carries farm.submitted");
    assert_eq!(rollup, summed, "rollup must equal the per-node sum");
    assert!(summed >= 6, "all six submissions land somewhere");
    assert_eq!(
        doc.get("errors")
            .and_then(lp_obs::json::Value::as_arr)
            .map(|e| e.len()),
        Some(0),
        "all members reachable"
    );

    // The Prometheus rendering labels per-node series and repeats the
    // rollup unlabelled.
    let text = {
        let mut c = nodes[1].client();
        let resp = c
            .http()
            .send(
                "GET",
                "/cluster/metrics?format=prometheus",
                &[],
                &[],
                None,
                true,
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        resp.text()
    };
    for addr in &addrs {
        assert!(
            text.contains(&format!("farm_submitted{{node=\"{addr}\"}}")),
            "missing labelled series for {addr}"
        );
    }
    assert!(
        text.lines()
            .any(|l| l.starts_with("farm_submitted ") && !l.contains('{')),
        "missing unlabelled rollup series"
    );

    // Time-series history: the sampler (50 ms cadence here) accumulates
    // NDJSON samples, and `since=` resumes mid-stream.
    let mut c = nodes[0].client();
    assert!(wait_until(
        || c.metrics_history(0)
            .map(|body| body.lines().filter(|l| !l.trim().is_empty()).count() >= 2)
            .unwrap_or(false),
        Duration::from_secs(5),
    ));
    let all = c.metrics_history(0).unwrap();
    let first_seq = lp_obs::json::parse(all.lines().next().unwrap())
        .unwrap()
        .get("seq")
        .and_then(|s| s.as_u64())
        .unwrap();
    let resumed = c.metrics_history(first_seq).unwrap();
    assert!(
        resumed.lines().filter(|l| !l.trim().is_empty()).count()
            < all.lines().filter(|l| !l.trim().is_empty()).count(),
        "since= must skip already-consumed samples"
    );
    let first_resumed = lp_obs::json::parse(resumed.lines().next().unwrap()).unwrap();
    assert!(
        first_resumed.get("seq").and_then(|s| s.as_u64()).unwrap() > first_seq,
        "resumed stream starts after the since marker"
    );
    let sample_values = first_resumed.get("values").expect("sample carries values");
    for label in ["farm.done.rate", "farm.queue.depth", "farm.dedup.ratio"] {
        assert!(
            sample_values.get(label).is_some(),
            "history sample missing series {label}"
        );
    }

    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dead_node_journal_is_adopted_and_completed_by_the_survivor() {
    let root = tmpdir("adopt");
    let addrs = vec![free_addr(), free_addr()];
    // Node B's backend is gated: its job starts but can never finish,
    // so the journal still holds it when B "crashes".
    let gate = Arc::new(AtomicBool::new(true));
    let mut nodes = boot_cluster(&root, &addrs, &[None, Some(Arc::clone(&gate))]);
    let ring = Ring::build(&addrs, 64);

    let spec = spec_owned_by(&ring, &addrs[1], None);
    let (status, outcomes) = nodes[1].client().submit(&[spec], None).unwrap();
    assert_eq!(status, 202);
    let id = outcomes[0].id().unwrap();
    assert_eq!(
        id >> lp_cluster::ID_RANGE_BITS,
        ordinal(&addrs, &addrs[1]) + 1
    );

    // Give the journal a beat to persist the enqueue, then crash B
    // without draining. Its gated worker thread is left behind, still
    // blocked, exactly like a process that died mid-job.
    std::thread::sleep(Duration::from_millis(200));
    let b = nodes.remove(1);
    b.running.abandon();

    // A's heartbeat declares B dead (3 failures x 100ms), adopts B's
    // journal, re-runs the job under its original id, and finishes it —
    // A's backend has no gate.
    let mut a_client = nodes[0].client();
    assert!(
        wait_until(
            || { a_client.job(id).map(|j| j.state == "done").unwrap_or(false) },
            Duration::from_secs(15),
        ),
        "survivor never completed the dead node's job"
    );
    assert!(nodes[0].obs.counter(names::CLUSTER_ADOPTED).get() >= 1);
    assert!(nodes[0].obs.counter(names::CLUSTER_PEER_DEATHS).get() >= 1);
    assert_eq!(nodes[0].computes.load(Ordering::SeqCst), 1);

    // The dead node's journal was quarantined so a resurrected B will
    // not re-run the adopted work.
    let adopted_marker = std::fs::read_dir(root.join("farm-1"))
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().ends_with(".adopted"));
    assert!(adopted_marker, "adoption must rename the dead journal");

    gate.store(false, Ordering::SeqCst);
    for node in nodes {
        node.running.shutdown(ShutdownMode::Drain);
    }
    let _ = std::fs::remove_dir_all(&root);
}
