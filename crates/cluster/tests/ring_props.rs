//! Property tests for the consistent-hash ring — the three contracts
//! the cluster design rests on:
//!
//! 1. **Serialization stability**: a ring rebuilt from its wire
//!    document maps every key to the same owner as the original (peers
//!    exchanging `/cluster/peers` agree on ownership).
//! 2. **Balance**: with ≥ 64 virtual nodes, no member owns more than
//!    `1/n + ε` of the circle — one node cannot become the cluster's
//!    hot shard.
//! 3. **Minimal remapping**: a join only moves keys *onto* the
//!    newcomer, a leave only moves keys *off* the departed node —
//!    survivors never shuffle keys among themselves, so membership
//!    churn invalidates the least possible cached/journaled ownership.

use lp_cluster::Ring;
use proptest::prelude::*;

/// Deterministic pseudo-random 16-byte keys from a seed.
fn keys(seed: u64, n: usize) -> Vec<[u8; 16]> {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut key = [0u8; 16];
        for chunk in key.chunks_mut(8) {
            x = x
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        out.push(key);
    }
    out
}

fn members(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("10.1.0.{}:9{:03}", i + 1, 100 + i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-tripping the ring through its wire document preserves the
    /// key→owner map exactly.
    #[test]
    fn owners_survive_serialization_round_trip(
        n in 1usize..8,
        vnodes in 1usize..128,
        seed in any::<u64>(),
    ) {
        let ring = Ring::build(&members(n), vnodes);
        let back = Ring::from_value(&ring.to_value()).expect("wire round trip");
        prop_assert_eq!(ring.nodes(), back.nodes());
        prop_assert_eq!(ring.vnodes(), back.vnodes());
        for key in keys(seed, 256) {
            prop_assert_eq!(ring.owner(&key), back.owner(&key));
        }
    }

    /// With ≥ 64 vnodes no member owns more than 1/n + ε of the circle
    /// (ε = 1.5/n here: max shard ≤ 2.5× the fair share — virtual
    /// nodes bound the imbalance; a single-point-per-node ring can hit
    /// n× the fair share).
    #[test]
    fn vnodes_bound_the_shard_imbalance(
        n in 2usize..9,
        vnodes in 64usize..193,
        extra_seed in 0u64..4,
    ) {
        // Vary the member names so the property holds for arbitrary
        // addresses, not one lucky set.
        let nodes: Vec<String> = (0..n)
            .map(|i| format!("host-{extra_seed}-{i}.example:9{:03}", 100 + i))
            .collect();
        let ring = Ring::build(&nodes, vnodes);
        let cap = 1.0 / n as f64 + 1.5 / n as f64;
        for node in ring.nodes() {
            let f = ring.owned_fraction(node);
            prop_assert!(
                f <= cap,
                "node {} owns {:.4} of the circle (cap {:.4}, n={}, vnodes={})",
                node, f, cap, n, vnodes
            );
        }
        // And the fractions still tile the whole circle.
        let sum: f64 = ring.nodes().iter().map(|m| ring.owned_fraction(m)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// A join moves keys only onto the newcomer; a leave moves keys
    /// only off the departed node. Keys whose owner survives the change
    /// keep that owner — the minimal-remapping property that makes
    /// consistent hashing worth its name.
    #[test]
    fn join_and_leave_remap_minimally(
        n in 2usize..7,
        vnodes in 64usize..129,
        seed in any::<u64>(),
    ) {
        let full = members(n + 1);
        let newcomer = full[n].clone();
        let before = Ring::build(&full[..n], vnodes);
        let after = Ring::build(&full, vnodes);
        let sample = keys(seed, 512);
        let mut moved = 0usize;
        for key in &sample {
            let old = before.owner(key).unwrap();
            let new = after.owner(key).unwrap();
            if old != new {
                // The only legal move is onto the newcomer.
                prop_assert_eq!(
                    new, newcomer.as_str(),
                    "join moved a key between survivors ({} -> {})", old, new
                );
                moved += 1;
            }
        }
        // The newcomer must actually take some load (expected share is
        // 1/(n+1) of 512 keys; require at least one).
        prop_assert!(moved > 0, "newcomer took no keys");

        // Leave is the inverse: drop a member from the full ring and
        // check keys only move off it.
        let departed = full[0].clone();
        let shrunk = Ring::build(&full[1..], vnodes);
        for key in &sample {
            let old = after.owner(key).unwrap();
            let new = shrunk.owner(key).unwrap();
            if old != departed {
                prop_assert_eq!(
                    old, new,
                    "leave moved a key whose owner survived"
                );
            } else {
                prop_assert!(new != departed);
            }
        }
    }

    /// The agreed adopter is deterministic across members and never the
    /// dead node itself.
    #[test]
    fn adopter_agreement(n in 2usize..7, vnodes in 16usize..96, dead_idx in 0usize..7) {
        let nodes = members(n);
        let dead = nodes[dead_idx % n].clone();
        let ring = Ring::build(&nodes, vnodes);
        let adopter = ring.adopter_for(&dead).expect("survivors exist");
        prop_assert!(adopter != dead);
        // Any member rebuilding the same ring picks the same adopter.
        let again = Ring::build(&nodes, vnodes).adopter_for(&dead).unwrap();
        prop_assert_eq!(adopter, again);
    }
}
