//! The consistent-hash ring: who owns which shard of the 128-bit
//! content-key space.
//!
//! Each member node is hashed onto a 64-bit circle at `vnodes` points
//! (virtual nodes); a key's owner is the node whose virtual point is
//! the first at or clockwise-after the key's own hash. Virtual nodes
//! smooth the shard sizes (max imbalance shrinks roughly with
//! `1/sqrt(vnodes)`) and make membership changes *minimal*: when a node
//! joins or leaves, only the key ranges adjacent to its virtual points
//! move — everything else keeps its owner. Both properties are pinned
//! by the proptest suite in `tests/ring_props.rs`.
//!
//! The ring is a pure value: nodes in, deterministic point placement
//! out. Every cluster member derives the same ring from the same
//! member list, so there is no coordinator and nothing to gossip
//! beyond liveness.

use lp_obs::json::Value;

/// Default virtual nodes per member.
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64 — the point-placement hash. Deterministic and
/// dependency-free; quality is plenty for shard placement.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, folded through splitmix — places node names and
/// 16-byte content keys on the same 64-bit circle.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix(h)
}

/// A consistent-hash ring over named nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Sorted virtual points: `(point, index into nodes)`.
    points: Vec<(u64, usize)>,
    /// Member names (typically `host:port` addresses), sorted + deduped.
    nodes: Vec<String>,
    /// Virtual nodes per member.
    vnodes: usize,
}

impl Ring {
    /// Builds the ring for `nodes` with `vnodes` virtual points each.
    /// Node order does not matter (members are sorted first), so every
    /// cluster member derives an identical ring from the same set.
    pub fn build(nodes: &[String], vnodes: usize) -> Ring {
        let mut members: Vec<String> = nodes.to_vec();
        members.sort();
        members.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (i, node) in members.iter().enumerate() {
            for v in 0..vnodes {
                let mut tag = node.clone().into_bytes();
                tag.push(b'#');
                tag.extend_from_slice(&(v as u64).to_le_bytes());
                points.push((hash_bytes(&tag), i));
            }
        }
        // Ties (astronomically unlikely) resolve to the lexicographically
        // smaller node, deterministically, because members are sorted.
        points.sort_unstable();
        Ring {
            points,
            nodes: members,
            vnodes,
        }
    }

    /// Member names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The point on the circle a 16-byte content key maps to.
    pub fn key_point(key: &[u8; 16]) -> u64 {
        hash_bytes(key)
    }

    /// The owner of `key`, or `None` on an empty ring.
    pub fn owner(&self, key: &[u8; 16]) -> Option<&str> {
        self.owner_of_point(Self::key_point(key))
    }

    /// The owner of an arbitrary circle point.
    pub fn owner_of_point(&self, point: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        // First virtual point at or after `point`, wrapping at the top.
        let idx = self.points.partition_point(|&(p, _)| p < point);
        let (_, node) = self.points[if idx == self.points.len() { 0 } else { idx }];
        Some(&self.nodes[node])
    }

    /// The first `n` *distinct* nodes clockwise from `key`: the owner,
    /// then its successor (the replication target), and so on. Returns
    /// fewer than `n` when the ring is smaller.
    pub fn owners(&self, key: &[u8; 16], n: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(n.min(self.nodes.len()));
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let point = Self::key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        for off in 0..self.points.len() {
            let (_, node) = self.points[(start + off) % self.points.len()];
            let name = self.nodes[node].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// The node that takes over `node`'s ranges when it dies: its ring
    /// successor among the *remaining* members — i.e. for each of the
    /// dead node's virtual points, the owner in the ring without it.
    /// With many virtual points several survivors inherit ranges; the
    /// canonical adopter (who re-adopts the dead node's journal) is the
    /// owner of the dead node's *name point* in the survivor ring, so
    /// every member independently agrees on one adopter.
    pub fn adopter_for(&self, dead: &str) -> Option<String> {
        let survivors: Vec<String> = self
            .nodes
            .iter()
            .filter(|n| n.as_str() != dead)
            .cloned()
            .collect();
        if survivors.is_empty() {
            return None;
        }
        let survivor_ring = Ring::build(&survivors, self.vnodes);
        survivor_ring
            .owner_of_point(hash_bytes(dead.as_bytes()))
            .map(str::to_string)
    }

    /// Fraction of the 64-bit circle owned by `node` (0.0 when absent).
    pub fn owned_fraction(&self, node: &str) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let Some(target) = self.nodes.iter().position(|n| n == node) else {
            return 0.0;
        };
        if self.nodes.len() == 1 {
            return 1.0;
        }
        let mut owned: u128 = 0;
        for (i, &(p, n)) in self.points.iter().enumerate() {
            // The arc *ending* at point i (exclusive start at the
            // previous point) belongs to point i's node.
            let prev = if i == 0 {
                self.points[self.points.len() - 1].0
            } else {
                self.points[i - 1].0
            };
            if n == target {
                owned += u128::from(p.wrapping_sub(prev));
            }
        }
        owned as f64 / 2f64.powi(64)
    }

    /// Serializes the ring parameters (members + vnodes; the points are
    /// derived, not shipped).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "nodes".to_string(),
                Value::Arr(self.nodes.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
            ("vnodes".to_string(), Value::Int(self.vnodes as i128)),
        ])
    }

    /// Rebuilds a ring from [`Ring::to_value`] output. Key→owner maps
    /// identically to the original (pinned by proptest).
    ///
    /// # Errors
    /// A message when the document shape is wrong.
    pub fn from_value(v: &Value) -> Result<Ring, String> {
        let nodes: Vec<String> = v
            .get("nodes")
            .and_then(Value::as_arr)
            .ok_or("ring document missing 'nodes' array")?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "ring node must be a string".to_string())
            })
            .collect::<Result<_, _>>()?;
        let vnodes = v
            .get("vnodes")
            .and_then(Value::as_u64)
            .ok_or("ring document missing 'vnodes'")? as usize;
        Ok(Ring::build(&nodes, vnodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:91{i:02}")).collect()
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::build(&names(1), 64);
        assert_eq!(ring.owner(&[0u8; 16]), Some("10.0.0.0:9100"));
        assert!((ring.owned_fraction("10.0.0.0:9100") - 1.0).abs() < 1e-12);
        assert_eq!(ring.owned_fraction("absent:1"), 0.0);
    }

    #[test]
    fn owners_lists_distinct_nodes_owner_first() {
        let ring = Ring::build(&names(3), 64);
        let key = [7u8; 16];
        let owners = ring.owners(&key, 2);
        assert_eq!(owners.len(), 2);
        assert_eq!(owners[0], ring.owner(&key).unwrap());
        assert_ne!(owners[0], owners[1]);
        // Asking for more than the membership returns the membership.
        assert_eq!(ring.owners(&key, 10).len(), 3);
    }

    #[test]
    fn build_is_order_insensitive() {
        let mut reversed = names(5);
        reversed.reverse();
        assert_eq!(Ring::build(&names(5), 32), Ring::build(&reversed, 32));
    }

    #[test]
    fn adopter_is_agreed_and_is_not_the_dead_node() {
        let ring = Ring::build(&names(4), 64);
        let adopter = ring.adopter_for("10.0.0.2:9102").unwrap();
        assert_ne!(adopter, "10.0.0.2:9102");
        assert!(ring.nodes().contains(&adopter));
        // Every member derives the same adopter from the same ring.
        let again = Ring::build(&names(4), 64).adopter_for("10.0.0.2:9102");
        assert_eq!(again.as_deref(), Some(adopter.as_str()));
    }

    #[test]
    fn fractions_sum_to_one() {
        let ring = Ring::build(&names(5), 64);
        let sum: f64 = ring.nodes().iter().map(|n| ring.owned_fraction(n)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }
}
