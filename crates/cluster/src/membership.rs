//! Cluster membership: who the peers are, who is alive, and the ring
//! derived from the live set.
//!
//! Membership is coordinator-light: every node is configured with (or
//! fetches, via `--join`) the same static peer list and probes its
//! peers' `/cluster/healthz` on a heartbeat. Liveness is the only
//! gossip; the ring itself is a pure function of the alive set, so all
//! members that agree on liveness agree on ownership.

use crate::ring::Ring;
use lp_obs::json::Value;
use std::path::PathBuf;

/// One configured cluster member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Advertised `host:port` of the member's farm server.
    pub addr: String,
    /// The member's farm directory (journal + store), when it is
    /// reachable from this node's filesystem — required for failover
    /// re-adoption of the member's journaled queue.
    pub dir: Option<PathBuf>,
}

impl NodeSpec {
    /// Parses `addr` or `addr=dir`.
    ///
    /// # Errors
    /// A message when the address part is empty.
    pub fn parse(s: &str) -> Result<NodeSpec, String> {
        let (addr, dir) = match s.split_once('=') {
            Some((a, d)) => (a.trim(), Some(PathBuf::from(d.trim()))),
            None => (s.trim(), None),
        };
        if addr.is_empty() {
            return Err(format!("bad peer spec '{s}': empty address"));
        }
        Ok(NodeSpec {
            addr: addr.to_string(),
            dir,
        })
    }

    /// Wire JSON for `/cluster/peers`.
    pub fn to_value(&self) -> Value {
        let mut members = vec![("addr".to_string(), Value::Str(self.addr.clone()))];
        if let Some(dir) = &self.dir {
            members.push((
                "dir".to_string(),
                Value::Str(dir.to_string_lossy().into_owned()),
            ));
        }
        members.push(("dir_known".to_string(), Value::Bool(self.dir.is_some())));
        Value::Obj(members)
    }

    /// Parses [`NodeSpec::to_value`] output.
    ///
    /// # Errors
    /// A message when `addr` is missing.
    pub fn from_value(v: &Value) -> Result<NodeSpec, String> {
        Ok(NodeSpec {
            addr: v
                .get("addr")
                .and_then(Value::as_str)
                .ok_or("peer object missing 'addr'")?
                .to_string(),
            dir: v.get("dir").and_then(Value::as_str).map(PathBuf::from),
        })
    }
}

/// Liveness bookkeeping for one peer.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// The configured member.
    pub spec: NodeSpec,
    /// Currently considered alive.
    pub alive: bool,
    /// Consecutive failed heartbeats (reset on success).
    pub failures: u32,
    /// Whether this node has already adopted the peer's journal since
    /// it was last seen alive (one adoption per death).
    pub adopted: bool,
}

/// The membership table + the ring derived from its alive subset.
#[derive(Debug)]
pub struct Membership {
    /// This node's advertised address.
    pub self_addr: String,
    /// All configured members, self included.
    pub peers: Vec<PeerState>,
    /// Ring over the alive members.
    pub ring: Ring,
    /// Virtual nodes per member.
    pub vnodes: usize,
    /// Consecutive heartbeat failures before a peer is declared dead.
    pub failure_threshold: u32,
}

/// What a liveness transition asks the node runtime to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition {
    /// A peer crossed the failure threshold: the ring was rebuilt
    /// without it; if this node is the agreed adopter, re-adopt the
    /// dead peer's journal.
    Died {
        /// The dead peer.
        peer: NodeSpec,
        /// Whether *this* node is the canonical adopter.
        adopt_here: bool,
    },
    /// A dead peer answered again: re-added to the ring.
    Revived {
        /// The revived peer.
        peer: NodeSpec,
    },
}

impl Membership {
    /// Builds the table for `peers` (self included; it is added if
    /// absent), all initially alive.
    pub fn new(
        self_addr: &str,
        peers: &[NodeSpec],
        vnodes: usize,
        failure_threshold: u32,
    ) -> Membership {
        let mut list: Vec<NodeSpec> = peers.to_vec();
        if !list.iter().any(|p| p.addr == self_addr) {
            list.push(NodeSpec {
                addr: self_addr.to_string(),
                dir: None,
            });
        }
        list.sort_by(|a, b| a.addr.cmp(&b.addr));
        list.dedup_by(|a, b| a.addr == b.addr);
        let ring = Ring::build(
            &list.iter().map(|p| p.addr.clone()).collect::<Vec<_>>(),
            vnodes,
        );
        Membership {
            self_addr: self_addr.to_string(),
            peers: list
                .into_iter()
                .map(|spec| PeerState {
                    spec,
                    alive: true,
                    failures: 0,
                    adopted: false,
                })
                .collect(),
            ring,
            vnodes,
            failure_threshold: failure_threshold.max(1),
        }
    }

    /// This node's ordinal in the sorted member list — the basis of its
    /// disjoint job-id range (`FarmConfig::id_base`), so adopted jobs
    /// keep their ids without colliding with the adopter's own.
    pub fn self_ordinal(&self) -> u64 {
        self.peers
            .iter()
            .position(|p| p.spec.addr == self.self_addr)
            .unwrap_or(0) as u64
    }

    /// The configured member at `ordinal` — its position in the sorted
    /// member list, the same basis as [`Membership::self_ordinal`] and
    /// the per-node job-id ranges — alive or dead. `None` when the
    /// ordinal is out of range (an id from a member this node has never
    /// heard of).
    pub fn addr_of_ordinal(&self, ordinal: u64) -> Option<String> {
        self.peers
            .get(usize::try_from(ordinal).ok()?)
            .map(|p| p.spec.addr.clone())
    }

    /// Addresses of the currently-alive members.
    pub fn alive_addrs(&self) -> Vec<String> {
        self.peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.spec.addr.clone())
            .collect()
    }

    /// `(alive, dead)` member counts.
    pub fn counts(&self) -> (usize, usize) {
        let alive = self.peers.iter().filter(|p| p.alive).count();
        (alive, self.peers.len() - alive)
    }

    fn rebuild_ring(&mut self) {
        self.ring = Ring::build(&self.alive_addrs(), self.vnodes);
    }

    /// Adds (or re-learns) a member, rebuilding the ring. Returns
    /// whether the membership changed.
    pub fn add_peer(&mut self, spec: NodeSpec) -> bool {
        if let Some(existing) = self.peers.iter_mut().find(|p| p.spec.addr == spec.addr) {
            // Learn a journal dir we did not know (join after static
            // config); address identity is what matters.
            if existing.spec.dir.is_none() && spec.dir.is_some() {
                existing.spec.dir = spec.dir;
                return true;
            }
            return false;
        }
        self.peers.push(PeerState {
            spec,
            alive: true,
            failures: 0,
            adopted: false,
        });
        self.peers.sort_by(|a, b| a.spec.addr.cmp(&b.spec.addr));
        self.rebuild_ring();
        true
    }

    /// Records one heartbeat result for `addr`. Returns the liveness
    /// transition, if this result caused one.
    pub fn heartbeat_result(&mut self, addr: &str, ok: bool) -> Option<Transition> {
        let threshold = self.failure_threshold;
        // The ring *before* this transition decides the adopter, so all
        // members (which shared that ring) agree on it.
        let pre_ring = self.ring.clone();
        let peer = self.peers.iter_mut().find(|p| p.spec.addr == addr)?;
        if ok {
            peer.failures = 0;
            if peer.alive {
                return None;
            }
            peer.alive = true;
            peer.adopted = false;
            let spec = peer.spec.clone();
            self.rebuild_ring();
            return Some(Transition::Revived { peer: spec });
        }
        peer.failures = peer.failures.saturating_add(1);
        if !peer.alive || peer.failures < threshold {
            return None;
        }
        peer.alive = false;
        let spec = peer.spec.clone();
        self.rebuild_ring();
        let adopt_here = pre_ring
            .adopter_for(&spec.addr)
            .is_some_and(|a| a == self.self_addr);
        Some(Transition::Died {
            peer: spec,
            adopt_here,
        })
    }

    /// Marks a peer's journal as adopted (idempotence guard). Returns
    /// `false` when it was already adopted since its death.
    pub fn claim_adoption(&mut self, addr: &str) -> bool {
        match self.peers.iter_mut().find(|p| p.spec.addr == addr) {
            Some(p) if !p.adopted => {
                p.adopted = true;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec {
                addr: format!("127.0.0.1:91{i:02}"),
                dir: Some(PathBuf::from(format!("/tmp/node{i}"))),
            })
            .collect()
    }

    #[test]
    fn parse_accepts_addr_and_addr_eq_dir() {
        let p = NodeSpec::parse("127.0.0.1:9100=/data/n0").unwrap();
        assert_eq!(p.addr, "127.0.0.1:9100");
        assert_eq!(p.dir.as_deref(), Some(std::path::Path::new("/data/n0")));
        let p = NodeSpec::parse("127.0.0.1:9100").unwrap();
        assert_eq!(p.dir, None);
        assert!(NodeSpec::parse("=/data/x").is_err());
    }

    #[test]
    fn ordinals_are_distinct_and_stable() {
        let peers = specs(3);
        let ordinals: Vec<u64> = peers
            .iter()
            .map(|p| Membership::new(&p.addr, &peers, 16, 3).self_ordinal())
            .collect();
        let mut sorted = ordinals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "ordinals must be distinct: {ordinals:?}");
    }

    #[test]
    fn addr_of_ordinal_inverts_self_ordinal() {
        let peers = specs(3);
        let m = Membership::new(&peers[1].addr, &peers, 16, 3);
        for p in &peers {
            let ord = Membership::new(&p.addr, &peers, 16, 3).self_ordinal();
            assert_eq!(m.addr_of_ordinal(ord).as_deref(), Some(p.addr.as_str()));
        }
        assert_eq!(m.addr_of_ordinal(99), None);
    }

    #[test]
    fn death_requires_threshold_and_fires_once() {
        let peers = specs(3);
        let mut m = Membership::new("127.0.0.1:9100", &peers, 16, 3);
        let dead = "127.0.0.1:9101";
        assert_eq!(m.heartbeat_result(dead, false), None);
        assert_eq!(m.heartbeat_result(dead, false), None);
        let t = m
            .heartbeat_result(dead, false)
            .expect("third failure kills");
        assert!(matches!(t, Transition::Died { ref peer, .. } if peer.addr == dead));
        // Already dead: further failures are silent.
        assert_eq!(m.heartbeat_result(dead, false), None);
        assert_eq!(m.counts(), (2, 1));
        assert!(!m.ring.nodes().iter().any(|n| n == dead));
        // Exactly one adoption claim per death.
        assert!(m.claim_adoption(dead));
        assert!(!m.claim_adoption(dead));
        // Revival rebuilds the ring and re-arms adoption.
        let t = m.heartbeat_result(dead, true).expect("revival transitions");
        assert!(matches!(t, Transition::Revived { .. }));
        assert!(m.ring.nodes().iter().any(|n| n == dead));
        assert!(
            m.heartbeat_result(dead, true).is_none(),
            "steady alive is silent"
        );
    }

    #[test]
    fn exactly_one_member_adopts_a_death() {
        let peers = specs(4);
        let dead = &peers[2].addr;
        let mut adopters = 0;
        for me in &peers {
            if me.addr == *dead {
                continue;
            }
            let mut m = Membership::new(&me.addr, &peers, 16, 1);
            if let Some(Transition::Died { adopt_here, .. }) = m.heartbeat_result(dead, false) {
                if adopt_here {
                    adopters += 1;
                }
            }
        }
        assert_eq!(adopters, 1, "the survivors must agree on one adopter");
    }

    #[test]
    fn add_peer_learns_dirs_and_new_members() {
        let mut m = Membership::new("127.0.0.1:9100", &specs(2), 16, 3);
        assert!(!m.add_peer(specs(2)[1].clone()), "known peer is a no-op");
        let newcomer = NodeSpec::parse("127.0.0.1:9102=/tmp/node2").unwrap();
        assert!(m.add_peer(newcomer.clone()));
        assert_eq!(m.counts(), (3, 0));
        assert!(m.ring.nodes().iter().any(|n| n == &newcomer.addr));
    }
}
