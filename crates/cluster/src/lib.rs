//! # lp-cluster — coordinator-light multi-node analysis farm
//!
//! One `lp-farm` daemon saturates one machine. This crate federates
//! several of them into a cluster with no coordinator, no consensus
//! log, and no new wire stack — just the existing keep-alive HTTP
//! client, a consistent-hash ring, and the farm's own crash-safe
//! journal:
//!
//! * **Sharding** ([`ring`]): the 128-bit content-key space is carved
//!   among members by a consistent-hash ring with virtual nodes. Every
//!   member derives the identical ring from the shared member list, so
//!   ownership is a pure function — nothing to elect, nothing to sync.
//! * **Forwarding**: a submission arriving at a non-owner is forwarded
//!   to the key's owner over a pooled keep-alive [`FarmClient`]; the
//!   client gets the *owner's* job id back (per-node disjoint id ranges
//!   make ids meaningful cluster-wide). A forwarded request carries the
//!   `x-lp-forwarded` marker, capping forwarding at one hop.
//! * **Cluster-wide dedup** ([`backend::ClusterBackend`]): before
//!   computing a job, a node asks the key's owner (then the ring
//!   successor replica) for the finished artifact and seeds its local
//!   store on a hit — N identical jobs across the cluster cost one
//!   compute. Freshly computed artifacts replicate asynchronously to
//!   the successor, so the result survives the owner's death.
//! * **Failover** ([`membership`]): peers heartbeat each other's
//!   `/cluster/healthz`. When a member dies, the ring rebalances and
//!   the agreed adopter — owner of the dead node's name point in the
//!   survivor ring — re-adopts the dead farm's journaled queue
//!   ([`lp_farm::Journal::peek`] + [`lp_farm::Farm::adopt`]): accepted
//!   jobs complete with their original ids and trace contexts even if
//!   their node is `kill -9`ed mid-queue.
//! * **Observability plane**: `GET /cluster/metrics` federates every
//!   member's metrics into per-node snapshots plus ring-wide rollups
//!   (JSON or node-labelled Prometheus text); `GET
//!   /cluster/trace/{trace_id}` assembles one Perfetto-loadable trace
//!   from every node a submission touched, forward hop and remote
//!   execution stitched into a single span tree with one pid lane per
//!   node; and `GET /jobs/{id}/trace` asked of the wrong node proxies
//!   to the id's home node instead of answering 404.
//!
//! The design assumption for journal adoption is shared-filesystem
//! visibility of peer farm directories (the multi-process-per-host and
//! NFS deployments the smoke tests exercise); peers without a known
//! directory still shard, forward, dedup, and rebalance — their queued
//! jobs are simply not recoverable by others.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod membership;
pub mod ring;

pub use backend::ClusterBackend;
pub use membership::{Membership, NodeSpec, PeerState, Transition};
pub use ring::{Ring, DEFAULT_VNODES};

use lp_farm::{Farm, FarmServer, Journal, ServerExtensions};
use lp_farm_proto::{FarmClient, JobSpec, SubmitOutcome, FORWARDED_HEADER};
use lp_obs::http::{Request, Response};
use lp_obs::json::Value;
use lp_obs::metrics::MetricsSnapshot;
use lp_obs::trace::TraceEvent;
use lp_obs::tracectx::TraceId;
use lp_obs::{export, federate, names, tracectx, Observer, TraceContext};
use lp_store::{ArtifactKind, Store, StoreKey};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Width of each node's job-id range: ordinal `k` owns ids
/// `((k+1) << ID_RANGE_BITS, (k+2) << ID_RANGE_BITS]`. 2^40 ids per
/// node is unreachable in practice, and the high bits make any id's
/// home node readable at a glance.
pub const ID_RANGE_BITS: u32 = 40;

/// Cluster tuning for one node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's advertised `host:port` (must match the farm server's
    /// bind address as peers dial it).
    pub self_addr: String,
    /// Full member list, self included (`addr` or `addr=dir` specs).
    pub peers: Vec<NodeSpec>,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Heartbeat probe period (ms).
    pub heartbeat_ms: u64,
    /// Consecutive failed probes before a peer is declared dead.
    pub failure_threshold: u32,
    /// Per-request timeout for forwards/fetches/probes (ms).
    pub rpc_timeout_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            self_addr: String::new(),
            peers: Vec::new(),
            vnodes: DEFAULT_VNODES,
            heartbeat_ms: 500,
            failure_threshold: 3,
            rpc_timeout_ms: 5_000,
        }
    }
}

/// One queued artifact replication.
struct Replication {
    key: StoreKey,
    kind: ArtifactKind,
    payload: Vec<u8>,
}

/// How many forwarded-submission traces the submit side retains for
/// cross-node assembly after their events leave the live trace sink.
const FORWARD_TRACE_RETAIN: usize = 256;

/// Submit-side spans of forwarded jobs. A forwarded job runs on the
/// owner, so nothing on the submit node ever harvests its trace events
/// out of the live sink — this ring does, on the heartbeat cadence, so
/// `/cluster/trace/{id}` can still show the forward hop long after the
/// submission.
#[derive(Default)]
struct ForwardTraces {
    /// Trace ids recorded this heartbeat tick. Harvesting them now
    /// could miss the still-open `farm.request` span of the submission
    /// that created them, so they ripen for one tick first.
    fresh: Vec<TraceId>,
    /// Trace ids due for harvest on the next tick.
    ripe: Vec<TraceId>,
    /// Harvested `(trace id, submit-side events)`, oldest first;
    /// bounded by [`FORWARD_TRACE_RETAIN`].
    retained: VecDeque<(TraceId, Vec<TraceEvent>)>,
}

struct NodeInner {
    cfg: ClusterConfig,
    obs: Observer,
    store: Option<Arc<Store>>,
    membership: Mutex<Membership>,
    /// Attached after `Farm::start` (the farm's backend needs the node
    /// first — see [`ClusterNode::backend`]).
    farm: OnceLock<Farm>,
    /// Pooled keep-alive clients for forwards and artifact fetches,
    /// one per peer address; per-peer locks so a slow peer stalls only
    /// requests to itself.
    clients: Mutex<HashMap<String, Arc<Mutex<FarmClient>>>>,
    repl_tx: Mutex<Option<Sender<Replication>>>,
    forward_traces: Mutex<ForwardTraces>,
    stop: AtomicBool,
}

/// One cluster member's runtime: membership + heartbeats + forwarding +
/// replication. Cheap to clone; all clones share the node.
#[derive(Clone)]
pub struct ClusterNode {
    inner: Arc<NodeInner>,
}

/// Threads owned by a started node; joined by [`ClusterNode::stop`].
pub struct ClusterThreads {
    handles: Vec<JoinHandle<()>>,
}

impl ClusterNode {
    /// Builds the node state (no threads yet — call
    /// [`ClusterNode::start_threads`] after the farm is attached).
    pub fn new(cfg: ClusterConfig, store: Option<Arc<Store>>, obs: Observer) -> ClusterNode {
        let membership = Membership::new(
            &cfg.self_addr,
            &cfg.peers,
            cfg.vnodes,
            cfg.failure_threshold,
        );
        let node = ClusterNode {
            inner: Arc::new(NodeInner {
                cfg,
                obs,
                store,
                membership: Mutex::new(membership),
                farm: OnceLock::new(),
                clients: Mutex::new(HashMap::new()),
                repl_tx: Mutex::new(None),
                forward_traces: Mutex::new(ForwardTraces::default()),
                stop: AtomicBool::new(false),
            }),
        };
        node.refresh_gauges();
        node
    }

    /// This node's [`lp_farm::FarmConfig::id_base`]: the ordinal-derived
    /// disjoint id range.
    pub fn id_base(&self) -> u64 {
        let ordinal = self.membership().self_ordinal();
        (ordinal + 1) << ID_RANGE_BITS
    }

    /// Attaches the started farm (exactly once).
    pub fn attach_farm(&self, farm: Farm) {
        let _ = self.inner.farm.set(farm);
    }

    /// Starts the heartbeat and replication threads. Call after
    /// [`ClusterNode::attach_farm`].
    pub fn start_threads(&self) -> ClusterThreads {
        let mut handles = Vec::new();
        let (tx, rx) = mpsc::channel::<Replication>();
        *self.inner.repl_tx.lock().expect("cluster repl lock") = Some(tx);
        let me = self.clone();
        handles.push(
            std::thread::Builder::new()
                .name("cluster-replicate".to_string())
                .spawn(move || me.replication_loop(&rx))
                .expect("spawn cluster replication"),
        );
        let me = self.clone();
        handles.push(
            std::thread::Builder::new()
                .name("cluster-heartbeat".to_string())
                .spawn(move || me.heartbeat_loop())
                .expect("spawn cluster heartbeat"),
        );
        ClusterThreads { handles }
    }

    /// Stops the node's threads and joins them.
    pub fn stop(&self, threads: ClusterThreads) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Dropping the sender wakes the replication loop.
        *self.inner.repl_tx.lock().expect("cluster repl lock") = None;
        for h in threads.handles {
            let _ = h.join();
        }
    }

    /// Server hooks wiring `/cluster/*` routes, healthz fields, and
    /// submission forwarding into a [`FarmServer::start_with`].
    pub fn extensions(&self) -> ServerExtensions {
        let route_node = self.clone();
        let healthz_node = self.clone();
        let forward_node = self.clone();
        ServerExtensions {
            route: Some(Arc::new(move |req: &Request| route_node.route(req))),
            healthz: Some(Arc::new(move || {
                // The node's cluster identity rides top-level (not just
                // inside the `cluster` object) so probes and dashboards
                // can read it without digging.
                let (node, ordinal, alive) = {
                    let m = healthz_node.membership();
                    (m.self_addr.clone(), m.self_ordinal(), m.counts().0)
                };
                vec![
                    ("node".to_string(), Value::Str(node)),
                    ("ordinal".to_string(), Value::Int(ordinal as i128)),
                    ("peers_alive".to_string(), Value::Int(alive as i128)),
                    ("cluster".to_string(), healthz_node.healthz_value()),
                ]
            })),
            forward: Some(Arc::new(
                move |spec: &JobSpec, trace: Option<&TraceContext>| {
                    forward_node.forward_submit(spec, trace)
                },
            )),
        }
    }

    /// A locked snapshot accessor (private helper).
    fn membership(&self) -> std::sync::MutexGuard<'_, Membership> {
        self.inner
            .membership
            .lock()
            .expect("cluster membership lock")
    }

    /// The cluster healthz/status document (also the `cluster` field of
    /// the farm's `/healthz`).
    pub fn healthz_value(&self) -> Value {
        let m = self.membership();
        let (alive, dead) = m.counts();
        Value::Obj(vec![
            ("node".to_string(), Value::Str(m.self_addr.clone())),
            ("ordinal".to_string(), Value::Int(m.self_ordinal() as i128)),
            (
                "id_base".to_string(),
                Value::Int(((m.self_ordinal() + 1) << ID_RANGE_BITS) as i128),
            ),
            ("ring_nodes".to_string(), Value::Int(m.ring.len() as i128)),
            ("vnodes".to_string(), Value::Int(m.ring.vnodes() as i128)),
            ("peers_alive".to_string(), Value::Int(alive as i128)),
            ("peers_dead".to_string(), Value::Int(dead as i128)),
            (
                "owned_fraction".to_string(),
                Value::Num(m.ring.owned_fraction(&m.self_addr)),
            ),
        ])
    }

    // ---- HTTP routes ----------------------------------------------------

    /// `/cluster/*` routes, hung off the farm server:
    ///
    /// | Endpoint | Behavior |
    /// |---|---|
    /// | `GET /cluster/healthz` | node id, ring, liveness counts (the heartbeat probe target) |
    /// | `GET /cluster/peers` | member list + ring document |
    /// | `POST /cluster/join` | add a member (broadcast to peers unless forwarded) |
    /// | `GET /cluster/artifact/{hex}?kind=tag` | artifact payload from the local store |
    /// | `POST /cluster/artifact/{hex}?kind=tag` | save a replicated artifact payload |
    /// | `GET /cluster/metrics` | federated metrics: per-node snapshots + ring-wide rollups (`?format=prometheus` for labelled text) |
    /// | `GET /cluster/trace/{trace_id}` | merged cross-node Chrome trace, one pid lane per node (`?local=1` for this node's fragment) |
    ///
    /// It also intercepts `GET /jobs/{id}/trace` and plain
    /// `GET /jobs/{id}` (the job record plus any streamed live
    /// partial-result lines) for ids homed on another node, proxying to
    /// the owner instead of answering 404.
    fn route(&self, req: &Request) -> Option<Response> {
        let path = req.path.as_str();
        if req.method == "GET" && path.starts_with("/jobs/") {
            if path.ends_with("/trace") {
                return self.proxy_job_trace(req);
            }
            if let Some(resp) = self.proxy_job_record(req) {
                return Some(resp);
            }
        }
        match (req.method.as_str(), path) {
            ("GET", "/cluster/healthz") => {
                Some(Response::json_ok(self.healthz_value().to_string()))
            }
            ("GET", "/cluster/peers") => {
                let m = self.membership();
                let peers: Vec<Value> = m.peers.iter().map(|p| p.spec.to_value()).collect();
                Some(Response::json_ok(
                    Value::Obj(vec![
                        ("peers".to_string(), Value::Arr(peers)),
                        ("ring".to_string(), m.ring.to_value()),
                    ])
                    .to_string(),
                ))
            }
            ("POST", "/cluster/join") => Some(self.handle_join(req)),
            ("GET", "/cluster/metrics") => Some(self.cluster_metrics(req)),
            ("GET", p) if p.starts_with("/cluster/trace/") => Some(self.cluster_trace(req)),
            ("GET", p) if p.starts_with("/cluster/artifact/") => Some(self.artifact_get(req)),
            ("POST", p) if p.starts_with("/cluster/artifact/") => Some(self.artifact_put(req)),
            _ => None,
        }
    }

    fn handle_join(&self, req: &Request) -> Response {
        let body = req.body_text();
        let Ok(doc) = lp_obs::json::parse(&body) else {
            return Response::bad_request("join body must be a peer JSON object");
        };
        let spec = match NodeSpec::from_value(&doc) {
            Ok(s) => s,
            Err(e) => return Response::bad_request(&e),
        };
        let (added, peer_addrs) = {
            let mut m = self.membership();
            let added = m.add_peer(spec.clone());
            (added, m.alive_addrs())
        };
        self.refresh_gauges();
        // First-hop joins broadcast to the other members so one POST
        // teaches the whole cluster; the forwarded marker stops the
        // broadcast from echoing forever.
        if added && req.header(FORWARDED_HEADER).is_none() {
            let self_addr = self.inner.cfg.self_addr.clone();
            for peer in peer_addrs {
                if peer == self_addr || peer == spec.addr {
                    continue;
                }
                let doc = spec.to_value().to_string();
                let _ = self.with_client(&peer, |client| {
                    client.http().send(
                        "POST",
                        "/cluster/join",
                        &[(FORWARDED_HEADER.to_string(), "1".to_string())],
                        doc.as_bytes(),
                        None,
                        true,
                    )
                });
            }
        }
        let m = self.membership();
        let peers: Vec<Value> = m.peers.iter().map(|p| p.spec.to_value()).collect();
        Response::json_ok(
            Value::Obj(vec![
                ("joined".to_string(), Value::Bool(true)),
                ("peers".to_string(), Value::Arr(peers)),
                ("ring".to_string(), m.ring.to_value()),
            ])
            .to_string(),
        )
    }

    /// Parses `/cluster/artifact/{hex}` + `?kind=tag`.
    fn parse_artifact(req: &Request) -> Option<(StoreKey, ArtifactKind)> {
        let hex = req.path.strip_prefix("/cluster/artifact/")?;
        let key = StoreKey::from_hex(hex)?;
        let kind = req
            .query
            .as_deref()
            .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("kind=")))
            .and_then(ArtifactKind::from_tag)
            .unwrap_or(ArtifactKind::JobSummary);
        Some((key, kind))
    }

    fn artifact_get(&self, req: &Request) -> Response {
        let Some((key, kind)) = Self::parse_artifact(req) else {
            return Response::bad_request(
                "bad artifact path (want /cluster/artifact/{32-hex}?kind=tag)",
            );
        };
        let Some(store) = &self.inner.store else {
            return Response::not_found("this node runs without a store");
        };
        match store.load(&key, kind) {
            Some(payload) => Response::bytes_ok(payload),
            None => Response::not_found(&format!("no {kind} artifact for {key}")),
        }
    }

    fn artifact_put(&self, req: &Request) -> Response {
        let Some((key, kind)) = Self::parse_artifact(req) else {
            return Response::bad_request(
                "bad artifact path (want /cluster/artifact/{32-hex}?kind=tag)",
            );
        };
        let Some(store) = &self.inner.store else {
            return Response::not_found("this node runs without a store");
        };
        match store.save(&key, kind, &req.body) {
            Ok(()) => Response::json_ok("{\"replicated\":true}".to_string()),
            Err(e) => Response::new(
                "500 Internal Server Error",
                "application/json",
                format!("{{\"error\":\"artifact save failed: {e}\"}}"),
            ),
        }
    }

    // ---- forwarding -----------------------------------------------------

    /// Forwards a first-hop submission to the key's owner, returning the
    /// owner's outcome line. `None` accepts locally: owned here, no key,
    /// single-node ring, or a forward error (local fallback beats
    /// bouncing the client).
    fn forward_submit(&self, spec: &JobSpec, trace: Option<&TraceContext>) -> Option<Value> {
        let farm = self.inner.farm.get()?;
        // The farm's backend computes the canonical content key (memoized
        // behind the backend; cheap on the hot path).
        let key_hex = farm.job_key(spec).ok()?;
        let key = StoreKey::from_hex(&key_hex)?;
        let owner = {
            let m = self.membership();
            let owner = m.ring.owner(&key.0)?.to_string();
            if owner == m.self_addr {
                return None;
            }
            owner
        };
        // The forward hop is a real span in the submission's trace: the
        // owner's `farm.job` root parents under it, so the merged
        // cross-node trace shows submit node → owner as one tree under
        // one trace id.
        // Parent preference: the attached `farm.request` span context
        // (the hook runs on the request thread), else the client's
        // traceparent, else a fresh root — every forwarded submission
        // has a trace.
        let fwd_parent = tracectx::current()
            .or_else(|| trace.copied())
            .unwrap_or_else(TraceContext::new_root);
        let guard = fwd_parent.attach();
        let mut span = self
            .inner
            .obs
            .span(names::SPAN_CLUSTER_FORWARD, names::CAT_CLUSTER);
        span.arg("owner", owner.as_str());
        let fwd_ctx = tracectx::current().unwrap_or(fwd_parent);
        let start = std::time::Instant::now();
        let spec = spec.clone();
        let outcome = self.with_client(&owner, move |client| {
            client.submit_with(
                &[spec],
                Some(&fwd_ctx),
                &[(FORWARDED_HEADER.to_string(), "1".to_string())],
            )
        });
        self.inner
            .obs
            .histogram(names::CLUSTER_FORWARD_US)
            .record(start.elapsed().as_micros() as u64);
        drop(span);
        drop(guard);
        match outcome {
            Ok((_, lines)) if !lines.is_empty() => {
                self.inner.obs.counter(names::CLUSTER_FORWARDED).inc();
                self.remember_forward_trace(fwd_ctx.trace_id);
                let mut outcome = lines[0].clone();
                if let SubmitOutcome::Accepted { forwarded_to, .. } = &mut outcome {
                    *forwarded_to = Some(owner);
                }
                Some(outcome.to_value())
            }
            _ => {
                self.inner.obs.counter(names::CLUSTER_FORWARD_ERRORS).inc();
                None
            }
        }
    }

    /// Marks `trace_id` for submit-side retention (the next-but-one
    /// heartbeat tick harvests its events out of the live sink).
    fn remember_forward_trace(&self, trace_id: TraceId) {
        if !self.inner.obs.is_enabled() {
            return;
        }
        let mut ft = self
            .inner
            .forward_traces
            .lock()
            .expect("cluster forward-trace lock");
        if !ft.fresh.contains(&trace_id) && !ft.ripe.contains(&trace_id) {
            ft.fresh.push(trace_id);
        }
    }

    /// Heartbeat-cadence sweep: harvests ripe forwarded-trace events
    /// from the live sink into the bounded retained ring, then promotes
    /// fresh → ripe. Two-phase so a trace is never harvested on the
    /// same tick its submission's `farm.request` span is still open.
    fn harvest_forward_traces(&self) {
        let due: Vec<TraceId> = {
            let mut ft = self
                .inner
                .forward_traces
                .lock()
                .expect("cluster forward-trace lock");
            let due = std::mem::take(&mut ft.ripe);
            ft.ripe = std::mem::take(&mut ft.fresh);
            due
        };
        for trace_id in due {
            let events = self.inner.obs.take_trace_events(trace_id);
            if events.is_empty() {
                continue;
            }
            let mut ft = self
                .inner
                .forward_traces
                .lock()
                .expect("cluster forward-trace lock");
            while ft.retained.len() >= FORWARD_TRACE_RETAIN {
                ft.retained.pop_front();
            }
            ft.retained.push_back((trace_id, events));
        }
    }

    // ---- observability plane (trace assembly + metrics federation) ------

    /// Satellite fix: `GET /jobs/{id}/trace` asked of a node that never
    /// ran the job. The id's high bits name its home node
    /// (`ordinal = (id >> ID_RANGE_BITS) - 1`), so instead of answering
    /// 404 the node proxies to the owner — one hop, capped by the
    /// forwarded marker. `None` falls through to the farm's own
    /// handler: the job is local (or adopted), the id is not
    /// cluster-shaped, or the owner is unreachable (a local 404 beats a
    /// 502 here; the caller can retry the owner directly).
    fn proxy_job_trace(&self, req: &Request) -> Option<Response> {
        if req.header(FORWARDED_HEADER).is_some() {
            return None;
        }
        let id: u64 = req
            .path
            .strip_prefix("/jobs/")?
            .strip_suffix("/trace")?
            .parse()
            .ok()?;
        let farm = self.inner.farm.get()?;
        if farm.flight_recorder().has_job(id) {
            return None;
        }
        let ordinal = (id >> ID_RANGE_BITS).checked_sub(1)?;
        let owner = {
            let m = self.membership();
            let addr = m.addr_of_ordinal(ordinal)?;
            if addr == m.self_addr {
                return None;
            }
            addr
        };
        let path = format!("/jobs/{id}/trace");
        let got = self.with_client(&owner, move |client| {
            client.http().send(
                "GET",
                &path,
                &[(FORWARDED_HEADER.to_string(), "1".to_string())],
                &[],
                None,
                true,
            )
        });
        match got {
            Ok(resp) if resp.status == 200 => {
                self.inner.obs.counter(names::CLUSTER_TRACE_PROXIED).inc();
                Some(Response::json_ok(resp.text()))
            }
            Ok(resp) if resp.status == 404 => Some(Response::not_found(&format!(
                "job {id} unknown on its home node {owner}"
            ))),
            _ => None,
        }
    }

    /// Plain `GET /jobs/{id}` asked of a node that does not own the
    /// job: proxy to the id's home node so followers can watch a live
    /// job's streamed partials (and read any record) through whichever
    /// cluster node they happen to talk to. The query string (`?since=N`
    /// incremental polling) passes through verbatim, and the owner's
    /// NDJSON body comes back untouched. Same fall-through rules as
    /// [`Self::proxy_job_trace`]: `None` lets the local farm answer.
    fn proxy_job_record(&self, req: &Request) -> Option<Response> {
        if req.header(FORWARDED_HEADER).is_some() {
            return None;
        }
        let id: u64 = req.path.strip_prefix("/jobs/")?.parse().ok()?;
        let farm = self.inner.farm.get()?;
        if farm.job(id).is_some() {
            return None;
        }
        let ordinal = (id >> ID_RANGE_BITS).checked_sub(1)?;
        let owner = {
            let m = self.membership();
            let addr = m.addr_of_ordinal(ordinal)?;
            if addr == m.self_addr {
                return None;
            }
            addr
        };
        let path = match &req.query {
            Some(q) => format!("/jobs/{id}?{q}"),
            None => format!("/jobs/{id}"),
        };
        let got = self.with_client(&owner, move |client| {
            client.http().send(
                "GET",
                &path,
                &[(FORWARDED_HEADER.to_string(), "1".to_string())],
                &[],
                None,
                true,
            )
        });
        match got {
            Ok(resp) if resp.status == 200 => {
                self.inner.obs.counter(names::CLUSTER_JOB_PROXIED).inc();
                Some(Response::new("200 OK", "application/x-ndjson", resp.text()))
            }
            Ok(resp) if resp.status == 404 => Some(Response::not_found(&format!(
                "job {id} unknown on its home node {owner}"
            ))),
            _ => None,
        }
    }

    /// This node's events for `trace_id` as a Chrome trace document
    /// fragment on the node's ordinal-pid lane: flight-recorder job
    /// spans, retained submit-side forward spans, and whatever is still
    /// in the live sink. `None` when the node saw nothing of the trace.
    fn local_trace_fragment(&self, trace_id: TraceId) -> Option<Value> {
        let farm = self.inner.farm.get()?;
        let mut events = farm.flight_recorder().events_for_trace(trace_id);
        {
            let ft = self
                .inner
                .forward_traces
                .lock()
                .expect("cluster forward-trace lock");
            for (tid, evs) in &ft.retained {
                if *tid == trace_id {
                    events.extend(evs.iter().cloned());
                }
            }
        }
        // Not-yet-harvested events (recorder and retention both remove
        // what they keep from the sink, so this cannot duplicate).
        events.extend(self.inner.obs.trace_events_for(trace_id));
        if events.is_empty() {
            return None;
        }
        events.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us)));
        let (ordinal, addr) = {
            let m = self.membership();
            (m.self_ordinal(), m.self_addr.clone())
        };
        let mut doc = export::chrome_trace_document_with_pid(&events, ordinal);
        if let Value::Obj(members) = &mut doc {
            if let Some((_, Value::Arr(evs))) = members.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                evs.insert(
                    0,
                    export::process_name_metadata(ordinal, &format!("lp-farm {addr}")),
                );
            }
        }
        Some(doc)
    }

    /// `GET /cluster/trace/{32-hex}`: the merged cross-node Chrome
    /// trace. `?local=1` (or the forwarded marker) answers only this
    /// node's fragment; otherwise the node fans out to the alive ring
    /// and stitches every fragment into one Perfetto-loadable document,
    /// each node on its own ordinal-pid lane. Per-node clocks are
    /// independent (each fragment's `ts` is that node's process
    /// uptime), so lanes may be skewed by boot-time deltas; the span
    /// *tree* — linked by `trace_id`/`span_id`/`parent_span_id` args —
    /// is exact.
    fn cluster_trace(&self, req: &Request) -> Response {
        let hex = req.path.strip_prefix("/cluster/trace/").unwrap_or("");
        let Some(trace_id) = TraceId::parse_hex(hex) else {
            return Response::bad_request("bad trace id (want 32 lowercase hex chars)");
        };
        let local_only = req.header(FORWARDED_HEADER).is_some()
            || req
                .query
                .as_deref()
                .is_some_and(|q| q.split('&').any(|kv| kv == "local=1"));
        if local_only {
            return match self.local_trace_fragment(trace_id) {
                Some(doc) => Response::json_ok(doc.to_string()),
                None => Response::not_found(&format!("no events for trace {hex} on this node")),
            };
        }
        let (self_addr, members): (String, Vec<String>) = {
            let m = self.membership();
            (m.self_addr.clone(), m.alive_addrs())
        };
        let mut merged: Vec<Value> = Vec::new();
        let mut nodes = 0u64;
        for addr in members {
            let fragment = if addr == self_addr {
                self.local_trace_fragment(trace_id)
            } else {
                let path = format!("/cluster/trace/{hex}?local=1");
                let got = self.with_client(&addr, move |client| {
                    client.http().send(
                        "GET",
                        &path,
                        &[(FORWARDED_HEADER.to_string(), "1".to_string())],
                        &[],
                        None,
                        true,
                    )
                });
                match got {
                    Ok(resp) if resp.status == 200 => lp_obs::json::parse(&resp.text()).ok(),
                    _ => None,
                }
            };
            if let Some(events) = fragment
                .as_ref()
                .and_then(|doc| doc.get("traceEvents"))
                .and_then(Value::as_arr)
            {
                merged.extend(events.iter().cloned());
                nodes += 1;
            }
        }
        if merged.is_empty() {
            return Response::not_found(&format!("no node holds events for trace {hex}"));
        }
        self.inner.obs.counter(names::CLUSTER_TRACE_ASSEMBLED).inc();
        Response::json_ok(
            Value::Obj(vec![
                ("traceEvents".to_string(), Value::Arr(merged)),
                ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
                (
                    "otherData".to_string(),
                    Value::Obj(vec![
                        ("producer".to_string(), Value::Str("lp-cluster".to_string())),
                        ("trace_id".to_string(), Value::Str(hex.to_string())),
                        ("nodes".to_string(), Value::Int(nodes as i128)),
                    ]),
                ),
            ])
            .to_string(),
        )
    }

    /// `GET /cluster/metrics[?format=prometheus]`: fans out to the
    /// alive members for their `/metrics.json` snapshots and answers
    /// per-node metrics plus ring-wide rollups (counters summed, gauges
    /// summed or max'd per [`names::gauge_rollup`], histograms
    /// bucket-merged). Unreachable peers degrade to entries in
    /// `errors` rather than failing the whole document.
    fn cluster_metrics(&self, req: &Request) -> Response {
        let start = std::time::Instant::now();
        let (self_addr, members): (String, Vec<(u64, String)>) = {
            let m = self.membership();
            let members = m
                .peers
                .iter()
                .enumerate()
                .filter(|(_, p)| p.alive)
                .map(|(i, p)| (i as u64, p.spec.addr.clone()))
                .collect();
            (m.self_addr.clone(), members)
        };
        let mut nodes: Vec<(u64, String, MetricsSnapshot)> = Vec::new();
        let mut errors: Vec<Value> = Vec::new();
        for (ordinal, addr) in members {
            if addr == self_addr {
                nodes.push((ordinal, addr, self.inner.obs.snapshot()));
                continue;
            }
            let fetched = self
                .with_client(&addr, |client| client.metrics_json())
                .map_err(|e| e.to_string())
                .and_then(|doc| MetricsSnapshot::from_json(&doc));
            match fetched {
                Ok(snap) => nodes.push((ordinal, addr, snap)),
                Err(e) => {
                    self.inner.obs.counter(names::CLUSTER_FEDERATE_ERRORS).inc();
                    errors.push(Value::Obj(vec![
                        ("node".to_string(), Value::Str(addr)),
                        ("error".to_string(), Value::Str(e)),
                    ]));
                }
            }
        }
        let labelled: Vec<(String, MetricsSnapshot)> = nodes
            .iter()
            .map(|(_, addr, snap)| (addr.clone(), snap.clone()))
            .collect();
        let rollup = federate::rollup(
            &labelled
                .iter()
                .map(|(_, snap)| snap.clone())
                .collect::<Vec<_>>(),
        );
        self.inner
            .obs
            .histogram(names::CLUSTER_FEDERATE_US)
            .record(start.elapsed().as_micros() as u64);
        let want_text = req
            .query
            .as_deref()
            .is_some_and(|q| q.split('&').any(|kv| kv == "format=prometheus"));
        if want_text {
            return Response::new(
                "200 OK",
                "text/plain; version=0.0.4",
                federate::render_labelled(&labelled, &rollup),
            );
        }
        let nodes_json: Vec<Value> = nodes
            .iter()
            .map(|(ordinal, addr, snap)| {
                Value::Obj(vec![
                    ("node".to_string(), Value::Str(addr.clone())),
                    ("ordinal".to_string(), Value::Int(*ordinal as i128)),
                    ("metrics".to_string(), snap.to_json()),
                ])
            })
            .collect();
        Response::json_ok(
            Value::Obj(vec![
                ("nodes".to_string(), Value::Arr(nodes_json)),
                ("rollup".to_string(), rollup.to_json()),
                ("ring_nodes".to_string(), Value::Int(nodes.len() as i128)),
                ("errors".to_string(), Value::Arr(errors)),
            ])
            .to_string(),
        )
    }

    // ---- cluster-wide dedup (store fetch / replication) -----------------

    /// Tries to fetch `key`/`kind` from the key's owner (then the
    /// replica) and seed the local store. Returns whether the artifact
    /// is now present locally.
    pub(crate) fn fetch_into_store(&self, key: &StoreKey, kind: ArtifactKind) -> bool {
        let Some(store) = &self.inner.store else {
            return false;
        };
        let candidates: Vec<String> = {
            let m = self.membership();
            m.ring
                .owners(&key.0, 2)
                .into_iter()
                .filter(|n| *n != m.self_addr)
                .map(str::to_string)
                .collect()
        };
        if candidates.is_empty() {
            return false;
        }
        let mut span = self
            .inner
            .obs
            .span(names::SPAN_CLUSTER_FETCH, names::CAT_CLUSTER);
        span.arg("key", key.hex());
        let path = format!("/cluster/artifact/{}?kind={}", key.hex(), kind.tag());
        for peer in candidates {
            let path = path.clone();
            let got = self.with_client(&peer, move |client| {
                client.http().send("GET", &path, &[], &[], None, true)
            });
            if let Ok(resp) = got {
                if resp.status == 200 && store.save(key, kind, &resp.body).is_ok() {
                    self.inner.obs.counter(names::CLUSTER_FETCH_HITS).inc();
                    span.arg("hit_from", peer.as_str());
                    return true;
                }
            }
        }
        self.inner.obs.counter(names::CLUSTER_FETCH_MISSES).inc();
        false
    }

    /// Queues an asynchronous replication of a freshly computed artifact
    /// to the key's ring successor.
    pub(crate) fn replicate(&self, key: StoreKey, kind: ArtifactKind, payload: Vec<u8>) {
        let tx = self.inner.repl_tx.lock().expect("cluster repl lock");
        if let Some(tx) = tx.as_ref() {
            let _ = tx.send(Replication { key, kind, payload });
        }
    }

    fn replication_loop(&self, rx: &Receiver<Replication>) {
        while let Ok(item) = rx.recv() {
            if self.inner.stop.load(Ordering::SeqCst) {
                return;
            }
            // Target: the first other member clockwise from the key —
            // the node a fetch-on-miss asks after the owner.
            let target = {
                let m = self.membership();
                m.ring
                    .owners(&item.key.0, 2)
                    .into_iter()
                    .find(|n| *n != m.self_addr)
                    .map(str::to_string)
            };
            let Some(target) = target else { continue };
            let path = format!(
                "/cluster/artifact/{}?kind={}",
                item.key.hex(),
                item.kind.tag()
            );
            let sent = self.with_client(&target, move |client| {
                client
                    .http()
                    .send("POST", &path, &[], &item.payload, None, true)
            });
            match sent {
                Ok(resp) if resp.status == 200 => {
                    self.inner.obs.counter(names::CLUSTER_REPLICATIONS).inc();
                }
                _ => {
                    self.inner
                        .obs
                        .counter(names::CLUSTER_REPLICATION_ERRORS)
                        .inc();
                }
            }
        }
    }

    // ---- heartbeats + failover ------------------------------------------

    fn heartbeat_loop(&self) {
        // Probe clients are private to this thread: a wedged peer must
        // not stall the forwarding pool.
        let mut probes: HashMap<String, FarmClient> = HashMap::new();
        let period = Duration::from_millis(self.inner.cfg.heartbeat_ms.max(10));
        let probe_timeout = Duration::from_millis(
            self.inner
                .cfg
                .rpc_timeout_ms
                .min(self.inner.cfg.heartbeat_ms.max(100))
                .max(50),
        );
        while !self.inner.stop.load(Ordering::SeqCst) {
            let peers: Vec<String> = {
                let m = self.membership();
                m.peers
                    .iter()
                    .filter(|p| p.spec.addr != m.self_addr)
                    .map(|p| p.spec.addr.clone())
                    .collect()
            };
            for addr in peers {
                if self.inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                let client = probes.entry(addr.clone()).or_insert_with(|| {
                    let mut c = FarmClient::connect(addr.clone());
                    c.set_timeout(probe_timeout);
                    c
                });
                let ok = client
                    .http()
                    .send("GET", "/cluster/healthz", &[], &[], None, true)
                    .map(|r| r.status == 200)
                    .unwrap_or(false);
                let transition = self.membership().heartbeat_result(&addr, ok);
                match transition {
                    Some(Transition::Died { peer, adopt_here }) => {
                        self.inner.obs.counter(names::CLUSTER_PEER_DEATHS).inc();
                        self.refresh_gauges();
                        if adopt_here {
                            self.adopt_peer(&peer);
                        }
                    }
                    Some(Transition::Revived { .. }) => {
                        self.refresh_gauges();
                    }
                    None => {}
                }
            }
            self.harvest_forward_traces();
            std::thread::sleep(period);
        }
    }

    /// Re-adopts a dead peer's journaled queue (this node is the agreed
    /// adopter). The dead journal's files are renamed aside afterwards
    /// so a resurrected peer starts clean instead of re-running jobs the
    /// cluster already owns.
    fn adopt_peer(&self, peer: &NodeSpec) {
        let Some(dir) = &peer.dir else {
            return; // no shared filesystem view of this peer
        };
        if !self.membership().claim_adoption(&peer.addr) {
            return;
        }
        let Some(farm) = self.inner.farm.get() else {
            return;
        };
        let view = match Journal::peek(dir) {
            Ok(v) => v,
            Err(e) => {
                self.inner
                    .obs
                    .counter(names::CLUSTER_REPLICATION_ERRORS)
                    .inc();
                eprintln!(
                    "cluster: cannot read journal of dead peer {}: {e}",
                    peer.addr
                );
                return;
            }
        };
        if view.jobs.is_empty() {
            return;
        }
        let adopted = farm.adopt(view.jobs);
        self.inner
            .obs
            .counter(names::CLUSTER_ADOPTED)
            .add(adopted as u64);
        // The adopted jobs are durable in OUR journal now; quarantine
        // the dead node's files so resurrection doesn't double-run.
        for name in [lp_farm::JOURNAL_FILE, lp_farm::JOURNAL_LOG_FILE] {
            let from = dir.join(name);
            if from.exists() {
                let _ = std::fs::rename(&from, dir.join(format!("{name}.adopted")));
            }
        }
    }

    // ---- join -----------------------------------------------------------

    /// Joins an existing cluster through `seed`: POSTs this node's spec
    /// to the seed (which broadcasts it) and returns the full member
    /// list the seed answered with.
    ///
    /// # Errors
    /// Transport failures or a malformed answer.
    pub fn join_via(seed: &str, me: &NodeSpec) -> io::Result<Vec<NodeSpec>> {
        let mut client = FarmClient::connect(seed.to_string());
        let resp = client.http().send(
            "POST",
            "/cluster/join",
            &[],
            me.to_value().to_string().as_bytes(),
            None,
            true,
        )?;
        if resp.status != 200 {
            return Err(io::Error::other(format!(
                "join via {seed} answered {}: {}",
                resp.status,
                resp.text()
            )));
        }
        let doc = lp_obs::json::parse(&resp.text())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let peers = doc
            .get("peers")
            .and_then(Value::as_arr)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "join answer lacks peers"))?;
        peers
            .iter()
            .map(|p| {
                NodeSpec::from_value(p).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            })
            .collect()
    }

    // ---- plumbing -------------------------------------------------------

    /// Runs `f` with the pooled client for `addr` (created on first
    /// use). The pool lock is held only for the lookup; the per-peer
    /// lock for the call.
    fn with_client<R>(&self, addr: &str, f: impl FnOnce(&mut FarmClient) -> R) -> R {
        let slot = {
            let mut pool = self.inner.clients.lock().expect("cluster client pool lock");
            Arc::clone(pool.entry(addr.to_string()).or_insert_with(|| {
                let mut c = FarmClient::connect(addr.to_string());
                c.set_timeout(Duration::from_millis(
                    self.inner.cfg.rpc_timeout_ms.max(100),
                ));
                Arc::new(Mutex::new(c))
            }))
        };
        let mut client = slot.lock().expect("cluster client lock");
        f(&mut client)
    }

    fn refresh_gauges(&self) {
        let m = self.membership();
        let (alive, dead) = m.counts();
        self.inner
            .obs
            .gauge(names::CLUSTER_PEERS_ALIVE)
            .set(alive as f64);
        self.inner
            .obs
            .gauge(names::CLUSTER_PEERS_DEAD)
            .set(dead as f64);
        self.inner
            .obs
            .gauge(names::CLUSTER_RING_NODES)
            .set(m.ring.len() as f64);
        self.inner
            .obs
            .gauge(names::CLUSTER_OWNED_FRACTION)
            .set(m.ring.owned_fraction(&m.self_addr));
    }
}

/// Everything a fully wired cluster member runs: node, farm, server,
/// threads. [`spawn_node`] builds one; the driver and the tests/bench
/// share this composition.
pub struct RunningNode {
    /// The cluster runtime.
    pub node: ClusterNode,
    /// The node's farm.
    pub farm: Farm,
    /// The HTTP front door (farm + `/cluster/*`).
    pub server: FarmServer,
    threads: Option<ClusterThreads>,
}

impl RunningNode {
    /// Graceful teardown: farm drain, server stop, cluster threads
    /// joined.
    pub fn shutdown(mut self, mode: lp_farm::ShutdownMode) {
        self.farm.shutdown(mode);
        self.farm.join();
        if let Some(threads) = self.threads.take() {
            self.node.stop(threads);
        }
        self.server.stop();
    }

    /// Crash simulation: stops the HTTP front door and the cluster
    /// threads *without* draining the farm, leaving the journal exactly
    /// as `kill -9` would. The farm's worker threads are detached (the
    /// [`Farm`] handle carries no `Drop`); peers observe the node as
    /// dead once its port stops answering.
    pub fn abandon(mut self) {
        if let Some(threads) = self.threads.take() {
            self.node.stop(threads);
        }
        self.server.stop();
    }
}

/// Wires up one cluster member: node state, a [`ClusterBackend`] around
/// `inner_backend`, the farm (journal in `farm_dir`, id base from the
/// cluster ordinal), the HTTP server with cluster extensions, and the
/// heartbeat/replication threads.
///
/// The `store` handle, when present, is shared between the cluster node
/// (artifact serving, fetch-on-miss, replication) and whatever the
/// caller's `inner_backend` does with its own clone — pass the same
/// `Arc` to both so a fetched artifact is immediately visible to the
/// backend's cache check.
///
/// # Errors
/// Farm start or server bind failures.
pub fn spawn_node(
    bind: &str,
    cluster_cfg: ClusterConfig,
    mut farm_cfg: lp_farm::FarmConfig,
    inner_backend: Arc<dyn lp_farm::JobBackend>,
    store: Option<Arc<Store>>,
    obs: Observer,
) -> io::Result<RunningNode> {
    let node = ClusterNode::new(cluster_cfg, store.clone(), obs.clone());
    farm_cfg.id_base = node.id_base();
    let backend = Arc::new(ClusterBackend::new(inner_backend, node.clone(), store));
    let farm = Farm::start(farm_cfg, backend, obs)?;
    node.attach_farm(farm.clone());
    let server = FarmServer::start_with(bind, farm.clone(), node.extensions())?;
    let threads = node.start_threads();
    Ok(RunningNode {
        node,
        farm,
        server,
        threads: Some(threads),
    })
}
