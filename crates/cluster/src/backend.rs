//! The cluster-aware [`JobBackend`] decorator: store fetch-on-miss
//! before compute, successor replication after.
//!
//! The farm's dedup is per-node; the store is the cluster's shared
//! memory. Wrapping the real backend here turns a *local* store miss
//! into a cluster question — "has the key's owner (or its replica)
//! already finished this?" — before paying for the pipeline, and pushes
//! freshly computed summaries to the ring successor so a single node
//! death cannot lose the only copy.

use crate::ClusterNode;
use lp_farm::{JobBackend, JobSpec};
use lp_store::{ArtifactKind, Store, StoreKey};
use std::sync::Arc;

/// Wraps an inner backend with cluster-wide dedup. Without a store the
/// decorator is a transparent pass-through (nothing to seed or
/// replicate).
pub struct ClusterBackend {
    inner: Arc<dyn JobBackend>,
    node: ClusterNode,
    store: Option<Arc<Store>>,
}

impl ClusterBackend {
    /// Decorates `inner` with fetch-on-miss and replication through
    /// `node`.
    pub fn new(inner: Arc<dyn JobBackend>, node: ClusterNode, store: Option<Arc<Store>>) -> Self {
        ClusterBackend { inner, node, store }
    }
}

impl JobBackend for ClusterBackend {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        self.inner.job_key(spec)
    }

    fn execute(&self, spec: &JobSpec, cancel: &looppoint::CancelToken) -> Result<String, String> {
        let Some(store) = &self.store else {
            return self.inner.execute(spec, cancel);
        };
        let key = self
            .inner
            .job_key(spec)
            .ok()
            .and_then(|hex| StoreKey::from_hex(&hex));
        let Some(key) = key else {
            // A backend with non-store-shaped keys still executes; it
            // just cannot participate in artifact exchange.
            return self.inner.execute(spec, cancel);
        };
        // Cluster dedup: seed the local store from the key's owner (or
        // replica) so the inner backend's own summary-cache check hits
        // without computing.
        let had_local = store.contains(&key, ArtifactKind::JobSummary);
        if !had_local {
            self.node.fetch_into_store(&key, ArtifactKind::JobSummary);
        }
        let had_before = had_local || store.contains(&key, ArtifactKind::JobSummary);
        let result = self.inner.execute(spec, cancel)?;
        if !had_before {
            // Freshly computed here: hand the successor a copy so the
            // result outlives this node.
            self.node
                .replicate(key, ArtifactKind::JobSummary, result.clone().into_bytes());
        }
        Ok(result)
    }
}
