//! Property-based record/replay equivalence on randomized contended
//! programs.

use lp_isa::{Addr, AluOp, Machine, ProgramBuilder, Reg};
use lp_omp::{LockId, OmpRuntime, WaitPolicy, APP_BASE};
use lp_pinball::{Pinball, RecordConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a randomized parallel program: each thread mixes atomic adds,
/// locked updates, and private compute, with parameters drawn by proptest.
fn random_program(
    nthreads: usize,
    policy: WaitPolicy,
    iters: u64,
    chunk: u64,
    use_lock: bool,
) -> Arc<lp_isa::Program> {
    let mut pb = ProgramBuilder::new("prop");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    rt.emit_dyn_reset(&mut c);
    rt.emit_parallel(&mut c, "work", |c, rt| {
        rt.emit_dynamic_for(c, "work.loop", iters, chunk, |c, rt| {
            c.li(Reg::R1, APP_BASE as i64);
            c.li(Reg::R2, 1);
            c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
            if use_lock {
                rt.emit_critical(c, LockId(4), |c, _| {
                    c.load(Reg::R4, Reg::R1, 8);
                    c.alui(AluOp::Add, Reg::R4, Reg::R4, 3);
                    c.store(Reg::R4, Reg::R1, 8);
                });
            }
        });
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any program shape, policy, thread count, and recording quantum:
    /// replay retires exactly the recorded stream and reproduces the final
    /// shared state of a plain run.
    #[test]
    fn record_replay_equivalence(
        nthreads in 1usize..6,
        active in any::<bool>(),
        iters in 8u64..64,
        chunk in 1u64..8,
        use_lock in any::<bool>(),
        quantum in 7u64..300,
    ) {
        let policy = if active { WaitPolicy::Active } else { WaitPolicy::Passive };
        let p = random_program(nthreads, policy, iters, chunk, use_lock);

        let mut plain = Machine::new(p.clone(), nthreads);
        plain.run_to_completion(u64::MAX).unwrap();

        let pb = Pinball::record(&p, nthreads, RecordConfig { quantum, max_steps: u64::MAX })
            .unwrap();
        let mut rep = pb.replayer(p.clone());
        let mut retired = 0u64;
        while rep.step().unwrap().is_some() {
            retired += 1;
        }
        prop_assert_eq!(retired, pb.instructions());
        prop_assert!(rep.is_finished());
        prop_assert_eq!(
            rep.machine().mem().load(Addr(APP_BASE)),
            plain.mem().load(Addr(APP_BASE))
        );
        prop_assert_eq!(
            rep.machine().mem().load(Addr(APP_BASE + 8)),
            plain.mem().load(Addr(APP_BASE + 8))
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On-disk pinball serialization is a lossless, canonical round trip
    /// for any recording — including share-everything programs whose race
    /// log approaches one event per retired shared access (the maximal
    /// log for the program). The re-encoded bytes are identical, so the
    /// content checksum is stable across save/load cycles.
    #[test]
    fn fileio_roundtrip_any_recording(
        nthreads in 1usize..6,
        iters in 8u64..64,
        chunk in 1u64..8,
        quantum in 7u64..300,
        all_shared in any::<bool>(),
    ) {
        // `use_lock = all_shared` piles lock traffic on top of the atomic
        // adds: every body instruction then touches shared state, pushing
        // the race log towards its maximum length for the program.
        let p = random_program(nthreads, WaitPolicy::Passive, iters, chunk, all_shared);
        let pb = Pinball::record(&p, nthreads, RecordConfig { quantum, max_steps: u64::MAX })
            .unwrap();
        prop_assert!(!pb.events().is_empty(), "contended programs log events");

        let bytes = pb.to_bytes();
        let loaded = Pinball::from_bytes(&bytes).unwrap();
        prop_assert_eq!(loaded.name(), pb.name());
        prop_assert_eq!(loaded.nthreads(), pb.nthreads());
        prop_assert_eq!(loaded.instructions(), pb.instructions());
        prop_assert_eq!(loaded.events(), pb.events());
        prop_assert_eq!(loaded.to_bytes(), bytes, "canonical re-encoding");
        prop_assert_eq!(loaded.content_checksum(), pb.content_checksum());

        // The loaded pinball replays to the same shared state.
        let a = pb.replay(p.clone(), &mut [], u64::MAX).unwrap();
        let b = loaded.replay(p, &mut [], u64::MAX).unwrap();
        prop_assert_eq!(a, b);
    }
}
