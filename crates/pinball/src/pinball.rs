//! Pinball recording.

use crate::observer::ExecObserver;
use crate::replay::Replayer;
use lp_isa::{Machine, MachineError, MachineState, Program, StepResult, ThreadState};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Kind of a race-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// A retired access to shared memory (load, store, atomic, futex op).
    Access,
    /// A futex wait that put the thread to sleep (no retirement). Logged so
    /// replay reproduces futex queue order, which determines wake order.
    Block,
}

/// One entry of the shared-memory order log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceEvent {
    /// The thread that performed the access (or blocked).
    pub tid: u32,
    /// Entry kind.
    pub kind: RaceKind,
}

/// Errors raised while recording or replaying pinballs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinballError {
    /// The functional machine faulted.
    Machine(MachineError),
    /// Replay state stopped matching the recorded log.
    Diverged {
        /// Index of the log entry that could not be honoured.
        at_event: usize,
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The step budget was exhausted.
    StepLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// A requested `(PC, count)` point was never reached during replay.
    MarkerNotReached {
        /// Times the marker PC executed before the program ended.
        executed: u64,
    },
}

impl fmt::Display for PinballError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinballError::Machine(e) => write!(f, "machine fault: {e}"),
            PinballError::Diverged { at_event, reason } => {
                write!(f, "replay diverged at event {at_event}: {reason}")
            }
            PinballError::StepLimit { limit } => write!(f, "step limit of {limit} exhausted"),
            PinballError::MarkerNotReached { executed } => {
                write!(f, "marker not reached (pc executed {executed} times)")
            }
        }
    }
}

impl Error for PinballError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PinballError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for PinballError {
    fn from(e: MachineError) -> Self {
        PinballError::Machine(e)
    }
}

/// Recording parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecordConfig {
    /// Flow-control quantum: instructions each thread may retire before the
    /// recorder rotates to the next thread (§III-B equal-progress).
    pub quantum: u64,
    /// Hard budget on total retired instructions.
    pub max_steps: u64,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            quantum: 61,
            max_steps: 2_000_000_000,
        }
    }
}

/// Statistics from a full replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Total instructions retired.
    pub instructions: u64,
    /// Instructions retired per thread.
    pub per_thread: Vec<u64>,
}

/// A recorded, replayable multi-threaded execution.
///
/// Self-contained in the paper's sense: holds the initial architectural
/// state and the shared-access order; replay needs the [`Program`] only as
/// the instruction source (the in-memory stand-in for the pinball's `.text`
/// section).
///
/// ```
/// use lp_isa::{ProgramBuilder, Reg, AluOp};
/// use lp_pinball::{Pinball, RecordConfig};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), lp_pinball::PinballError> {
/// let mut pb = ProgramBuilder::new("demo");
/// let mut c = pb.main_code();
/// c.counted_loop("l", Reg::R1, 10, |c| {
///     c.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
/// });
/// c.halt();
/// c.finish();
/// let program = Arc::new(pb.finish());
///
/// let pinball = Pinball::record(&program, 1, RecordConfig::default())?;
/// let stats = pinball.replay(program, &mut [], u64::MAX)?;
/// assert_eq!(stats.instructions, pinball.instructions());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pinball {
    name: String,
    nthreads: usize,
    start: MachineState,
    events: Vec<RaceEvent>,
    instructions: u64,
}

impl Pinball {
    /// Records `program` executing with `nthreads` threads under
    /// flow-controlled round-robin scheduling.
    ///
    /// # Errors
    /// Machine faults, deadlock, or an exhausted step budget.
    pub fn record(
        program: &Arc<Program>,
        nthreads: usize,
        cfg: RecordConfig,
    ) -> Result<Pinball, PinballError> {
        let obs = lp_obs::global();
        let mut span = obs.span("pinball.record", "pinball");
        span.arg("nthreads", nthreads);
        let mut machine = Machine::new(program.clone(), nthreads);
        let start = machine.snapshot();
        let mut events = Vec::new();
        let mut instructions: u64 = 0;
        let mut tid = 0usize;

        'outer: while !machine.is_finished() {
            if instructions >= cfg.max_steps {
                return Err(PinballError::StepLimit {
                    limit: cfg.max_steps,
                });
            }
            // Rotate to the next runnable thread.
            let mut probes = 0;
            while machine.thread_state(tid) != ThreadState::Running {
                tid = (tid + 1) % nthreads;
                probes += 1;
                if probes > nthreads {
                    debug_assert!(machine.is_deadlocked());
                    return Err(PinballError::Machine(MachineError::Deadlock));
                }
            }
            // Run one quantum on this thread.
            for _ in 0..cfg.quantum {
                match machine.step(tid)? {
                    StepResult::Retired(r) => {
                        instructions += 1;
                        if r.mem.is_some_and(|m| m.shared) {
                            events.push(RaceEvent {
                                tid: tid as u32,
                                kind: RaceKind::Access,
                            });
                        }
                        if machine.is_finished() {
                            break 'outer;
                        }
                        if machine.thread_state(tid) != ThreadState::Running {
                            break; // thread halted
                        }
                    }
                    StepResult::Blocked => {
                        events.push(RaceEvent {
                            tid: tid as u32,
                            kind: RaceKind::Block,
                        });
                        break;
                    }
                    StepResult::Idle => break,
                }
            }
            tid = (tid + 1) % nthreads;
        }

        span.arg("instructions", instructions);
        span.arg("events", events.len());
        obs.counter("pinball.recorded_instructions")
            .add(instructions);
        obs.counter("pinball.race_events").add(events.len() as u64);
        Ok(Pinball {
            name: program.name().to_string(),
            nthreads,
            start,
            events,
            instructions,
        })
    }

    /// Reassembles a pinball from deserialized parts (crate-internal).
    pub(crate) fn from_parts(
        name: String,
        nthreads: usize,
        start: MachineState,
        events: Vec<RaceEvent>,
        instructions: u64,
    ) -> Pinball {
        Pinball {
            name,
            nthreads,
            start,
            events,
            instructions,
        }
    }

    /// The recorded program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thread count the execution was recorded with.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Total instructions retired during recording.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The shared-access order log.
    pub fn events(&self) -> &[RaceEvent] {
        &self.events
    }

    /// The architectural snapshot replay starts from.
    pub fn start_state(&self) -> &MachineState {
        &self.start
    }

    /// Creates a constrained replayer positioned at the start of the
    /// recording.
    pub fn replayer(&self, program: Arc<Program>) -> Replayer<'_> {
        Replayer::from_state(program, &self.start, &self.events, 0, self.nthreads)
    }

    /// Replays the whole pinball, feeding every retirement to `observers`.
    ///
    /// # Errors
    /// Replay divergence, machine faults, or budget exhaustion.
    pub fn replay(
        &self,
        program: Arc<Program>,
        observers: &mut [&mut dyn ExecObserver],
        max_steps: u64,
    ) -> Result<ReplayStats, PinballError> {
        let trace = lp_obs::global();
        let mut span = trace.span("pinball.replay", "pinball");
        let mut rep = self.replayer(program);
        let mut stats = ReplayStats {
            per_thread: vec![0; self.nthreads],
            ..Default::default()
        };
        while let Some(r) = rep.step()? {
            stats.instructions += 1;
            stats.per_thread[r.tid] += 1;
            for obs in observers.iter_mut() {
                obs.on_retire(&r);
            }
            if stats.instructions > max_steps {
                return Err(PinballError::StepLimit { limit: max_steps });
            }
        }
        span.arg("instructions", stats.instructions);
        trace
            .counter("pinball.replayed_instructions")
            .add(stats.instructions);
        Ok(stats)
    }
}
