//! On-disk pinball format: portable, shareable checkpoints.
//!
//! A serialized pinball bundles the initial [`lp_isa::MachineState`]
//! (registers + memory, like a pinball's `.reg`/`.text` data) with the
//! shared-memory order log (the `.race` files) and metadata. The program —
//! the "binary" — travels separately, exactly as a real pinball carries an
//! embedded text image rather than the original executable; on load, the
//! caller supplies the program and the recorded name is checked against it.

use crate::pinball::{Pinball, PinballError, RaceEvent, RaceKind};
use lp_isa::MachineState;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"LPPB";
const VERSION: u32 = 1;

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl Pinball {
    /// Serializes the pinball to `w` in the versioned binary format.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(w, VERSION)?;
        let name = self.name().as_bytes();
        put_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        put_u32(w, self.nthreads() as u32)?;
        put_u64(w, self.instructions())?;
        // Race log: one packed u32 per event (bit 31 = Block).
        put_u64(w, self.events().len() as u64)?;
        for ev in self.events() {
            let kind_bit = match ev.kind {
                RaceKind::Access => 0u32,
                RaceKind::Block => 1u32 << 31,
            };
            put_u32(w, kind_bit | ev.tid)?;
        }
        self.start_state().write_to(w)
    }

    /// Deserializes a pinball previously written by [`Pinball::write_to`].
    ///
    /// # Errors
    /// I/O errors, or `InvalidData` on format violations.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Pinball> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a pinball (bad magic)"));
        }
        if get_u32(r)? != VERSION {
            return Err(bad("unsupported pinball version"));
        }
        let name_len = get_u32(r)? as usize;
        if name_len > 4096 {
            return Err(bad("implausible name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("name is not UTF-8"))?;
        let nthreads = get_u32(r)? as usize;
        if nthreads == 0 || nthreads > 4096 {
            return Err(bad("implausible thread count"));
        }
        let instructions = get_u64(r)?;
        let nevents = get_u64(r)? as usize;
        let mut events = Vec::with_capacity(nevents.min(1 << 24));
        for _ in 0..nevents {
            let packed = get_u32(r)?;
            let tid = packed & !(1 << 31);
            if tid as usize >= nthreads {
                return Err(bad("race-log tid out of range"));
            }
            events.push(RaceEvent {
                tid,
                kind: if packed & (1 << 31) != 0 {
                    RaceKind::Block
                } else {
                    RaceKind::Access
                },
            });
        }
        let start = MachineState::read_from(r)?;
        Ok(Pinball::from_parts(
            name,
            nthreads,
            start,
            events,
            instructions,
        ))
    }

    /// Serializes the pinball to owned bytes.
    ///
    /// The encoding is **canonical**: [`Pinball::write_to`] sorts every
    /// hash-map-backed structure (memory pages, futex queues), so equal
    /// pinballs always produce equal bytes. This is what the artifact store
    /// persists and what [`Pinball::content_checksum`] hashes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.write_to(&mut bytes)
            .expect("Vec<u8> writes are infallible");
        bytes
    }

    /// Deserializes a pinball from bytes produced by [`Pinball::to_bytes`].
    ///
    /// # Errors
    /// `InvalidData` on format violations (see [`Pinball::read_from`]).
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Pinball> {
        let mut r = bytes;
        let pb = Pinball::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(bad("trailing bytes after pinball"));
        }
        Ok(pb)
    }

    /// 64-bit content checksum over the canonical encoding, streamed (no
    /// intermediate buffer): two pinballs with the same checksum are the
    /// same recording for every practical purpose — same race log, same
    /// start state, same metadata.
    pub fn content_checksum(&self) -> u64 {
        let mut h = lp_store::Hash64::checksum();
        self.write_to(&mut h)
            .expect("hashing writes are infallible");
        h.finish()
    }

    /// Validates that `program` matches the pinball's recorded program (by
    /// name — the level of identity a real pinball's metadata provides).
    ///
    /// # Errors
    /// [`PinballError::Diverged`] describing the mismatch.
    pub fn check_program(&self, program: &lp_isa::Program) -> Result<(), PinballError> {
        if program.name() != self.name() {
            return Err(PinballError::Diverged {
                at_event: 0,
                reason: format!(
                    "pinball was recorded from '{}', but program is '{}'",
                    self.name(),
                    program.name()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::pinball::{Pinball, RecordConfig};
    use lp_isa::{Addr, AluOp, ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};
    use std::sync::Arc;

    fn program() -> Arc<lp_isa::Program> {
        let mut pb = ProgramBuilder::new("fileio");
        let mut rt = OmpRuntime::build(&mut pb, 3, WaitPolicy::Passive);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "w", |c, rt| {
            rt.emit_static_for(c, "w.loop", 60, |c, _| {
                c.li(Reg::R1, APP_BASE as i64);
                c.li(Reg::R2, 1);
                c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
                c.alui(AluOp::Add, Reg::R4, Reg::R16, 2);
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        Arc::new(pb.finish())
    }

    #[test]
    fn roundtrip_replays_identically() {
        let p = program();
        let orig = Pinball::record(&p, 3, RecordConfig::default()).unwrap();

        let mut bytes = Vec::new();
        orig.write_to(&mut bytes).unwrap();
        let loaded = Pinball::read_from(&mut bytes.as_slice()).unwrap();

        assert_eq!(loaded.name(), orig.name());
        assert_eq!(loaded.nthreads(), orig.nthreads());
        assert_eq!(loaded.instructions(), orig.instructions());
        assert_eq!(loaded.events(), orig.events());
        loaded.check_program(&p).unwrap();

        let a = orig.replay(p.clone(), &mut [], u64::MAX).unwrap();
        let b = loaded.replay(p.clone(), &mut [], u64::MAX).unwrap();
        assert_eq!(a, b, "loaded pinball replays identically");

        let mut rep = loaded.replayer(p);
        while rep.step().unwrap().is_some() {}
        assert_eq!(rep.machine().mem().load(Addr(APP_BASE)), 60);
    }

    #[test]
    fn program_mismatch_detected() {
        let p = program();
        let pb = Pinball::record(&p, 3, RecordConfig::default()).unwrap();
        let mut other = ProgramBuilder::new("different");
        let mut c = other.main_code();
        c.halt();
        c.finish();
        let other = other.finish();
        assert!(pb.check_program(&other).is_err());
        pb.check_program(&p).unwrap();
    }

    #[test]
    fn corrupted_stream_rejected() {
        let p = program();
        let pb = Pinball::record(&p, 3, RecordConfig::default()).unwrap();
        let mut bytes = Vec::new();
        pb.write_to(&mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(Pinball::read_from(&mut bytes.as_slice()).is_err());

        let mut bytes2 = Vec::new();
        pb.write_to(&mut bytes2).unwrap();
        bytes2.truncate(bytes2.len() - 7);
        assert!(Pinball::read_from(&mut bytes2.as_slice()).is_err());
    }

    #[test]
    fn canonical_bytes_and_checksum() {
        let p = program();
        let pb = Pinball::record(&p, 3, RecordConfig::default()).unwrap();

        // to_bytes == write_to, and is stable across calls.
        let mut via_writer = Vec::new();
        pb.write_to(&mut via_writer).unwrap();
        assert_eq!(pb.to_bytes(), via_writer);
        assert_eq!(pb.to_bytes(), pb.to_bytes());

        // Streamed checksum == one-shot checksum of the canonical bytes.
        assert_eq!(pb.content_checksum(), lp_store::checksum64(&via_writer));

        // A re-recording of the same program has the same checksum; a
        // different schedule (quantum) changes the race log and thus it.
        let again = Pinball::record(&p, 3, RecordConfig::default()).unwrap();
        assert_eq!(pb.content_checksum(), again.content_checksum());

        // from_bytes roundtrip, and trailing garbage is rejected.
        let loaded = Pinball::from_bytes(&via_writer).unwrap();
        assert_eq!(loaded.content_checksum(), pb.content_checksum());
        let mut padded = via_writer.clone();
        padded.push(0);
        assert!(Pinball::from_bytes(&padded).is_err());
    }

    #[test]
    fn format_is_compact() {
        // The log costs 4 bytes per *shared access*, not per instruction:
        // growing the program adds far fewer bytes than a raw trace would.
        let size_of = |pb: &Pinball| {
            let mut bytes = Vec::new();
            pb.write_to(&mut bytes).unwrap();
            bytes.len() as u64
        };
        let p = program();
        let small = Pinball::record(&p, 3, RecordConfig::default()).unwrap();
        let small_size = size_of(&small);
        // Same program recorded with a different quantum has the same event
        // count but possibly different ordering — size identical.
        let again = Pinball::record(
            &p,
            3,
            RecordConfig {
                quantum: 17,
                ..Default::default()
            },
        )
        .unwrap();
        // Different quanta block on futexes a different number of times, so
        // event counts differ slightly — and the size tracks exactly that.
        let expect =
            small_size as i64 + 4 * (again.events().len() as i64 - small.events().len() as i64);
        assert_eq!(size_of(&again) as i64, expect, "size is event-count-driven");
        // And the log portion is 4 bytes per event.
        let log_bytes = small.events().len() as u64 * 4;
        assert!(log_bytes < small.instructions(), "log ≪ instruction trace");
    }
}
