//! Constrained replay: re-execution that honours the recorded
//! shared-access order.

use crate::pinball::{PinballError, RaceEvent, RaceKind};
use lp_isa::{Machine, MachineState, Program, Retired, StepResult, ThreadState};
use std::sync::Arc;

/// Per-thread scheduling classification cached between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Runnable, next instruction does not touch shared memory.
    Free,
    /// Runnable, next instruction is a shared access (ordered by the log).
    AtShared,
    /// Blocked or halted.
    NotRunnable,
}

/// Step-wise constrained replayer.
///
/// Scheduling rule: threads whose next instruction is private (registers or
/// private memory) run freely; shared-memory accesses are only allowed in
/// the recorded order. Futex blocks are replayed from the log too, so futex
/// queue order — and therefore wake order — matches the recording exactly.
/// Given the per-thread determinism of the ISA, this reproduces the recorded
/// execution's shared state at every log point.
#[derive(Debug)]
pub struct Replayer<'p> {
    machine: Machine,
    events: &'p [RaceEvent],
    idx: usize,
    class: Vec<Class>,
}

impl<'p> Replayer<'p> {
    /// Builds a replayer from a snapshot plus the log tail starting at
    /// `event_start`. Used by whole-program replay (`event_start = 0`) and
    /// by region checkpoints.
    pub(crate) fn from_state(
        program: Arc<Program>,
        state: &MachineState,
        events: &'p [RaceEvent],
        event_start: usize,
        nthreads: usize,
    ) -> Self {
        let machine = Machine::from_snapshot(program, state);
        let mut rep = Replayer {
            machine,
            events,
            idx: event_start,
            class: vec![Class::Free; nthreads],
        };
        for tid in 0..nthreads {
            rep.reclassify(tid);
        }
        rep
    }

    /// The underlying machine (read-only).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Index of the next unconsumed race-log entry.
    pub fn event_index(&self) -> usize {
        self.idx
    }

    /// Whether the replayed execution has finished.
    pub fn is_finished(&self) -> bool {
        self.machine.is_finished()
    }

    fn reclassify(&mut self, tid: usize) {
        self.class[tid] = if self.machine.thread_state(tid) != ThreadState::Running {
            Class::NotRunnable
        } else {
            match self.machine.preview_access(tid) {
                Some(acc) if acc.shared => Class::AtShared,
                _ => Class::Free,
            }
        };
    }

    fn reclassify_woken(&mut self) {
        for tid in 0..self.class.len() {
            if self.class[tid] == Class::NotRunnable
                && self.machine.thread_state(tid) == ThreadState::Running
            {
                self.reclassify(tid);
            }
        }
    }

    /// Executes until the next retirement, returning it — or `None` when
    /// the program has finished.
    ///
    /// # Errors
    /// [`PinballError::Diverged`] if the log cannot be honoured (which, for
    /// a log recorded from the same program and state, indicates a bug).
    pub fn step(&mut self) -> Result<Option<Retired>, PinballError> {
        loop {
            if self.machine.is_finished() {
                return Ok(None);
            }
            // Prefer a thread that is off the shared-access critical path.
            let free = (0..self.class.len()).find(|&t| self.class[t] == Class::Free);
            let tid = match free {
                Some(t) => t,
                None => {
                    let Some(ev) = self.events.get(self.idx) else {
                        // Log exhausted with only shared accesses pending:
                        // the recording ended here too, so any remaining
                        // runnable work would be divergence.
                        if (0..self.class.len()).any(|t| self.class[t] == Class::AtShared) {
                            return Err(PinballError::Diverged {
                                at_event: self.idx,
                                reason: "race log exhausted with shared accesses pending"
                                    .to_string(),
                            });
                        }
                        return Err(PinballError::Diverged {
                            at_event: self.idx,
                            reason: "no runnable thread (deadlock)".to_string(),
                        });
                    };
                    ev.tid as usize
                }
            };

            let following_log = free.is_none();
            match self.machine.step(tid)? {
                StepResult::Retired(r) => {
                    let was_shared = r.mem.is_some_and(|m| m.shared);
                    if following_log {
                        let ev = self.events[self.idx];
                        if ev.kind != RaceKind::Access || !was_shared {
                            return Err(PinballError::Diverged {
                                at_event: self.idx,
                                reason: format!(
                                    "expected {:?} by thread {}, got retirement (shared={})",
                                    ev.kind, ev.tid, was_shared
                                ),
                            });
                        }
                        self.idx += 1;
                    } else if was_shared {
                        return Err(PinballError::Diverged {
                            at_event: self.idx,
                            reason: format!(
                                "free-scheduled thread {tid} performed a shared access"
                            ),
                        });
                    }
                    self.reclassify(tid);
                    if matches!(r.inst, lp_isa::Inst::FutexWake { .. }) {
                        self.reclassify_woken();
                    }
                    return Ok(Some(r));
                }
                StepResult::Blocked => {
                    if !following_log {
                        return Err(PinballError::Diverged {
                            at_event: self.idx,
                            reason: format!("free-scheduled thread {tid} blocked"),
                        });
                    }
                    let ev = self.events[self.idx];
                    if ev.kind != RaceKind::Block {
                        return Err(PinballError::Diverged {
                            at_event: self.idx,
                            reason: format!(
                                "expected Access by thread {}, but thread blocked",
                                ev.tid
                            ),
                        });
                    }
                    self.idx += 1;
                    self.reclassify(tid);
                    // No retirement; continue scheduling.
                }
                StepResult::Idle => {
                    return Err(PinballError::Diverged {
                        at_event: self.idx,
                        reason: format!("log named non-runnable thread {tid}"),
                    });
                }
            }
        }
    }

    /// Takes a snapshot of the current machine state plus the replay
    /// position (for region checkpoints).
    pub fn snapshot(&self) -> (MachineState, usize) {
        (self.machine.snapshot(), self.idx)
    }
}

#[cfg(test)]
mod tests {
    use crate::pinball::{Pinball, RecordConfig};
    use lp_isa::{Addr, AluOp, Machine, ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};
    use std::sync::Arc;

    fn racy_program(nthreads: usize, policy: WaitPolicy) -> Arc<lp_isa::Program> {
        // Threads contend on locks and atomics; the final shared state is
        // schedule-independent but the access *order* is not — exactly what
        // the race log must pin down.
        let mut pb = ProgramBuilder::new("racy");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_dyn_reset(&mut c);
        rt.emit_parallel(&mut c, "work", |c, rt| {
            rt.emit_dynamic_for(c, "work.loop", 64, 3, |c, rt| {
                c.li(Reg::R1, APP_BASE as i64);
                c.li(Reg::R2, 1);
                c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
                rt.emit_critical(c, lp_omp::LockId(1), |c, _| {
                    c.load(Reg::R4, Reg::R1, 8);
                    c.alui(AluOp::Add, Reg::R4, Reg::R4, 2);
                    c.store(Reg::R4, Reg::R1, 8);
                });
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        Arc::new(pb.finish())
    }

    #[test]
    fn record_then_replay_matches_instruction_counts() {
        for policy in [WaitPolicy::Passive, WaitPolicy::Active] {
            let p = racy_program(4, policy);
            let pb = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
            let stats = pb.replay(p.clone(), &mut [], u64::MAX).unwrap();
            assert_eq!(
                stats.instructions,
                pb.instructions(),
                "replay must retire exactly the recorded stream ({policy})"
            );
        }
    }

    #[test]
    fn replay_reproduces_final_memory() {
        let p = racy_program(4, WaitPolicy::Passive);
        let pb = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
        let mut rep = pb.replayer(p.clone());
        while rep.step().unwrap().is_some() {}
        assert!(rep.is_finished());
        assert_eq!(rep.machine().mem().load(Addr(APP_BASE)), 64);
        assert_eq!(rep.machine().mem().load(Addr(APP_BASE + 8)), 128);
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let p = racy_program(8, WaitPolicy::Active);
        let pb = Pinball::record(&p, 8, RecordConfig::default()).unwrap();
        let a = pb.replay(p.clone(), &mut [], u64::MAX).unwrap();
        let b = pb.replay(p.clone(), &mut [], u64::MAX).unwrap();
        assert_eq!(a, b, "two replays are bit-identical");
        assert_eq!(a.per_thread, b.per_thread);
    }

    #[test]
    fn different_quanta_record_different_interleavings_same_result() {
        // Recording on "different hosts" (different flow-control quanta)
        // yields different race logs but the same functional outcome.
        let p = racy_program(4, WaitPolicy::Passive);
        let pb1 = Pinball::record(
            &p,
            4,
            RecordConfig {
                quantum: 13,
                ..Default::default()
            },
        )
        .unwrap();
        let pb2 = Pinball::record(
            &p,
            4,
            RecordConfig {
                quantum: 173,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(
            pb1.events(),
            pb2.events(),
            "hosts interleave shared accesses differently"
        );
        let mut r1 = pb1.replayer(p.clone());
        while r1.step().unwrap().is_some() {}
        let mut r2 = pb2.replayer(p.clone());
        while r2.step().unwrap().is_some() {}
        assert_eq!(
            r1.machine().mem().load(Addr(APP_BASE)),
            r2.machine().mem().load(Addr(APP_BASE))
        );
    }

    #[test]
    fn single_threaded_pinball_has_no_blocks() {
        let mut pbuild = ProgramBuilder::new("st");
        let mut c = pbuild.main_code();
        c.li(Reg::R1, 0x40);
        c.counted_loop("l", Reg::R2, 10, |c| {
            c.load(Reg::R3, Reg::R1, 0);
            c.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
            c.store(Reg::R3, Reg::R1, 0);
        });
        c.halt();
        c.finish();
        let p = Arc::new(pbuild.finish());
        let pb = Pinball::record(&p, 1, RecordConfig::default()).unwrap();
        assert!(pb
            .events()
            .iter()
            .all(|e| e.kind == crate::pinball::RaceKind::Access));
        assert_eq!(pb.events().len(), 20, "10 loads + 10 stores");
        let stats = pb.replay(p, &mut [], u64::MAX).unwrap();
        assert_eq!(stats.instructions, pb.instructions());
    }

    #[test]
    fn recording_does_not_perturb_program_results() {
        // The recorded program's functional result equals a plain run.
        let p = racy_program(4, WaitPolicy::Passive);
        let mut plain = Machine::new(p.clone(), 4);
        plain.run_to_completion(u64::MAX).unwrap();
        let pb = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
        let mut rep = pb.replayer(p);
        while rep.step().unwrap().is_some() {}
        assert_eq!(
            plain.mem().load(Addr(APP_BASE)),
            rep.machine().mem().load(Addr(APP_BASE))
        );
    }
}
