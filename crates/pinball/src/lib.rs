//! # lp-pinball — user-level checkpoints for reproducible analysis
//!
//! This crate is the PinPlay substitute (§III-H, §IV-C of the paper). A
//! [`Pinball`] is a self-contained, replayable capture of a multi-threaded
//! execution: the initial architectural state plus a **race log** — the
//! global order of shared-memory accesses (and futex blocks) observed while
//! recording. Replaying the pinball enforces that order, so every analysis
//! pass (DCFG construction, BBV profiling, region-boundary search) sees an
//! identical execution — the paper's *reproducible, constrained analysis*.
//!
//! Recording runs under **flow control**: threads advance round-robin in
//! fixed instruction quanta, the paper's mechanism (§III-B) for keeping all
//! threads at equal forward progress so host-side scheduling noise cannot
//! skew the captured profile.
//!
//! [`RegionCheckpoint`]s snapshot the machine at a `(PC, count)` marker
//! mid-replay; they are the region pinballs LoopPoint ships to simulators.
//! Constrained *timing* simulation on top of a replay (with its artificial
//! thread stalls, §V-A.1) lives in the `looppoint` crate, which combines a
//! [`Replayer`] with `lp-sim`'s timing model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod fileio;
mod observer;
mod pinball;
mod replay;

pub use checkpoint::{MarkerCheckpoints, RegionCheckpoint};
pub use observer::{ExecObserver, FnObserver};
pub use pinball::{Pinball, PinballError, RaceEvent, RaceKind, RecordConfig, ReplayStats};
pub use replay::Replayer;
