//! Region checkpoints: pinballs for selected simulation regions.

use crate::pinball::{Pinball, PinballError};
use crate::replay::Replayer;
use lp_isa::{MachineState, Marker, Pc, Program};
use std::collections::HashMap;
use std::sync::Arc;

/// A pending multi-marker agenda entry: all requested output slots for one
/// distinct `(PC, count)` marker.
#[derive(Debug)]
struct PendingMarker {
    count: u64,
    out_slots: Vec<usize>,
}

/// One [`Pinball::checkpoints_at`] output per input marker: the checkpoint
/// plus the global execution counts of every watched PC at that marker.
pub type MarkerCheckpoints = Vec<(RegionCheckpoint, HashMap<Pc, u64>)>;

/// A checkpoint of the replayed execution at a `(PC, count)` marker.
///
/// This is the region pinball of §IV-C: restoring it and replaying the race
/// log tail reproduces the region exactly as recorded. LoopPoint generates
/// one per representative region (usually positioned a warmup distance
/// before the region's start marker).
#[derive(Debug, Clone)]
pub struct RegionCheckpoint {
    name: String,
    marker: Marker,
    state: MachineState,
    event_start: usize,
    /// Global instructions retired from program start up to the checkpoint.
    instructions_before: u64,
}

impl RegionCheckpoint {
    /// The marker the checkpoint was taken at.
    pub fn marker(&self) -> Marker {
        self.marker
    }

    /// Checkpoint name (program plus marker).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions retired before the checkpoint (the fast-forward length
    /// a simulator is spared).
    pub fn instructions_before(&self) -> u64 {
        self.instructions_before
    }

    /// The architectural snapshot.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Index into the race log where replay resumes.
    pub fn event_start(&self) -> usize {
        self.event_start
    }
}

impl Pinball {
    /// Replays until the `marker.count`-th global execution of `marker.pc`
    /// and snapshots the machine there.
    ///
    /// # Errors
    /// [`PinballError::MarkerNotReached`] if the recording ends first, plus
    /// any replay error.
    pub fn checkpoint_at(
        &self,
        program: Arc<Program>,
        marker: Marker,
    ) -> Result<RegionCheckpoint, PinballError> {
        self.checkpoint_at_with_counts(program, marker, &[])
            .map(|(ckpt, _)| ckpt)
    }

    /// Like [`Pinball::checkpoint_at`], additionally returning the global
    /// execution counts that each `watch` PC had reached at the checkpoint
    /// — what a simulator resuming from the checkpoint needs to keep using
    /// whole-program `(PC, count)` markers.
    ///
    /// # Errors
    /// [`PinballError::MarkerNotReached`] if the recording ends first, plus
    /// any replay error.
    pub fn checkpoint_at_with_counts(
        &self,
        program: Arc<Program>,
        marker: Marker,
        watch: &[Pc],
    ) -> Result<(RegionCheckpoint, HashMap<Pc, u64>), PinballError> {
        let obs = lp_obs::global();
        let mut span = obs.span("pinball.checkpoint", "pinball");
        span.arg("marker", marker.to_string());
        obs.counter("pinball.checkpoint_replays").inc();
        let mut rep = self.replayer(program);
        let mut seen: u64 = 0;
        let mut instructions: u64 = 0;
        let mut counts: HashMap<Pc, u64> = watch.iter().map(|&pc| (pc, 0)).collect();
        while let Some(r) = rep.step()? {
            instructions += 1;
            if let Some(c) = counts.get_mut(&r.pc) {
                *c += 1;
            }
            if r.pc == marker.pc {
                seen += 1;
                if seen == marker.count {
                    let (state, event_start) = rep.snapshot();
                    let ckpt = RegionCheckpoint {
                        name: format!("{}@{}", self.name(), marker),
                        marker,
                        state,
                        event_start,
                        instructions_before: instructions,
                    };
                    span.arg("instructions_before", instructions);
                    obs.counter("pinball.checkpoints").inc();
                    return Ok((ckpt, counts));
                }
            }
        }
        Err(PinballError::MarkerNotReached { executed: seen })
    }

    /// Single-pass, multi-marker checkpoint generation: performs **one**
    /// replay of the pinball and snapshots the machine at every requested
    /// `(PC, count)` marker, returning one `(checkpoint, watch counts)`
    /// pair per input marker, in input order.
    ///
    /// This is the batched form of [`Pinball::checkpoint_at_with_counts`]:
    /// where k independent calls replay the whole recording k times
    /// (O(k·N) retired instructions before any checkpoint is usable), this
    /// carries a sorted agenda of pending markers through a single replay
    /// (O(N)) — the one-logging-pass region-pinball generation of the SPEC
    /// PinPoints tooling. Results are byte-identical to the per-marker
    /// path: duplicate and unsorted markers are fine (duplicates share one
    /// snapshot clone), and every output's watch counts are the global
    /// execution counts of each `watch` PC at that output's marker.
    ///
    /// # Errors
    /// [`PinballError::MarkerNotReached`] if the recording ends before
    /// every marker has fired (reporting the first unmet marker in input
    /// order), plus any replay error.
    pub fn checkpoints_at(
        &self,
        program: Arc<Program>,
        markers: &[Marker],
        watch: &[Pc],
    ) -> Result<MarkerCheckpoints, PinballError> {
        let obs = lp_obs::global();
        let mut span = obs.span("pinball.checkpoint_pass", "pinball");
        span.arg("markers", markers.len());
        if markers.is_empty() {
            return Ok(Vec::new());
        }
        obs.counter("pinball.checkpoint_replays").inc();

        // Agenda: per marker PC, the pending counts sorted ascending, each
        // carrying every output slot that requested it (duplicates fold).
        let mut agenda: HashMap<Pc, Vec<PendingMarker>> = HashMap::new();
        for (slot, m) in markers.iter().enumerate() {
            let pending = agenda.entry(m.pc).or_default();
            match pending.iter_mut().find(|p| p.count == m.count) {
                Some(p) => p.out_slots.push(slot),
                None => pending.push(PendingMarker {
                    count: m.count,
                    out_slots: vec![slot],
                }),
            }
        }
        for pending in agenda.values_mut() {
            pending.sort_by_key(|p| p.count);
            pending.reverse(); // pop from the back = smallest count first
        }
        let mut remaining = agenda.values().map(Vec::len).sum::<usize>();

        let mut out: Vec<Option<(RegionCheckpoint, HashMap<Pc, u64>)>> =
            (0..markers.len()).map(|_| None).collect();
        let mut rep = self.replayer(program);
        let mut instructions: u64 = 0;
        let mut counts: HashMap<Pc, u64> = watch.iter().map(|&pc| (pc, 0)).collect();
        // Global execution count per marker PC (the `seen` of the
        // single-marker path, tracked for every agenda PC at once).
        let mut seen: HashMap<Pc, u64> = agenda.keys().map(|&pc| (pc, 0)).collect();

        while remaining > 0 {
            let Some(r) = rep.step()? else { break };
            instructions += 1;
            if let Some(c) = counts.get_mut(&r.pc) {
                *c += 1;
            }
            let Some(s) = seen.get_mut(&r.pc) else {
                continue;
            };
            *s += 1;
            let pending = agenda.get_mut(&r.pc).expect("agenda has every seen pc");
            while pending.last().is_some_and(|p| p.count == *s) {
                let fired = pending.pop().expect("checked non-empty");
                let marker = Marker::new(r.pc, fired.count);
                let (state, event_start) = rep.snapshot();
                let mut marker_span = obs.span("pinball.checkpoint_pass.marker", "pinball");
                marker_span.arg("marker", marker.to_string());
                marker_span.arg("instructions_before", instructions);
                drop(marker_span);
                obs.counter("pinball.checkpoints").inc();
                for &slot in &fired.out_slots {
                    out[slot] = Some((
                        RegionCheckpoint {
                            name: format!("{}@{}", self.name(), marker),
                            marker,
                            state: state.clone(),
                            event_start,
                            instructions_before: instructions,
                        },
                        counts.clone(),
                    ));
                }
                remaining -= 1;
            }
        }

        if remaining > 0 {
            // Report the first unmet marker in input order.
            let (slot, _) = markers
                .iter()
                .enumerate()
                .find(|(slot, _)| out[*slot].is_none())
                .expect("remaining > 0 implies an unmet marker");
            let executed = seen[&markers[slot].pc];
            return Err(PinballError::MarkerNotReached { executed });
        }
        span.arg("instructions", instructions);
        Ok(out
            .into_iter()
            .map(|o| o.expect("all markers fired"))
            .collect())
    }

    /// Creates a replayer resuming from a region checkpoint.
    pub fn replayer_from<'p>(
        &'p self,
        program: Arc<Program>,
        ckpt: &RegionCheckpoint,
    ) -> Replayer<'p> {
        Replayer::from_state(
            program,
            &ckpt.state,
            self.events(),
            ckpt.event_start,
            self.nthreads(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinball::RecordConfig;
    use lp_isa::{ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};

    fn looped_program(nthreads: usize) -> (Arc<Program>, lp_isa::Pc) {
        let mut pb = ProgramBuilder::new("ckpt");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "work", |c, rt| {
            rt.emit_static_for(c, "work.loop", 128, |c, _| {
                c.li(Reg::R1, APP_BASE as i64);
                c.li(Reg::R2, 1);
                c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let hdr = p.symbol("work.loop").unwrap();
        (p, hdr)
    }

    #[test]
    fn checkpoint_resumes_identically_to_full_replay() {
        let (p, hdr) = looped_program(4);
        let pb = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
        let marker = Marker::new(hdr, 40);
        let ckpt = pb.checkpoint_at(p.clone(), marker).unwrap();
        assert!(ckpt.instructions_before() > 0);

        // Full replay final state.
        let mut full = pb.replayer(p.clone());
        while full.step().unwrap().is_some() {}
        let expect = full.machine().mem().load(lp_isa::Addr(APP_BASE));

        // Resume from the checkpoint: remaining instructions must complete
        // the program to the same state.
        let mut rest = pb.replayer_from(p.clone(), &ckpt);
        let mut tail_insts = 0u64;
        while rest.step().unwrap().is_some() {
            tail_insts += 1;
        }
        assert_eq!(rest.machine().mem().load(lp_isa::Addr(APP_BASE)), expect);
        assert_eq!(
            ckpt.instructions_before() + tail_insts,
            pb.instructions(),
            "checkpoint splits the stream exactly"
        );
    }

    #[test]
    fn checkpoint_state_reflects_partial_progress() {
        let (p, hdr) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let ckpt = pb.checkpoint_at(p.clone(), Marker::new(hdr, 64)).unwrap();
        let m = lp_isa::Machine::from_snapshot(p, ckpt.state());
        let done = m.mem().load(lp_isa::Addr(APP_BASE));
        // 64th header execution seen; the atomic of that iteration may not
        // have retired yet, but earlier iterations have.
        assert!((32..128).contains(&done), "partial progress, got {done}");
    }

    fn state_bytes(s: &MachineState) -> Vec<u8> {
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        buf
    }

    #[test]
    fn single_pass_matches_independent_checkpoints() {
        let (p, hdr) = looped_program(4);
        let pb = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
        let entry = p.entry_main();
        // Unsorted, with a duplicate and a marker at program start.
        let markers = [
            Marker::new(hdr, 96),
            Marker::new(hdr, 8),
            Marker::new(entry, 1),
            Marker::new(hdr, 96), // duplicate
            Marker::new(hdr, 40),
        ];
        let watch = [hdr, entry];
        let batch = pb.checkpoints_at(p.clone(), &markers, &watch).unwrap();
        assert_eq!(batch.len(), markers.len());
        for (i, marker) in markers.iter().enumerate() {
            let (want_ckpt, want_counts) = pb
                .checkpoint_at_with_counts(p.clone(), *marker, &watch)
                .unwrap();
            let (got_ckpt, got_counts) = &batch[i];
            assert_eq!(got_ckpt.marker(), want_ckpt.marker());
            assert_eq!(got_ckpt.name(), want_ckpt.name());
            assert_eq!(got_ckpt.event_start(), want_ckpt.event_start());
            assert_eq!(
                got_ckpt.instructions_before(),
                want_ckpt.instructions_before()
            );
            assert_eq!(
                state_bytes(got_ckpt.state()),
                state_bytes(want_ckpt.state()),
                "marker {marker} snapshot must be byte-identical"
            );
            assert_eq!(got_counts, &want_counts, "marker {marker} watch counts");
        }
    }

    #[test]
    fn single_pass_duplicates_share_one_snapshot() {
        let (p, hdr) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let m = Marker::new(hdr, 16);
        let batch = pb.checkpoints_at(p.clone(), &[m, m, m], &[hdr]).unwrap();
        assert_eq!(batch.len(), 3);
        let first = state_bytes(batch[0].0.state());
        for (ckpt, counts) in &batch {
            assert_eq!(state_bytes(ckpt.state()), first);
            assert_eq!(counts[&hdr], 16);
        }
    }

    #[test]
    fn single_pass_empty_markers_do_not_replay() {
        let (p, _) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let out = pb.checkpoints_at(p, &[], &[]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_pass_unreachable_marker_errors() {
        let (p, hdr) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let err = pb
            .checkpoints_at(p, &[Marker::new(hdr, 4), Marker::new(hdr, 1_000_000)], &[])
            .unwrap_err();
        assert!(matches!(err, PinballError::MarkerNotReached { executed } if executed == 128));
    }

    #[test]
    fn unreachable_marker_errors() {
        let (p, hdr) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let err = pb
            .checkpoint_at(p, Marker::new(hdr, 1_000_000))
            .unwrap_err();
        assert!(matches!(err, PinballError::MarkerNotReached { executed } if executed == 128));
    }
}
