//! Region checkpoints: pinballs for selected simulation regions.

use crate::pinball::{Pinball, PinballError};
use crate::replay::Replayer;
use lp_isa::{MachineState, Marker, Pc, Program};
use std::collections::HashMap;
use std::sync::Arc;

/// A checkpoint of the replayed execution at a `(PC, count)` marker.
///
/// This is the region pinball of §IV-C: restoring it and replaying the race
/// log tail reproduces the region exactly as recorded. LoopPoint generates
/// one per representative region (usually positioned a warmup distance
/// before the region's start marker).
#[derive(Debug, Clone)]
pub struct RegionCheckpoint {
    name: String,
    marker: Marker,
    state: MachineState,
    event_start: usize,
    /// Global instructions retired from program start up to the checkpoint.
    instructions_before: u64,
}

impl RegionCheckpoint {
    /// The marker the checkpoint was taken at.
    pub fn marker(&self) -> Marker {
        self.marker
    }

    /// Checkpoint name (program plus marker).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions retired before the checkpoint (the fast-forward length
    /// a simulator is spared).
    pub fn instructions_before(&self) -> u64 {
        self.instructions_before
    }

    /// The architectural snapshot.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Index into the race log where replay resumes.
    pub fn event_start(&self) -> usize {
        self.event_start
    }
}

impl Pinball {
    /// Replays until the `marker.count`-th global execution of `marker.pc`
    /// and snapshots the machine there.
    ///
    /// # Errors
    /// [`PinballError::MarkerNotReached`] if the recording ends first, plus
    /// any replay error.
    pub fn checkpoint_at(
        &self,
        program: Arc<Program>,
        marker: Marker,
    ) -> Result<RegionCheckpoint, PinballError> {
        self.checkpoint_at_with_counts(program, marker, &[])
            .map(|(ckpt, _)| ckpt)
    }

    /// Like [`Pinball::checkpoint_at`], additionally returning the global
    /// execution counts that each `watch` PC had reached at the checkpoint
    /// — what a simulator resuming from the checkpoint needs to keep using
    /// whole-program `(PC, count)` markers.
    ///
    /// # Errors
    /// [`PinballError::MarkerNotReached`] if the recording ends first, plus
    /// any replay error.
    pub fn checkpoint_at_with_counts(
        &self,
        program: Arc<Program>,
        marker: Marker,
        watch: &[Pc],
    ) -> Result<(RegionCheckpoint, HashMap<Pc, u64>), PinballError> {
        let obs = lp_obs::global();
        let mut span = obs.span("pinball.checkpoint", "pinball");
        span.arg("marker", marker.to_string());
        let mut rep = self.replayer(program);
        let mut seen: u64 = 0;
        let mut instructions: u64 = 0;
        let mut counts: HashMap<Pc, u64> = watch.iter().map(|&pc| (pc, 0)).collect();
        while let Some(r) = rep.step()? {
            instructions += 1;
            if let Some(c) = counts.get_mut(&r.pc) {
                *c += 1;
            }
            if r.pc == marker.pc {
                seen += 1;
                if seen == marker.count {
                    let (state, event_start) = rep.snapshot();
                    let ckpt = RegionCheckpoint {
                        name: format!("{}@{}", self.name(), marker),
                        marker,
                        state,
                        event_start,
                        instructions_before: instructions,
                    };
                    span.arg("instructions_before", instructions);
                    obs.counter("pinball.checkpoints").inc();
                    return Ok((ckpt, counts));
                }
            }
        }
        Err(PinballError::MarkerNotReached { executed: seen })
    }

    /// Creates a replayer resuming from a region checkpoint.
    pub fn replayer_from<'p>(
        &'p self,
        program: Arc<Program>,
        ckpt: &RegionCheckpoint,
    ) -> Replayer<'p> {
        Replayer::from_state(
            program,
            &ckpt.state,
            self.events(),
            ckpt.event_start,
            self.nthreads(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinball::RecordConfig;
    use lp_isa::{ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};

    fn looped_program(nthreads: usize) -> (Arc<Program>, lp_isa::Pc) {
        let mut pb = ProgramBuilder::new("ckpt");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "work", |c, rt| {
            rt.emit_static_for(c, "work.loop", 128, |c, _| {
                c.li(Reg::R1, APP_BASE as i64);
                c.li(Reg::R2, 1);
                c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let hdr = p.symbol("work.loop").unwrap();
        (p, hdr)
    }

    #[test]
    fn checkpoint_resumes_identically_to_full_replay() {
        let (p, hdr) = looped_program(4);
        let pb = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
        let marker = Marker::new(hdr, 40);
        let ckpt = pb.checkpoint_at(p.clone(), marker).unwrap();
        assert!(ckpt.instructions_before() > 0);

        // Full replay final state.
        let mut full = pb.replayer(p.clone());
        while full.step().unwrap().is_some() {}
        let expect = full.machine().mem().load(lp_isa::Addr(APP_BASE));

        // Resume from the checkpoint: remaining instructions must complete
        // the program to the same state.
        let mut rest = pb.replayer_from(p.clone(), &ckpt);
        let mut tail_insts = 0u64;
        while rest.step().unwrap().is_some() {
            tail_insts += 1;
        }
        assert_eq!(rest.machine().mem().load(lp_isa::Addr(APP_BASE)), expect);
        assert_eq!(
            ckpt.instructions_before() + tail_insts,
            pb.instructions(),
            "checkpoint splits the stream exactly"
        );
    }

    #[test]
    fn checkpoint_state_reflects_partial_progress() {
        let (p, hdr) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let ckpt = pb.checkpoint_at(p.clone(), Marker::new(hdr, 64)).unwrap();
        let m = lp_isa::Machine::from_snapshot(p, ckpt.state());
        let done = m.mem().load(lp_isa::Addr(APP_BASE));
        // 64th header execution seen; the atomic of that iteration may not
        // have retired yet, but earlier iterations have.
        assert!((32..128).contains(&done), "partial progress, got {done}");
    }

    #[test]
    fn unreachable_marker_errors() {
        let (p, hdr) = looped_program(2);
        let pb = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let err = pb
            .checkpoint_at(p, Marker::new(hdr, 1_000_000))
            .unwrap_err();
        assert!(matches!(err, PinballError::MarkerNotReached { executed } if executed == 128));
    }
}
