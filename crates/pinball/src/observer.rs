//! Execution observers: the Pin-tool analogue.

use lp_isa::Retired;

/// Receives every retired instruction during a (replayed) execution.
///
/// Profiling passes (`lp-dcfg`, `lp-bbv`) implement this; several observers
/// can run over a single replay, mirroring how Pin tools stack analysis
/// callbacks on one instrumented run.
pub trait ExecObserver {
    /// Called once per retired instruction, in global retirement order.
    fn on_retire(&mut self, r: &Retired);
}

/// Adapts a closure into an [`ExecObserver`].
#[derive(Debug)]
pub struct FnObserver<F: FnMut(&Retired)>(pub F);

impl<F: FnMut(&Retired)> ExecObserver for FnObserver<F> {
    fn on_retire(&mut self, r: &Retired) {
        (self.0)(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_isa::{Inst, InstClass, Pc, Retired};

    #[test]
    fn fn_observer_forwards() {
        let mut count = 0usize;
        let mut obs = FnObserver(|_r: &Retired| count += 1);
        let r = Retired {
            tid: 0,
            pc: Pc::INVALID,
            inst: Inst::Nop,
            class: InstClass::IntAlu,
            next_pc: Pc::INVALID,
            mem: None,
            ctrl: None,
            global_seq: 0,
        };
        obs.on_retire(&r);
        obs.on_retire(&r);
        assert_eq!(count, 2);
    }
}
