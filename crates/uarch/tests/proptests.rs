//! Property-based tests for caches and predictors.

use lp_uarch::{CacheConfig, SetAssocCache};
use proptest::prelude::*;
use std::collections::HashSet;

fn small_cache() -> SetAssocCache {
    SetAssocCache::new(CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        line_bytes: 64,
        latency: 1,
    })
}

proptest! {
    /// The cache never "hits" a line that was not filled (or was
    /// invalidated), and always hits a line filled and not yet evicted or
    /// invalidated — checked against a trace-replaying reference model
    /// tracking present lines via eviction results.
    #[test]
    fn hit_iff_present(ops in prop::collection::vec((0u64..1u64<<14, 0u8..3), 1..300)) {
        let mut cache = small_cache();
        let mut present: HashSet<u64> = HashSet::new();
        for &(addr, op) in &ops {
            let line = addr & !63;
            match op {
                0 => {
                    // access
                    let hit = cache.access(addr);
                    prop_assert_eq!(hit, present.contains(&line));
                }
                1 => {
                    // fill
                    if let Some(evicted) = cache.fill(addr) {
                        present.remove(&evicted);
                    }
                    present.insert(line);
                }
                _ => {
                    // invalidate
                    let was = cache.invalidate(addr);
                    prop_assert_eq!(was, present.remove(&line));
                }
            }
        }
    }

    /// Accesses always tally: hits + misses == number of access calls.
    #[test]
    fn stats_tally(addrs in prop::collection::vec(0u64..1u64<<16, 1..200)) {
        let mut cache = small_cache();
        for &a in &addrs {
            if !cache.access(a) {
                cache.fill(a);
            }
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// A working set no larger than one set's associativity never evicts:
    /// after touching A lines mapping to distinct sets (or within assoc),
    /// re-access always hits.
    #[test]
    fn small_working_set_always_hits(start in 0u64..1u64<<12) {
        let mut cache = small_cache();
        // 8 sets x 64B lines: 8 consecutive lines map to 8 distinct sets.
        let lines: Vec<u64> = (0..8).map(|i| (start & !63) + i * 64).collect();
        for &l in &lines {
            cache.fill(l);
        }
        for &l in &lines {
            prop_assert!(cache.access(l), "line {l:#x} must still be resident");
        }
    }
}
