//! Set-associative LRU cache model.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles on a hit at this level.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sizes or non-power-of-two
    /// set count).
    pub fn num_sets(&self) -> u64 {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.assoc > 0);
        let sets = self.size_bytes / (self.line_bytes * u64::from(self.assoc));
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Short human-readable description (e.g. `32K, 8-way, LRU`).
    pub fn describe(&self) -> String {
        let size = if self.size_bytes >= 1 << 20 {
            format!("{}M", self.size_bytes >> 20)
        } else {
            format!("{}K", self.size_bytes >> 10)
        };
        format!("{size}, {}-way, LRU", self.assoc)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// Tracks only tags (contents live in the functional machine's memory).
/// Addresses passed in are raw byte addresses; the cache derives line/set
/// indices from its configured geometry.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        SetAssocCache {
            cfg,
            sets: vec![Line::default(); (num_sets * u64::from(cfg.assoc)) as usize],
            set_mask: num_sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        (set * self.cfg.assoc as usize, tag)
    }

    /// Looks up `addr`, updating LRU state. Returns whether it hit. On a
    /// miss the line is *not* inserted; call [`SetAssocCache::fill`].
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let (base, tag) = self.set_range(addr);
        for way in 0..self.cfg.assoc as usize {
            let line = &mut self.sets[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Inserts the line containing `addr`, evicting the LRU way. Returns
    /// the evicted line's base address, if a valid line was displaced.
    /// Filling an already-present line only refreshes its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.stamp += 1;
        let (base, tag) = self.set_range(addr);
        let assoc = self.cfg.assoc as usize;
        for way in 0..assoc {
            let line = &mut self.sets[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                return None;
            }
        }
        // Prefer an invalid way; otherwise evict LRU.
        let mut victim = 0;
        let mut best = u64::MAX;
        for way in 0..assoc {
            let line = &self.sets[base + way];
            if !line.valid {
                victim = way;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = way;
            }
        }
        let set_bits = self.set_mask.count_ones();
        let set_index = (base / assoc) as u64;
        let evicted = {
            let line = &self.sets[base + victim];
            if line.valid {
                Some(((line.tag << set_bits) | set_index) << self.line_shift)
            } else {
                None
            }
        };
        self.sets[base + victim] = Line {
            tag,
            valid: true,
            lru: self.stamp,
        };
        evicted
    }

    /// Invalidates the line containing `addr`; returns whether it was
    /// present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        for way in 0..self.cfg.assoc as usize {
            let line = &mut self.sets[base + way];
            if line.valid && line.tag == tag {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Whether the line containing `addr` is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        (0..self.cfg.assoc as usize)
            .any(|way| self.sets[base + way].valid && self.sets[base + way].tag == tag)
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        self.sets.fill(Line::default());
        self.stamp = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 3,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000));
        c.fill(0x1000);
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert!(!c.access(0x1040), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0 (set stride = 4 sets * 64B = 256B).
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.fill(a);
        c.fill(b);
        assert!(c.access(a)); // make b the LRU
        let evicted = c.fill(d);
        assert_eq!(evicted, Some(b), "LRU way evicted");
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40), "second invalidate is a no-op");
    }

    #[test]
    fn evicted_address_is_line_aligned_roundtrip() {
        let mut c = small();
        c.fill(0x1234); // line 0x1200..? 64B lines → 0x1200? 0x1234/64=0x48 → line base 0x1200
                        // Fill two more lines in the same set to force eviction of 0x1200.
        let set_stride = 4 * 64;
        c.fill(0x1234 + set_stride);
        let ev = c.fill(0x1234 + 2 * set_stride);
        assert_eq!(ev, Some(0x1234 & !63));
    }

    #[test]
    fn reset_clears_state() {
        let mut c = small();
        c.fill(0x80);
        c.access(0x80);
        c.reset();
        assert!(!c.probe(0x80));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn config_descriptions() {
        let cfg = CacheConfig {
            size_bytes: 32 << 10,
            assoc: 8,
            line_bytes: 64,
            latency: 4,
        };
        assert_eq!(cfg.describe(), "32K, 8-way, LRU");
        assert_eq!(cfg.num_sets(), 64);
        let big = CacheConfig {
            size_bytes: 8 << 20,
            assoc: 16,
            line_bytes: 64,
            latency: 35,
        };
        assert_eq!(big.describe(), "8M, 16-way, LRU");
    }

    #[test]
    fn capacity_behaviour_full_sweep() {
        // Sweeping twice the capacity with LRU must miss every access the
        // second time round (classic LRU thrash).
        let mut c = small();
        let lines = 2 * (512 / 64);
        for i in 0..lines {
            let a = i * 64;
            if !c.access(a) {
                c.fill(a);
            }
        }
        let before = c.misses();
        for i in 0..lines {
            let a = i * 64;
            if !c.access(a) {
                c.fill(a);
            }
        }
        assert_eq!(c.misses() - before, lines, "every access misses");
    }
}
