//! # lp-uarch — microarchitectural components
//!
//! The paper evaluates LoopPoint on Sniper 7.4 configured as an Intel
//! Gainestown-like multicore (Table I): 8/16 out-of-order cores at 2.66 GHz
//! with a 128-entry ROB, a Pentium-M branch predictor, and a
//! 32K-L1I/32K-L1D/256K-L2 private + 8M-L3 shared cache hierarchy, all LRU.
//! This crate provides those components for the `lp-sim` timing models:
//!
//! * [`SetAssocCache`] — a set-associative LRU cache;
//! * [`MemoryHierarchy`] — per-core L1I/L1D/L2, shared L3, invalidation-
//!   based coherence for shared lines, and per-core miss statistics;
//! * [`BranchPredictor`] — a Pentium-M-style hybrid (bimodal + gshare with
//!   a chooser), BTB, and return-address stack;
//! * [`SimConfig`] — named machine configurations: the Table I
//!   out-of-order machine, its in-order variant (Fig. 5b portability
//!   study), and a deliberately different *recording host* used when
//!   capturing pinballs, so constrained replay reflects a foreign machine's
//!   interleaving exactly as in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod config;
mod hierarchy;

pub use branch::{BranchPredictor, BranchPredictorConfig, BranchStats};
pub use cache::{CacheConfig, SetAssocCache};
pub use config::{CoreModel, LatencyTable, SimConfig};
pub use hierarchy::{AccessResult, CacheLevel, CoreMemStats, MemoryHierarchy};
