//! Pentium-M-style branch predictor.
//!
//! Table I specifies a "Pentium M" predictor. We model its salient hybrid
//! structure: a bimodal (per-PC) table, a global-history gshare table, a
//! chooser that picks between them per PC, a branch target buffer for
//! indirect targets, and a return-address stack. Absolute prediction rates
//! need not match real silicon; what matters for the evaluation is that
//! mispredict *behaviour varies by code pattern and history*, giving regions
//! distinguishable branch MPKI (Fig. 7b).

use lp_isa::Pc;

/// Table sizes for [`BranchPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Entries in the bimodal table (power of two).
    pub bimodal_entries: usize,
    /// Entries in the gshare table (power of two).
    pub gshare_entries: usize,
    /// Entries in the chooser table (power of two).
    pub chooser_entries: usize,
    /// Entries in the branch target buffer (power of two).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig {
            bimodal_entries: 4096,
            gshare_entries: 4096,
            chooser_entries: 4096,
            btb_entries: 2048,
            ras_depth: 16,
        }
    }
}

/// Aggregate predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub cond_branches: u64,
    /// Conditional branches mispredicted (direction).
    pub cond_mispredicts: u64,
    /// Indirect transfers predicted (target via BTB).
    pub indirect: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
    /// Returns predicted via the RAS.
    pub returns: u64,
    /// Return target mispredictions.
    pub return_mispredicts: u64,
}

impl BranchStats {
    /// Total direction + target mispredictions.
    pub fn total_mispredicts(&self) -> u64 {
        self.cond_mispredicts + self.indirect_mispredicts + self.return_mispredicts
    }

    /// Total predicted control transfers.
    pub fn total_branches(&self) -> u64 {
        self.cond_branches + self.indirect + self.returns
    }
}

fn hash_pc(pc: Pc) -> u64 {
    // Cheap mix of image and offset; instruction slots get distinct indices.
    let x = pc.to_word();
    let x = x ^ (x >> 17);
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Hybrid bimodal/gshare predictor with BTB and RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchPredictorConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>, // 2-bit: >=2 selects gshare
    ghr: u64,
    btb: Vec<(u64, Pc)>,
    ras: Vec<Pc>,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new(cfg: BranchPredictorConfig) -> Self {
        for n in [
            cfg.bimodal_entries,
            cfg.gshare_entries,
            cfg.chooser_entries,
            cfg.btb_entries,
        ] {
            assert!(n.is_power_of_two(), "table sizes must be powers of two");
        }
        BranchPredictor {
            cfg,
            bimodal: vec![1; cfg.bimodal_entries],
            gshare: vec![1; cfg.gshare_entries],
            chooser: vec![2; cfg.chooser_entries],
            ghr: 0,
            btb: vec![(u64::MAX, Pc::INVALID); cfg.btb_entries],
            ras: Vec::with_capacity(cfg.ras_depth),
            stats: BranchStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Resets statistics (state is kept — used at the detailed-region start
    /// after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }

    fn counter_predict(c: u8) -> bool {
        c >= 2
    }

    fn counter_update(c: &mut u8, taken: bool) {
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predicts and updates for a conditional branch at `pc` whose actual
    /// outcome was `taken`. Returns `true` if the prediction was correct.
    pub fn predict_cond(&mut self, pc: Pc, taken: bool) -> bool {
        let h = hash_pc(pc);
        let bi = (h as usize) & (self.cfg.bimodal_entries - 1);
        let gi = ((h ^ self.ghr) as usize) & (self.cfg.gshare_entries - 1);
        let ci = (h as usize) & (self.cfg.chooser_entries - 1);

        let bim_pred = Self::counter_predict(self.bimodal[bi]);
        let gsh_pred = Self::counter_predict(self.gshare[gi]);
        let use_gshare = Self::counter_predict(self.chooser[ci]);
        let pred = if use_gshare { gsh_pred } else { bim_pred };

        // Update chooser toward whichever component was right (only when
        // they disagree, per standard tournament training).
        if bim_pred != gsh_pred {
            Self::counter_update(&mut self.chooser[ci], gsh_pred == taken);
        }
        Self::counter_update(&mut self.bimodal[bi], taken);
        Self::counter_update(&mut self.gshare[gi], taken);
        self.ghr = (self.ghr << 1) | u64::from(taken);

        self.stats.cond_branches += 1;
        let correct = pred == taken;
        if !correct {
            self.stats.cond_mispredicts += 1;
        }
        correct
    }

    /// Predicts and updates the BTB for an indirect transfer at `pc` whose
    /// actual target was `target`. Returns `true` on a correct target.
    pub fn predict_indirect(&mut self, pc: Pc, target: Pc) -> bool {
        let h = hash_pc(pc);
        let i = (h as usize) & (self.cfg.btb_entries - 1);
        let (tag, pred) = self.btb[i];
        let correct = tag == h && pred == target;
        self.btb[i] = (h, target);
        self.stats.indirect += 1;
        if !correct {
            self.stats.indirect_mispredicts += 1;
        }
        correct
    }

    /// Records a call (pushes the return address on the RAS).
    pub fn on_call(&mut self, return_pc: Pc) {
        if self.ras.len() == self.cfg.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    /// Predicts a return via the RAS. Returns `true` on a correct target.
    pub fn predict_return(&mut self, target: Pc) -> bool {
        let pred = self.ras.pop();
        self.stats.returns += 1;
        let correct = pred == Some(target);
        if !correct {
            self.stats.return_mispredicts += 1;
        }
        correct
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new(BranchPredictorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_isa::ImageId;

    fn pc(o: u32) -> Pc {
        Pc::new(ImageId(0), o)
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut bp = BranchPredictor::default();
        let mut wrong = 0;
        for _ in 0..100 {
            if !bp.predict_cond(pc(10), true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "should converge fast, got {wrong} mispredicts");
        assert_eq!(bp.stats().cond_branches, 100);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T,N,T,N... bimodal alone stays ~50%; gshare with history nails it.
        let mut bp = BranchPredictor::default();
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let correct = bp.predict_cond(pc(20), taken);
            if i >= 200 && !correct {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late <= 10,
            "history-based component should learn alternation, got {wrong_late}"
        );
    }

    #[test]
    fn random_pattern_mispredicts_substantially() {
        // A pseudo-random pattern should hover near 50% mispredicts —
        // verifying the predictor cannot cheat.
        let mut bp = BranchPredictor::default();
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if !bp.predict_cond(pc(30), taken) {
                wrong += 1;
            }
        }
        assert!(wrong > 300, "random branches must mispredict, got {wrong}");
    }

    #[test]
    fn btb_learns_stable_indirect_target() {
        let mut bp = BranchPredictor::default();
        assert!(!bp.predict_indirect(pc(5), pc(100)), "cold miss");
        assert!(bp.predict_indirect(pc(5), pc(100)));
        assert!(!bp.predict_indirect(pc(5), pc(200)), "target changed");
        assert!(bp.predict_indirect(pc(5), pc(200)));
        assert_eq!(bp.stats().indirect_mispredicts, 2);
    }

    #[test]
    fn ras_matches_call_ret_pairs() {
        let mut bp = BranchPredictor::default();
        bp.on_call(pc(11));
        bp.on_call(pc(22));
        assert!(bp.predict_return(pc(22)));
        assert!(bp.predict_return(pc(11)));
        assert!(!bp.predict_return(pc(33)), "empty RAS mispredicts");
        assert_eq!(bp.stats().return_mispredicts, 1);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig {
            ras_depth: 2,
            ..Default::default()
        });
        bp.on_call(pc(1));
        bp.on_call(pc(2));
        bp.on_call(pc(3)); // drops 1
        assert!(bp.predict_return(pc(3)));
        assert!(bp.predict_return(pc(2)));
        assert!(!bp.predict_return(pc(1)));
    }

    #[test]
    fn stats_totals() {
        let mut bp = BranchPredictor::default();
        bp.predict_cond(pc(1), true);
        bp.predict_indirect(pc(2), pc(3));
        bp.on_call(pc(9));
        bp.predict_return(pc(9));
        let s = bp.stats();
        assert_eq!(s.total_branches(), 3);
        assert!(s.total_mispredicts() >= 1); // cold BTB miss at least
        bp.reset_stats();
        assert_eq!(bp.stats().total_branches(), 0);
    }
}
