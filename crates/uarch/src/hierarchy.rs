//! The multicore memory hierarchy: private L1I/L1D/L2, shared L3,
//! invalidation-based coherence, and per-core statistics.

use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use lp_isa::{Addr, Pc};

/// The level that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CacheLevel {
    L1,
    L2,
    L3,
    Memory,
}

/// Outcome of a data or instruction access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles.
    pub latency: u32,
    /// Deepest level that had to service the access.
    pub level: CacheLevel,
}

/// Per-core memory statistics, the raw material for L2 MPKI (Fig. 7c).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    /// Data loads issued.
    pub loads: u64,
    /// Data stores issued.
    pub stores: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// L2 misses (demand, data side).
    pub l2_misses: u64,
    /// L3 misses (this core's share).
    pub l3_misses: u64,
    /// Instruction-fetch L1-I misses.
    pub l1i_misses: u64,
    /// Coherence invalidations received.
    pub invalidations: u64,
    /// Next-line prefetches issued on this core's behalf.
    pub prefetches: u64,
}

impl CoreMemStats {
    /// Total data accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Multicore cache hierarchy with broadcast invalidation coherence.
///
/// Writes to *shared* addresses invalidate the line in every other core's
/// private caches (an idealized snooping protocol — sufficient to create the
/// inter-thread interference effects sampling must capture). Private-stripe
/// addresses skip the broadcast entirely.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    mem_latency: u32,
    prefetch_next_line: bool,
    line_bytes: u64,
    stats: Vec<CoreMemStats>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `cfg` (one private stack per core).
    pub fn new(cfg: &SimConfig) -> Self {
        MemoryHierarchy {
            l1i: (0..cfg.ncores)
                .map(|_| SetAssocCache::new(cfg.l1i))
                .collect(),
            l1d: (0..cfg.ncores)
                .map(|_| SetAssocCache::new(cfg.l1d))
                .collect(),
            l2: (0..cfg.ncores)
                .map(|_| SetAssocCache::new(cfg.l2))
                .collect(),
            l3: SetAssocCache::new(cfg.l3),
            mem_latency: cfg.mem_latency,
            prefetch_next_line: cfg.prefetch_next_line,
            line_bytes: cfg.l1d.line_bytes,
            stats: vec![CoreMemStats::default(); cfg.ncores],
        }
    }

    /// Number of cores the hierarchy serves.
    pub fn ncores(&self) -> usize {
        self.l1d.len()
    }

    /// Statistics for `core`.
    pub fn stats(&self, core: usize) -> CoreMemStats {
        self.stats[core]
    }

    /// Clears statistics (cache state is kept; used after warmup).
    pub fn reset_stats(&mut self) {
        self.stats.fill(CoreMemStats::default());
    }

    /// Performs a data access by `core`.
    ///
    /// `write` selects store semantics (write-allocate); `shared` marks the
    /// address as belonging to the shared region, enabling coherence
    /// invalidations on writes.
    pub fn access_data(
        &mut self,
        core: usize,
        addr: Addr,
        write: bool,
        shared: bool,
    ) -> AccessResult {
        let a = addr.0;
        let st = &mut self.stats[core];
        if write {
            st.stores += 1;
        } else {
            st.loads += 1;
        }

        let result = if self.l1d[core].access(a) {
            AccessResult {
                latency: self.l1d[core].config().latency,
                level: CacheLevel::L1,
            }
        } else {
            self.stats[core].l1d_misses += 1;
            let mut latency = self.l1d[core].config().latency;
            let level = if self.l2[core].access(a) {
                latency += self.l2[core].config().latency;
                CacheLevel::L2
            } else {
                self.stats[core].l2_misses += 1;
                latency += self.l2[core].config().latency;
                if self.l3.access(a) {
                    latency += self.l3.config().latency;
                    CacheLevel::L3
                } else {
                    self.stats[core].l3_misses += 1;
                    latency += self.l3.config().latency + self.mem_latency;
                    self.l3.fill(a);
                    CacheLevel::Memory
                }
            };
            self.l2[core].fill(a);
            self.l1d[core].fill(a);
            if self.prefetch_next_line {
                // Next-line prefetch into L2 (no latency charged; the
                // prefetcher runs off the critical path).
                let next = a + self.line_bytes;
                if !self.l2[core].probe(next) {
                    self.l3.fill(next);
                    self.l2[core].fill(next);
                    self.stats[core].prefetches += 1;
                }
            }
            AccessResult { latency, level }
        };

        if write && shared {
            self.invalidate_others(core, a);
        }
        result
    }

    /// Performs an instruction fetch by `core` for the line containing
    /// `pc`. Instruction slots are given a 4-byte footprint so 16
    /// instructions share a 64-byte line.
    pub fn access_inst(&mut self, core: usize, pc: Pc) -> AccessResult {
        let a = pc.to_word() << 2;
        if self.l1i[core].access(a) {
            AccessResult {
                latency: self.l1i[core].config().latency,
                level: CacheLevel::L1,
            }
        } else {
            self.stats[core].l1i_misses += 1;
            // Fetch from L2 (shared instruction/data L2).
            let mut latency = self.l1i[core].config().latency;
            let level = if self.l2[core].access(a) {
                latency += self.l2[core].config().latency;
                CacheLevel::L2
            } else {
                latency += self.l2[core].config().latency + self.l3.config().latency;
                if !self.l3.access(a) {
                    latency += self.mem_latency;
                    self.l3.fill(a);
                }
                self.l2[core].fill(a);
                CacheLevel::L3
            };
            self.l1i[core].fill(a);
            AccessResult { latency, level }
        }
    }

    fn invalidate_others(&mut self, writer: usize, addr: u64) {
        for core in 0..self.l1d.len() {
            if core == writer {
                continue;
            }
            let hit1 = self.l1d[core].invalidate(addr);
            let hit2 = self.l2[core].invalidate(addr);
            if hit1 || hit2 {
                self.stats[core].invalidations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::gainestown(4))
    }

    #[test]
    fn first_access_goes_to_memory_then_hits() {
        let mut h = hierarchy();
        let r = h.access_data(0, Addr(0x1000), false, true);
        assert_eq!(r.level, CacheLevel::Memory);
        let r2 = h.access_data(0, Addr(0x1000), false, true);
        assert_eq!(r2.level, CacheLevel::L1);
        assert!(r.latency > r2.latency);
        assert_eq!(h.stats(0).loads, 2);
        assert_eq!(h.stats(0).l1d_misses, 1);
    }

    #[test]
    fn shared_l3_serves_cross_core_reads() {
        let mut h = hierarchy();
        h.access_data(0, Addr(0x2000), false, true);
        let r = h.access_data(1, Addr(0x2000), false, true);
        assert_eq!(r.level, CacheLevel::L3, "other core's fill is in shared L3");
    }

    #[test]
    fn write_invalidates_other_cores() {
        let mut h = hierarchy();
        h.access_data(0, Addr(0x3000), false, true);
        h.access_data(1, Addr(0x3000), false, true);
        assert_eq!(
            h.access_data(1, Addr(0x3000), false, true).level,
            CacheLevel::L1
        );
        // Core 0 writes the shared line.
        h.access_data(0, Addr(0x3000), true, true);
        assert_eq!(h.stats(1).invalidations, 1);
        // Core 1 now misses its private caches.
        let r = h.access_data(1, Addr(0x3000), false, true);
        assert!(
            r.level >= CacheLevel::L3,
            "line was invalidated, got {:?}",
            r.level
        );
    }

    #[test]
    fn private_writes_skip_coherence() {
        let mut h = hierarchy();
        h.access_data(0, Addr(0x4000), false, true);
        h.access_data(1, Addr(0x4000), false, true);
        h.access_data(0, Addr(0x4000), true, false); // marked private
        assert_eq!(h.stats(1).invalidations, 0);
        assert_eq!(
            h.access_data(1, Addr(0x4000), false, true).level,
            CacheLevel::L1
        );
    }

    #[test]
    fn icache_hits_within_line() {
        let mut h = hierarchy();
        use lp_isa::ImageId;
        let pc0 = Pc::new(ImageId(0), 0);
        let r = h.access_inst(0, pc0);
        assert!(r.level > CacheLevel::L1);
        // Instructions 1..15 share the 64-byte line (4 bytes each).
        for off in 1..16 {
            let r = h.access_inst(0, Pc::new(ImageId(0), off));
            assert_eq!(r.level, CacheLevel::L1, "offset {off}");
        }
        let r = h.access_inst(0, Pc::new(ImageId(0), 16));
        assert!(r.level > CacheLevel::L1, "next line misses");
        assert_eq!(h.stats(0).l1i_misses, 2);
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let mut h = hierarchy();
        // Touch 64 KiB (> 32K L1D, < 256K L2) twice.
        let lines = (64 << 10) / 64;
        for i in 0..lines {
            h.access_data(0, Addr(i * 64), false, false);
        }
        let l2_before = h.stats(0).l2_misses;
        let mut l1_miss_second_pass = 0;
        for i in 0..lines {
            let r = h.access_data(0, Addr(i * 64), false, false);
            if r.level > CacheLevel::L1 {
                l1_miss_second_pass += 1;
                assert_eq!(r.level, CacheLevel::L2, "should be served by L2");
            }
        }
        assert!(l1_miss_second_pass > lines / 2, "L1 too small for the set");
        assert_eq!(h.stats(0).l2_misses, l2_before, "no new L2 misses");
    }

    #[test]
    fn next_line_prefetcher_hides_stream_misses() {
        let mut cfg = SimConfig::gainestown(1);
        cfg.prefetch_next_line = true;
        let mut pf = MemoryHierarchy::new(&cfg);
        let mut plain = hierarchy();
        let mut pf_l2_misses = 0;
        let mut plain_l2_misses = 0;
        for i in 0..256u64 {
            if pf
                .access_data(0, Addr(0x800000 + i * 64), false, false)
                .level
                > CacheLevel::L2
            {
                pf_l2_misses += 1;
            }
            if plain
                .access_data(0, Addr(0x800000 + i * 64), false, false)
                .level
                > CacheLevel::L2
            {
                plain_l2_misses += 1;
            }
        }
        assert!(
            pf_l2_misses * 2 < plain_l2_misses,
            "prefetcher hides stream misses: {pf_l2_misses} vs {plain_l2_misses}"
        );
        assert!(pf.stats(0).prefetches > 100);
        assert_eq!(plain.stats(0).prefetches, 0);
    }

    #[test]
    fn reset_stats_keeps_cache_state() {
        let mut h = hierarchy();
        h.access_data(0, Addr(0x5000), false, true);
        h.reset_stats();
        assert_eq!(h.stats(0).loads, 0);
        let r = h.access_data(0, Addr(0x5000), false, true);
        assert_eq!(r.level, CacheLevel::L1, "warmed state survives reset");
    }
}
