//! Named machine configurations (Table I and variants).

use crate::branch::BranchPredictorConfig;
use crate::cache::CacheConfig;
use lp_isa::InstClass;

/// Core timing model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreModel {
    /// Out-of-order scoreboard core.
    OutOfOrder {
        /// Reorder-buffer entries bounding in-flight instructions.
        rob: u32,
        /// Issue/commit width per cycle.
        width: u32,
    },
    /// Strictly in-order, single-issue core (Fig. 5b portability study).
    InOrder,
}

impl CoreModel {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::OutOfOrder { .. } => "out-of-order",
            CoreModel::InOrder => "in-order",
        }
    }
}

/// Execution latencies per instruction class (excluding memory, which the
/// hierarchy provides).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    int_alu: u32,
    int_mul: u32,
    int_div: u32,
    fp: u32,
    fp_div: u32,
    store: u32,
    branch: u32,
    atomic_extra: u32,
    futex: u32,
    pause: u32,
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 18,
            fp: 4,
            fp_div: 24,
            store: 1,
            branch: 1,
            atomic_extra: 8,
            futex: 40,
            pause: 1,
        }
    }
}

impl LatencyTable {
    /// Execution latency for `class`, *excluding* memory-hierarchy time
    /// (loads/atomics add their cache access latency on top).
    pub fn latency(&self, class: InstClass) -> u32 {
        match class {
            InstClass::IntAlu => self.int_alu,
            InstClass::IntMul => self.int_mul,
            InstClass::IntDiv => self.int_div,
            InstClass::Fp => self.fp,
            InstClass::FpDiv => self.fp_div,
            InstClass::Load => 0, // entirely from the hierarchy
            InstClass::Store => self.store,
            InstClass::Branch | InstClass::Jump | InstClass::Call | InstClass::Ret => self.branch,
            InstClass::Atomic => self.atomic_extra,
            InstClass::Fence => self.int_alu,
            InstClass::Pause => self.pause,
            InstClass::Futex => self.futex,
            InstClass::Other => self.int_alu,
        }
    }
}

/// A complete simulated-machine configuration.
///
/// [`SimConfig::gainestown`] reproduces Table I; the other constructors
/// provide the in-order variant used in the microarchitecture-portability
/// study (Fig. 5b) and a distinct *recording host* whose different cache
/// sizes and latencies make constrained replays reflect a foreign machine's
/// thread interleaving.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Configuration name for reports.
    pub name: String,
    /// Number of cores (= maximum team size it can run unconstrained).
    pub ncores: usize,
    /// Core clock in GHz (Table I: 2.66).
    pub freq_ghz: f64,
    /// Core model.
    pub core: CoreModel,
    /// Branch predictor tables.
    pub branch: BranchPredictorConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u32,
    /// Execution latencies.
    pub lat: LatencyTable,
    /// Mispredict pipeline-flush penalty in cycles.
    pub mispredict_penalty: u32,
    /// Enable the L2 next-line prefetcher (off in the calibrated Table I
    /// config; an ablation knob).
    pub prefetch_next_line: bool,
}

impl SimConfig {
    /// The Table I machine: Gainestown-like out-of-order multicore.
    pub fn gainestown(ncores: usize) -> SimConfig {
        SimConfig {
            name: format!("gainestown-{ncores}c"),
            ncores,
            freq_ghz: 2.66,
            core: CoreModel::OutOfOrder { rob: 128, width: 4 },
            branch: BranchPredictorConfig::default(),
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 12,
            },
            l3: CacheConfig {
                size_bytes: 8 << 20,
                assoc: 16,
                line_bytes: 64,
                latency: 40,
            },
            mem_latency: 200,
            lat: LatencyTable::default(),
            mispredict_penalty: 14,
            prefetch_next_line: false,
        }
    }

    /// Table I machine with the in-order core model (all other parameters
    /// unchanged), as used for Fig. 5b.
    pub fn gainestown_inorder(ncores: usize) -> SimConfig {
        let mut cfg = Self::gainestown(ncores);
        cfg.name = format!("gainestown-inorder-{ncores}c");
        cfg.core = CoreModel::InOrder;
        cfg
    }

    /// The machine pinballs are *recorded* on: a deliberately different
    /// microarchitecture (smaller caches, slower memory, narrower core), so
    /// the recorded thread interleaving differs from the simulated target —
    /// the situation §III-H/§V-A.1 of the paper describes.
    pub fn recording_host(ncores: usize) -> SimConfig {
        SimConfig {
            name: format!("recording-host-{ncores}c"),
            ncores,
            freq_ghz: 2.0,
            core: CoreModel::OutOfOrder { rob: 64, width: 2 },
            branch: BranchPredictorConfig {
                bimodal_entries: 1024,
                gshare_entries: 1024,
                chooser_entries: 1024,
                btb_entries: 512,
                ras_depth: 8,
            },
            l1i: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 128 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 10,
            },
            l3: CacheConfig {
                size_bytes: 2 << 20,
                assoc: 16,
                line_bytes: 64,
                latency: 30,
            },
            mem_latency: 260,
            lat: LatencyTable::default(),
            mispredict_penalty: 10,
            prefetch_next_line: false,
        }
    }

    /// Rows of the Table I description for this configuration.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        let core = match self.core {
            CoreModel::OutOfOrder { rob, .. } => {
                format!("{} GHz, {} entry ROB", self.freq_ghz, rob)
            }
            CoreModel::InOrder => format!("{} GHz, in-order", self.freq_ghz),
        };
        vec![
            (
                "Processor".to_string(),
                format!("{} cores, Gainestown-like microarch.", self.ncores),
            ),
            ("Core".to_string(), core),
            ("Branch predictor".to_string(), "Pentium M".to_string()),
            ("L1-I cache".to_string(), self.l1i.describe()),
            ("L1-D cache".to_string(), self.l1d.describe()),
            ("L2 cache".to_string(), self.l2.describe()),
            ("L3 cache".to_string(), self.l3.describe()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let cfg = SimConfig::gainestown(8);
        assert_eq!(cfg.ncores, 8);
        assert_eq!(cfg.freq_ghz, 2.66);
        assert_eq!(cfg.core, CoreModel::OutOfOrder { rob: 128, width: 4 });
        assert_eq!(cfg.l1i.describe(), "32K, 4-way, LRU");
        assert_eq!(cfg.l1d.describe(), "32K, 8-way, LRU");
        assert_eq!(cfg.l2.describe(), "256K, 8-way, LRU");
        assert_eq!(cfg.l3.describe(), "8M, 16-way, LRU");
        let rows = cfg.table_rows();
        assert_eq!(rows.len(), 7);
        assert!(rows[1].1.contains("128 entry ROB"));
    }

    #[test]
    fn variants_differ_where_expected() {
        let ooo = SimConfig::gainestown(8);
        let ino = SimConfig::gainestown_inorder(8);
        assert_eq!(ino.core, CoreModel::InOrder);
        assert_eq!(ino.l1d, ooo.l1d, "only the core model changes for Fig 5b");
        let host = SimConfig::recording_host(8);
        assert_ne!(host.l1d, ooo.l1d, "recording host must differ");
        assert_ne!(host.mem_latency, ooo.mem_latency);
    }

    #[test]
    fn latency_table_ordering() {
        let lat = LatencyTable::default();
        assert!(lat.latency(InstClass::IntDiv) > lat.latency(InstClass::IntMul));
        assert!(lat.latency(InstClass::IntMul) > lat.latency(InstClass::IntAlu));
        assert!(lat.latency(InstClass::FpDiv) > lat.latency(InstClass::Fp));
        assert_eq!(lat.latency(InstClass::Load), 0, "loads priced by hierarchy");
        assert!(lat.latency(InstClass::Futex) > lat.latency(InstClass::Atomic));
    }

    #[test]
    fn core_model_names() {
        assert_eq!(CoreModel::InOrder.name(), "in-order");
        assert_eq!(
            CoreModel::OutOfOrder { rob: 1, width: 1 }.name(),
            "out-of-order"
        );
    }
}
