//! Reusable per-retirement timing accounting.
//!
//! [`TimingModel`] bundles the core clocks, memory hierarchy, and branch
//! predictors and charges one [`Retired`] instruction at a time. Both the
//! unconstrained [`crate::Simulator`] and the constrained (pinball-replay)
//! simulation in the `looppoint` crate drive it, so the two simulation
//! styles differ **only** in thread scheduling — exactly the comparison the
//! paper draws in §V-A.1.

use crate::core_model::CoreTiming;
use crate::simulator::Mode;
use crate::stats::{add_branch, add_mem, SimStats};
use lp_isa::{CtrlKind, Inst, InstClass, Retired};
use lp_uarch::{BranchPredictor, CacheLevel, MemoryHierarchy, SimConfig};

/// Timing state for one multicore machine.
///
/// `Clone` captures the complete microarchitectural state — core clocks,
/// cache hierarchy contents, branch-predictor tables — so a simulator can
/// be forked *warm* (see `Simulator::from_machine_warm`): the live-mode
/// snapshot ring pairs one of these with a functional `MachineState` to
/// rewind a region without losing cache warmth.
#[derive(Debug, Clone)]
pub struct TimingModel {
    cfg: SimConfig,
    warm_during_ff: bool,
    cores: Vec<CoreTiming>,
    hierarchy: MemoryHierarchy,
    bps: Vec<BranchPredictor>,
    icache_last_line: Vec<u64>,
}

impl TimingModel {
    /// Creates cold timing state for `nthreads` threads on `cfg`.
    ///
    /// # Panics
    /// Panics if `nthreads` exceeds the configured core count.
    pub fn new(cfg: SimConfig, nthreads: usize) -> Self {
        assert!(
            nthreads <= cfg.ncores,
            "team of {nthreads} exceeds {} cores",
            cfg.ncores
        );
        TimingModel {
            warm_during_ff: true,
            cores: (0..nthreads).map(|_| CoreTiming::new(cfg.core)).collect(),
            hierarchy: MemoryHierarchy::new(&cfg),
            bps: (0..nthreads)
                .map(|_| BranchPredictor::new(cfg.branch))
                .collect(),
            icache_last_line: vec![u64::MAX; nthreads],
            cfg,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of cores in use.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// Local clock of `tid`'s core.
    pub fn core_now(&self, tid: usize) -> u64 {
        self.cores[tid].now()
    }

    /// Largest core clock (the machine's runtime so far).
    pub fn max_cycle(&self) -> u64 {
        self.cores.iter().map(CoreTiming::now).max().unwrap_or(0)
    }

    /// Advances `tid`'s core clock (wake-ups, cross-thread ordering).
    pub fn advance_core_to(&mut self, tid: usize, cycle: u64) {
        self.cores[tid].advance_to(cycle);
    }

    /// Disables cache/branch-predictor warming during fast-forward — the
    /// cold-start ablation (§III-F motivates warmup).
    pub fn set_ff_warming(&mut self, enabled: bool) {
        self.warm_during_ff = enabled;
    }

    /// Clears hierarchy and branch statistics while keeping warmed state
    /// (called at the detailed-region start).
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        for bp in &mut self.bps {
            bp.reset_stats();
        }
    }

    /// Folds the hierarchy/branch statistics into `stats`.
    pub fn collect_into(&self, stats: &mut SimStats) {
        for core in 0..self.cores.len() {
            add_mem(&mut stats.mem, self.hierarchy.stats(core));
            add_branch(&mut stats.branch, self.bps[core].stats());
        }
    }

    /// Charges one retired instruction in the given mode and returns its
    /// completion cycle (detailed mode) or the advanced local clock
    /// (fast-forward).
    pub fn account(&mut self, r: &Retired, mode: Mode) -> u64 {
        match mode {
            Mode::Detailed => self.account_detailed(r),
            Mode::FastForward => self.account_fast_forward(r),
        }
    }

    fn account_fast_forward(&mut self, r: &Retired) -> u64 {
        let tid = r.tid;
        if !self.warm_during_ff {
            let next = self.cores[tid].now() + 1;
            self.cores[tid].advance_to(next);
            return next;
        }
        // Warm the instruction cache too — a detailed region that starts
        // from cold fetch state would overstate front-end stalls.
        let line = r.pc.to_word() >> 4;
        if self.icache_last_line[tid] != line {
            self.icache_last_line[tid] = line;
            self.hierarchy.access_inst(tid, r.pc);
        }
        if let Some(acc) = r.mem {
            self.hierarchy
                .access_data(tid, acc.addr, acc.write, acc.shared);
        }
        self.warm_branch(tid, r);
        let next = self.cores[tid].now() + 1;
        self.cores[tid].advance_to(next);
        next
    }

    fn account_detailed(&mut self, r: &Retired) -> u64 {
        let tid = r.tid;
        // Front end: same-line fetches are pipelined; line transitions
        // consult the I-cache (16 four-byte slots per 64-byte line).
        let line = r.pc.to_word() >> 4;
        if self.icache_last_line[tid] != line {
            self.icache_last_line[tid] = line;
            let res = self.hierarchy.access_inst(tid, r.pc);
            if res.level > CacheLevel::L1 {
                let now = self.cores[tid].now();
                self.cores[tid].stall_fetch_until(now + u64::from(res.latency));
            }
        }

        let mut latency = self.cfg.lat.latency(r.class);
        if let Some(acc) = r.mem {
            let res = self
                .hierarchy
                .access_data(tid, acc.addr, acc.write, acc.shared);
            if matches!(
                r.class,
                InstClass::Load | InstClass::Atomic | InstClass::Futex
            ) {
                latency += res.latency;
            }
        }

        let (_, complete) = self.cores[tid].dispatch(r.inst.srcs(), r.inst.dst(), latency);

        if !self.warm_branch(tid, r) {
            self.cores[tid].stall_fetch_until(complete + u64::from(self.cfg.mispredict_penalty));
        }
        complete
    }

    /// Updates branch-predictor state for `r`; returns whether the control
    /// transfer was predicted correctly (`true` for non-control
    /// instructions).
    fn warm_branch(&mut self, tid: usize, r: &Retired) -> bool {
        let Some(ctrl) = r.ctrl else { return true };
        match ctrl.kind {
            CtrlKind::CondTaken => self.bps[tid].predict_cond(r.pc, true),
            CtrlKind::CondNotTaken => self.bps[tid].predict_cond(r.pc, false),
            CtrlKind::Jump => true,
            CtrlKind::Call => {
                let correct = if matches!(r.inst, Inst::CallInd { .. }) {
                    self.bps[tid].predict_indirect(r.pc, ctrl.target)
                } else {
                    true
                };
                self.bps[tid].on_call(r.pc.next());
                correct
            }
            CtrlKind::Ret => self.bps[tid].predict_return(ctrl.target),
        }
    }
}
