//! Simulation statistics: the metrics the paper's figures report.

use lp_uarch::{BranchStats, CoreMemStats};
use std::time::Duration;

/// One point of an IPC-over-time trace (Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcSample {
    /// Global instructions retired at the end of the sample window.
    pub instructions: u64,
    /// Global cycle count at the end of the sample window.
    pub cycles: u64,
    /// Aggregate IPC within the window.
    pub ipc: f64,
}

/// Aggregate results of a (full or region) detailed simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated runtime in cycles (max over cores of the local clock).
    pub cycles: u64,
    /// Instructions retired during detailed simulation (all images).
    pub instructions: u64,
    /// Spin-filtered instructions (main image only) — the quantity
    /// LoopPoint's multipliers are computed over.
    pub filtered_instructions: u64,
    /// Per-thread instruction counts (all images).
    pub per_thread_instructions: Vec<u64>,
    /// Aggregated branch-predictor statistics.
    pub branch: BranchStats,
    /// Aggregated memory statistics (summed over cores).
    pub mem: CoreMemStats,
    /// Instructions executed in fast-forward (warmup) before this run.
    pub ff_instructions: u64,
    /// Wall-clock time spent in detailed simulation.
    pub wall: Duration,
    /// Wall-clock time spent fast-forwarding.
    pub ff_wall: Duration,
    /// Optional IPC trace (enabled via sampling interval).
    pub ipc_trace: Vec<IpcSample>,
}

impl SimStats {
    /// Aggregate instructions-per-cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Simulated runtime in seconds at `freq_ghz`.
    pub fn runtime_seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9)
    }

    /// Branch mispredictions per kilo-instruction (Fig. 7b).
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branch.total_mispredicts() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L2 misses per kilo-instruction (Fig. 7c).
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L3 misses per kilo-instruction.
    pub fn l3_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem.l3_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1-D misses per kilo-instruction.
    pub fn l1d_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem.l1d_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Accumulates `from` into `into`, field by field. Commutative and
/// associative (plain sums), which the property tests rely on.
pub fn add_mem(into: &mut CoreMemStats, from: CoreMemStats) {
    into.loads += from.loads;
    into.stores += from.stores;
    into.l1d_misses += from.l1d_misses;
    into.l2_misses += from.l2_misses;
    into.l3_misses += from.l3_misses;
    into.l1i_misses += from.l1i_misses;
    into.invalidations += from.invalidations;
    into.prefetches += from.prefetches;
}

/// Accumulates branch-predictor stats `from` into `into`. Commutative and
/// associative, like [`add_mem`].
pub fn add_branch(into: &mut BranchStats, from: BranchStats) {
    into.cond_branches += from.cond_branches;
    into.cond_mispredicts += from.cond_mispredicts;
    into.indirect += from.indirect;
    into.indirect_mispredicts += from.indirect_mispredicts;
    into.returns += from.returns;
    into.return_mispredicts += from.return_mispredicts;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats {
            cycles: 1000,
            instructions: 2000,
            ..Default::default()
        };
        s.branch.cond_branches = 100;
        s.branch.cond_mispredicts = 10;
        s.mem.l2_misses = 4;
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.branch_mpki() - 5.0).abs() < 1e-12);
        assert!((s.l2_mpki() - 2.0).abs() < 1e-12);
        assert!((s.runtime_seconds(2.0) - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
        assert_eq!(s.l2_mpki(), 0.0);
        assert_eq!(s.l3_mpki(), 0.0);
        assert_eq!(s.l1d_mpki(), 0.0);
    }

    #[test]
    fn aggregation_helpers() {
        let mut m = CoreMemStats::default();
        add_mem(
            &mut m,
            CoreMemStats {
                loads: 1,
                stores: 2,
                l1d_misses: 3,
                l2_misses: 4,
                l3_misses: 5,
                l1i_misses: 6,
                invalidations: 7,
                prefetches: 8,
            },
        );
        add_mem(
            &mut m,
            CoreMemStats {
                loads: 10,
                ..Default::default()
            },
        );
        assert_eq!(m.loads, 11);
        assert_eq!(m.invalidations, 7);

        let mut b = BranchStats::default();
        add_branch(
            &mut b,
            BranchStats {
                cond_branches: 5,
                cond_mispredicts: 1,
                ..Default::default()
            },
        );
        assert_eq!(b.total_branches(), 5);
        assert_eq!(b.total_mispredicts(), 1);
    }
}
