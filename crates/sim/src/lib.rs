//! # lp-sim — multicore timing simulation
//!
//! The Sniper-substitute: executes an `lp-isa` program on N cores with a
//! timing model, producing the statistics the paper's evaluation reports
//! (cycles, IPC, branch MPKI, cache MPKI) and supporting the two execution
//! modes LoopPoint's *how to simulate* step needs:
//!
//! * **fast-forward** — functional execution that warms caches and branch
//!   predictors but skips detailed core timing (the paper's binary-driven
//!   warmup "from the start of the application", §III-F);
//! * **detailed** — full out-of-order (or in-order) core timing.
//!
//! Thread interleaving is **unconstrained**: a min-cycle scheduler always
//! steps the runnable core with the smallest local clock, so the *simulated
//! microarchitecture* decides thread progress — spin-loop iteration counts,
//! barrier arrival orders, and dynamic-for chunk assignments all emerge from
//! target timing, exactly the property §II demands of unconstrained
//! simulation (contrast with `lp-pinball`'s constrained replay).
//!
//! Regions are delimited by `(PC, count)` [`Marker`]s — LoopPoint's
//! microarchitecture-invariant region boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod simulator;
pub mod stats;
mod timing;

pub use core_model::CoreTiming;
pub use lp_isa::Marker;
pub use simulator::{
    simulate_full, simulate_region, Mode, RegionSim, SimError, Simulator, StopCond,
};
pub use stats::{IpcSample, SimStats};
pub use timing::TimingModel;
