//! Per-core timing models: an out-of-order scoreboard and an in-order core.

use lp_isa::{Reg, RegFile};
use lp_uarch::CoreModel;
use std::collections::VecDeque;

/// Timing state of one core.
///
/// The out-of-order model is a scoreboard: register-ready times provide data
/// dependences, a bounded FIFO of in-order retire times models ROB
/// occupancy, and a dispatch-width counter models the front end. The
/// in-order model executes strictly serially. Both honour front-end stalls
/// (instruction-cache misses, mispredict redirects) through
/// [`CoreTiming::stall_fetch_until`].
#[derive(Debug, Clone)]
pub struct CoreTiming {
    model: CoreModel,
    /// Cycle of the most recent dispatch.
    now: u64,
    /// Instructions dispatched in cycle `now`.
    dispatched_in_cycle: u32,
    /// Earliest cycle the front end can deliver the next instruction.
    fetch_ready: u64,
    /// Cycle each architectural register's latest value is available.
    reg_ready: [u64; Reg::COUNT],
    /// In-order retire times of in-flight instructions (ROB model).
    rob: VecDeque<u64>,
    last_retire: u64,
}

impl CoreTiming {
    /// Creates an idle core at cycle zero.
    pub fn new(model: CoreModel) -> Self {
        CoreTiming {
            model,
            now: 0,
            dispatched_in_cycle: 0,
            fetch_ready: 0,
            reg_ready: [0; Reg::COUNT],
            rob: VecDeque::new(),
            last_retire: 0,
        }
    }

    /// The core's current local clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the core's clock to at least `cycle` (used when a sleeping
    /// thread is woken by another core, or when detailed mode begins after
    /// fast-forward).
    pub fn advance_to(&mut self, cycle: u64) {
        if cycle > self.now {
            self.now = cycle;
            self.dispatched_in_cycle = 0;
        }
        self.fetch_ready = self.fetch_ready.max(cycle);
    }

    /// Blocks instruction delivery until `cycle` (mispredict redirect or
    /// instruction-cache miss).
    pub fn stall_fetch_until(&mut self, cycle: u64) {
        self.fetch_ready = self.fetch_ready.max(cycle);
    }

    /// Accounts one instruction and returns `(issue, complete)` cycles.
    ///
    /// `srcs`/`dst` give register dependences; `latency` is the full
    /// execution latency including any memory-hierarchy time.
    pub fn dispatch(
        &mut self,
        srcs: [Option<Reg>; 3],
        dst: Option<Reg>,
        latency: u32,
    ) -> (u64, u64) {
        match self.model {
            CoreModel::OutOfOrder { rob, width } => {
                // Front-end: width per cycle, not before fetch_ready.
                let mut d = self.now.max(self.fetch_ready);
                if d == self.now && self.dispatched_in_cycle >= width {
                    d += 1;
                }
                // ROB occupancy: retire completed heads; if still full,
                // dispatch waits for the head to retire.
                while let Some(&head) = self.rob.front() {
                    if head <= d {
                        self.rob.pop_front();
                    } else {
                        break;
                    }
                }
                if self.rob.len() >= rob as usize {
                    if let Some(head) = self.rob.pop_front() {
                        d = d.max(head);
                    }
                    while self.rob.front().is_some_and(|&h| h <= d) {
                        self.rob.pop_front();
                    }
                }
                if d != self.now {
                    self.now = d;
                    self.dispatched_in_cycle = 1;
                } else {
                    self.dispatched_in_cycle += 1;
                }

                let mut issue = d;
                for src in srcs.into_iter().flatten() {
                    issue = issue.max(self.reg_ready[src.index()]);
                }
                let complete = issue + u64::from(latency);
                if let Some(rd) = dst {
                    self.reg_ready[rd.index()] = complete;
                }
                // In-order retirement: an instruction retires no earlier
                // than its predecessors.
                let retire = complete.max(self.last_retire);
                self.last_retire = retire;
                self.rob.push_back(retire);
                (issue, complete)
            }
            CoreModel::InOrder => {
                let issue = self.now.max(self.fetch_ready);
                let complete = issue + u64::from(latency.max(1));
                self.now = complete;
                if let Some(rd) = dst {
                    self.reg_ready[rd.index()] = complete;
                }
                self.last_retire = complete;
                (issue, complete)
            }
        }
    }

    /// Resets the clock domain to zero, keeping no in-flight state.
    /// Dependences and learned state live elsewhere (caches, predictors);
    /// used when starting a detailed region after fast-forward.
    pub fn reset_clock(&mut self) {
        self.now = 0;
        self.dispatched_in_cycle = 0;
        self.fetch_ready = 0;
        self.reg_ready = [0; Reg::COUNT];
        self.rob.clear();
        self.last_retire = 0;
    }

    /// Validates dependences against an architectural register file; debug
    /// aid for tests (all ready times must be sane, i.e. not in the distant
    /// future relative to `now` plus maximum latency).
    pub fn debug_max_reg_ready(&self, _regs: &RegFile) -> u64 {
        self.reg_ready.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ooo() -> CoreTiming {
        CoreTiming::new(CoreModel::OutOfOrder { rob: 4, width: 2 })
    }

    #[test]
    fn width_limits_dispatch_per_cycle() {
        let mut c = ooo();
        let (i1, _) = c.dispatch([None; 3], None, 1);
        let (i2, _) = c.dispatch([None; 3], None, 1);
        let (i3, _) = c.dispatch([None; 3], None, 1);
        assert_eq!(i1, 0);
        assert_eq!(i2, 0);
        assert_eq!(i3, 1, "third inst spills to the next cycle (width 2)");
    }

    #[test]
    fn data_dependence_serializes() {
        let mut c = ooo();
        let (_, done) = c.dispatch([None; 3], Some(Reg::R1), 10);
        assert_eq!(done, 10);
        let (issue, done2) = c.dispatch([Some(Reg::R1), None, None], Some(Reg::R2), 1);
        assert_eq!(issue, 10, "consumer waits for producer");
        assert_eq!(done2, 11);
    }

    #[test]
    fn independent_long_ops_overlap() {
        let mut c = ooo();
        let (_, d1) = c.dispatch([None; 3], Some(Reg::R1), 100);
        let (_, d2) = c.dispatch([None; 3], Some(Reg::R2), 100);
        assert_eq!(d1, 100);
        assert_eq!(d2, 100, "independent ops complete in parallel");
    }

    #[test]
    fn rob_fills_and_stalls() {
        let mut c = ooo();
        // Four 100-cycle ops fill the 4-entry ROB.
        for _ in 0..4 {
            c.dispatch([None; 3], None, 100);
        }
        let (issue, _) = c.dispatch([None; 3], None, 1);
        assert!(issue >= 100, "fifth op waits for ROB head, got {issue}");
    }

    #[test]
    fn fetch_stall_delays_dispatch() {
        let mut c = ooo();
        c.stall_fetch_until(50);
        let (issue, _) = c.dispatch([None; 3], None, 1);
        assert_eq!(issue, 50);
    }

    #[test]
    fn inorder_is_serial() {
        let mut c = CoreTiming::new(CoreModel::InOrder);
        let (_, d1) = c.dispatch([None; 3], Some(Reg::R1), 10);
        let (i2, d2) = c.dispatch([None; 3], Some(Reg::R2), 10);
        assert_eq!(d1, 10);
        assert_eq!(i2, 10, "strictly serial");
        assert_eq!(d2, 20);
        assert_eq!(c.now(), 20);
    }

    #[test]
    fn ooo_beats_inorder_on_independent_work() {
        let mut o = CoreTiming::new(CoreModel::OutOfOrder { rob: 128, width: 4 });
        let mut i = CoreTiming::new(CoreModel::InOrder);
        for _ in 0..100 {
            o.dispatch([None; 3], None, 4);
            i.dispatch([None; 3], None, 4);
        }
        // Flush time: last retire.
        assert!(o.now() < i.now() / 2, "OoO overlaps independent latency");
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut c = ooo();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        let (issue, _) = c.dispatch([None; 3], None, 1);
        assert!(issue >= 100);
    }

    #[test]
    fn reset_clock_zeroes_state() {
        let mut c = ooo();
        c.dispatch([None; 3], Some(Reg::R1), 50);
        c.reset_clock();
        assert_eq!(c.now(), 0);
        let (issue, _) = c.dispatch([Some(Reg::R1), None, None], None, 1);
        assert_eq!(issue, 0, "old dependences cleared");
    }
}
