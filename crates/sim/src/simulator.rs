//! The unconstrained multicore simulator driver.

use crate::stats::{IpcSample, SimStats};
use crate::timing::TimingModel;
use lp_isa::{Inst, Machine, MachineError, Marker, Pc, Program, StepResult, ThreadState};
use lp_uarch::SimConfig;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Functional execution with cache/branch-predictor warming only.
    FastForward,
    /// Full core timing.
    Detailed,
}

/// A stop condition for a simulation segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCond {
    /// Stop after the `count`-th global execution of the marker PC.
    Marker(Marker),
    /// Stop once the machine's global retired-instruction count reaches
    /// this value (the boundary representation naive instruction-count
    /// sampling uses — unstable across interleavings, which is the point
    /// of the §II comparison).
    AtGlobalInst(u64),
}

impl From<Marker> for StopCond {
    fn from(m: Marker) -> Self {
        StopCond::Marker(m)
    }
}

/// Errors from simulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The functional machine faulted.
    Machine(MachineError),
    /// All live threads were blocked.
    Deadlock {
        /// Global instructions retired when the deadlock was detected.
        at_instructions: u64,
    },
    /// The program finished before the stop marker was reached.
    MarkerNotReached {
        /// The marker that was never hit.
        marker: Marker,
        /// How many times its PC had executed.
        executed: u64,
    },
    /// The step budget was exhausted.
    StepLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Machine(e) => write!(f, "machine fault: {e}"),
            SimError::Deadlock { at_instructions } => {
                write!(f, "deadlock after {at_instructions} instructions")
            }
            SimError::MarkerNotReached { marker, executed } => write!(
                f,
                "program ended before marker {marker} (pc executed {executed} times)"
            ),
            SimError::StepLimit { limit } => write!(f, "step limit of {limit} exhausted"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> Self {
        SimError::Machine(e)
    }
}

/// Result of a region simulation: warmup plus detailed stats.
#[derive(Debug, Clone)]
pub struct RegionSim {
    /// Detailed statistics for the region (warmup fields filled in).
    pub stats: SimStats,
}

/// Unconstrained multicore timing simulator.
///
/// Threads map 1:1 onto cores; a min-cycle scheduler always steps the
/// runnable core with the smallest local clock, so thread interleaving is
/// decided by the simulated microarchitecture (the paper's *unconstrained
/// simulation*).
///
/// ```
/// use lp_isa::{ProgramBuilder, Reg, AluOp};
/// use lp_sim::{Simulator, Mode};
/// use lp_uarch::SimConfig;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), lp_sim::SimError> {
/// let mut pb = ProgramBuilder::new("demo");
/// let mut c = pb.main_code();
/// c.counted_loop("l", Reg::R1, 100, |c| {
///     c.alui(AluOp::Mul, Reg::R2, Reg::R2, 3);
/// });
/// c.halt();
/// c.finish();
///
/// let mut sim = Simulator::new(Arc::new(pb.finish()), 1, SimConfig::gainestown(1));
/// let stats = sim.run(Mode::Detailed, None, u64::MAX)?;
/// assert!(stats.ipc() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    machine: Machine,
    timing: TimingModel,
    parked: Vec<bool>,
    watch: Vec<(Pc, u64)>,
    sample_interval: Option<u64>,
    ff_instructions: u64,
    ff_wall: std::time::Duration,
    obs: lp_obs::Observer,
}

impl Simulator {
    /// Creates a simulator for `program` with a team of `nthreads` threads
    /// on configuration `cfg`.
    ///
    /// # Panics
    /// Panics if `nthreads` exceeds the configured core count.
    pub fn new(program: Arc<Program>, nthreads: usize, cfg: SimConfig) -> Self {
        assert!(
            nthreads <= cfg.ncores,
            "team of {nthreads} exceeds {} cores",
            cfg.ncores
        );
        Self::from_machine(Machine::new(program, nthreads), cfg)
    }

    /// Creates a simulator resuming from an existing machine state (the
    /// checkpoint-driven mode: the machine typically comes from a pinball
    /// region checkpoint). Timing state starts cold; pair with a warmup
    /// segment. Use [`Simulator::watch_pc_from`] to seed marker counts
    /// with their values at the checkpoint.
    ///
    /// # Panics
    /// Panics if the machine's thread count exceeds the configured cores.
    pub fn from_machine(machine: Machine, cfg: SimConfig) -> Self {
        let nthreads = machine.num_threads();
        assert!(
            nthreads <= cfg.ncores,
            "team of {nthreads} exceeds {} cores",
            cfg.ncores
        );
        // Threads already parked on futexes at the checkpoint must not be
        // scheduled until woken.
        let parked = (0..nthreads)
            .map(|tid| matches!(machine.thread_state(tid), ThreadState::Blocked { .. }))
            .collect();
        Simulator {
            timing: TimingModel::new(cfg, nthreads),
            parked,
            watch: Vec::new(),
            sample_interval: None,
            ff_instructions: 0,
            ff_wall: std::time::Duration::ZERO,
            machine,
            obs: lp_obs::global(),
        }
    }

    /// Creates a simulator resuming from a machine state **with warm
    /// microarchitectural state** — the live-mode rewind: pairing a
    /// functional snapshot with the [`Simulator::timing_checkpoint`] taken
    /// at the same instant yields a simulator whose caches and predictors
    /// reflect the entire execution history up to the snapshot, exactly as
    /// if it had simulated from program start. Segment statistics stay
    /// correct because cycle counts are deltas from segment entry.
    ///
    /// # Panics
    /// Panics if the machine's thread count differs from the timing
    /// state's core count.
    pub fn from_machine_warm(machine: Machine, timing: TimingModel) -> Self {
        let nthreads = machine.num_threads();
        assert_eq!(
            nthreads,
            timing.ncores(),
            "timing checkpoint is for {} cores, machine has {nthreads} threads",
            timing.ncores()
        );
        let parked = (0..nthreads)
            .map(|tid| matches!(machine.thread_state(tid), ThreadState::Blocked { .. }))
            .collect();
        Simulator {
            timing,
            parked,
            watch: Vec::new(),
            sample_interval: None,
            ff_instructions: 0,
            ff_wall: std::time::Duration::ZERO,
            machine,
            obs: lp_obs::global(),
        }
    }

    /// Clones the current microarchitectural state (core clocks, cache
    /// hierarchy, branch predictors) — the warm half of a live-mode
    /// snapshot, consumed by [`Simulator::from_machine_warm`].
    pub fn timing_checkpoint(&self) -> TimingModel {
        self.timing.clone()
    }

    /// Routes this simulator's spans, counters, and IPC heartbeats to
    /// `obs` instead of the process-global observer.
    pub fn set_observer(&mut self, obs: lp_obs::Observer) {
        self.obs = obs;
    }

    /// The simulated machine configuration.
    pub fn config(&self) -> &SimConfig {
        self.timing.config()
    }

    /// Read-only access to the functional machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Registers `pc` for global execution counting (markers must be
    /// watched before the run that crosses them).
    pub fn watch_pc(&mut self, pc: Pc) {
        self.watch_pc_from(pc, 0);
    }

    /// Registers `pc` with an initial count — the count the pc had already
    /// reached at the state this simulator resumed from (checkpoint-driven
    /// runs keep using whole-program `(PC, count)` markers this way).
    pub fn watch_pc_from(&mut self, pc: Pc, initial: u64) {
        if !self.watch.iter().any(|(p, _)| *p == pc) {
            self.watch.push((pc, initial));
        }
    }

    /// Times the watched PC has executed so far.
    pub fn watch_count(&self, pc: Pc) -> u64 {
        self.watch
            .iter()
            .find(|(p, _)| *p == pc)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Disables cache/predictor warming during fast-forward (cold-start
    /// ablation).
    pub fn set_ff_warming(&mut self, enabled: bool) {
        self.timing.set_ff_warming(enabled);
    }

    /// Enables IPC-over-time sampling every `interval` instructions during
    /// detailed runs (Fig. 4b traces).
    pub fn set_ipc_sampling(&mut self, interval: u64) {
        assert!(interval > 0);
        self.sample_interval = Some(interval);
    }

    fn pick_next(&self) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for tid in 0..self.timing.ncores() {
            if self.machine.thread_state(tid) == ThreadState::Running {
                let now = self.timing.core_now(tid);
                if best.is_none_or(|(_, b)| now < b) {
                    best = Some((tid, now));
                }
            }
        }
        best.map(|(tid, _)| tid)
    }

    /// Runs in `mode` until `stop` is crossed (or program end when `stop`
    /// is `None`), with a hard step budget.
    ///
    /// Detailed runs reset hierarchy/branch statistics at entry (keeping
    /// warmed state) and report statistics for the segment only.
    ///
    /// # Errors
    /// [`SimError::MarkerNotReached`] if the program finished first;
    /// [`SimError::Deadlock`] / [`SimError::StepLimit`] / machine faults.
    pub fn run(
        &mut self,
        mode: Mode,
        stop: Option<StopCond>,
        max_steps: u64,
    ) -> Result<SimStats, SimError> {
        self.run_with(mode, stop, max_steps, &mut |_| false)
    }

    /// [`Simulator::run`] with a per-retire observer hook: `hook` sees
    /// every retired instruction of the segment (after timing accounting,
    /// before marker bookkeeping) and may end the segment cleanly by
    /// returning `true` — the retired instruction that triggered the stop
    /// belongs to the segment that ends at it, exactly like a marker hit.
    ///
    /// This is the observer surface live-mode profiling drives: a
    /// streaming slicer rides the one functional execution instead of a
    /// separate recording pass.
    ///
    /// # Errors
    /// As [`Simulator::run`]; a hook-triggered stop is never an error,
    /// even when a `stop` condition was also given but not yet reached.
    pub fn run_with(
        &mut self,
        mode: Mode,
        stop: Option<StopCond>,
        max_steps: u64,
        hook: &mut dyn FnMut(&lp_isa::Retired) -> bool,
    ) -> Result<SimStats, SimError> {
        if let Some(StopCond::Marker(m)) = stop {
            assert!(
                self.watch.iter().any(|(p, _)| *p == m.pc),
                "stop marker {m} must be watched before running"
            );
        }
        let wall_start = Instant::now();
        let detailed = mode == Mode::Detailed;
        let mut span = self.obs.span(
            if detailed {
                "sim.detailed"
            } else {
                "sim.fast_forward"
            },
            "sim",
        );
        if detailed {
            self.timing.reset_stats();
        }
        let cycles_start = self.timing.max_cycle();
        let mut stats = SimStats {
            per_thread_instructions: vec![0; self.timing.ncores()],
            ..Default::default()
        };
        let mut steps: u64 = 0;
        let mut sample_insts: u64 = 0;
        let mut sample_cycle_base = cycles_start;
        let mut stopped_at_marker = false;

        'outer: while steps < max_steps {
            if self.machine.is_finished() {
                break;
            }
            let Some(tid) = self.pick_next() else {
                return Err(SimError::Deadlock {
                    at_instructions: stats.instructions,
                });
            };
            match self.machine.step(tid)? {
                StepResult::Idle => unreachable!("picked a runnable thread"),
                StepResult::Blocked => {
                    self.parked[tid] = true;
                }
                StepResult::Retired(r) => {
                    steps += 1;
                    stats.instructions += 1;
                    stats.per_thread_instructions[tid] += 1;
                    if !self.machine.program().is_library_pc(r.pc) {
                        stats.filtered_instructions += 1;
                    }

                    self.timing.account(&r, mode);

                    if matches!(r.inst, Inst::FutexWake { .. }) {
                        self.unpark_woken(tid);
                    }

                    if detailed {
                        if let Some(interval) = self.sample_interval {
                            sample_insts += 1;
                            if sample_insts >= interval {
                                let cyc = self.timing.max_cycle();
                                let window_cycles = cyc.saturating_sub(sample_cycle_base).max(1);
                                let ipc = sample_insts as f64 / window_cycles as f64;
                                stats.ipc_trace.push(IpcSample {
                                    instructions: stats.instructions,
                                    cycles: cyc - cycles_start,
                                    ipc,
                                });
                                // Heartbeat: a counter track in the trace,
                                // plus liveness for `/healthz` watchers.
                                self.obs.counter_sample("sim.ipc", "sim", "ipc", ipc);
                                self.obs.gauge("sim.last.ipc").set(ipc);
                                self.obs.heartbeat();
                                sample_insts = 0;
                                sample_cycle_base = cyc;
                            }
                        }
                    }

                    if hook(&r) {
                        // Count the stop instruction against any watched
                        // markers first, so `watch_count` stays exact for
                        // resumed segments.
                        for (pc, count) in &mut self.watch {
                            if *pc == r.pc {
                                *count += 1;
                            }
                        }
                        stopped_at_marker = true;
                        break 'outer;
                    }

                    // Marker bookkeeping last: the marker occurrence itself
                    // belongs to the segment that ends at it.
                    for (pc, count) in &mut self.watch {
                        if *pc == r.pc {
                            *count += 1;
                            if let Some(StopCond::Marker(m)) = stop {
                                if m.pc == *pc && *count == m.count {
                                    stopped_at_marker = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                    if let Some(StopCond::AtGlobalInst(n)) = stop {
                        if self.machine.global_retired() >= n {
                            stopped_at_marker = true;
                            break 'outer;
                        }
                    }
                }
            }
        }

        if let Some(cond) = stop {
            if !stopped_at_marker {
                if steps >= max_steps && !self.machine.is_finished() {
                    return Err(SimError::StepLimit { limit: max_steps });
                }
                match cond {
                    StopCond::Marker(m) => {
                        return Err(SimError::MarkerNotReached {
                            marker: m,
                            executed: self.watch_count(m.pc),
                        })
                    }
                    StopCond::AtGlobalInst(_) => {
                        // The program ended before the requested index; for
                        // instruction-count regions that is a valid, shorter
                        // region rather than an error.
                    }
                }
            }
        } else if steps >= max_steps && !self.machine.is_finished() {
            return Err(SimError::StepLimit { limit: max_steps });
        }

        stats.cycles = self.timing.max_cycle().saturating_sub(cycles_start);
        if detailed {
            self.timing.collect_into(&mut stats);
            stats.wall = wall_start.elapsed();
            stats.ff_instructions = self.ff_instructions;
            stats.ff_wall = self.ff_wall;
        } else {
            self.ff_instructions += stats.instructions;
            self.ff_wall += wall_start.elapsed();
            stats.ff_instructions = self.ff_instructions;
            stats.ff_wall = self.ff_wall;
        }

        // Observability: close the segment span with its headline numbers
        // and fold exact counts into the metrics registry.
        span.arg("instructions", stats.instructions);
        span.arg("cycles", stats.cycles);
        if self.obs.is_enabled() {
            if detailed {
                let m = &self.obs;
                m.counter("sim.detailed.instructions")
                    .add(stats.instructions);
                m.counter("sim.detailed.cycles").add(stats.cycles);
                m.counter("sim.detailed.filtered_instructions")
                    .add(stats.filtered_instructions);
                m.counter("sim.detailed.segments").inc();
                m.histogram("sim.segment.instructions")
                    .record(stats.instructions);
                m.gauge("sim.last.ipc").set(stats.ipc());
            } else {
                self.obs
                    .counter("sim.ff.instructions")
                    .add(stats.instructions);
                self.obs.counter("sim.ff.segments").inc();
            }
        }
        Ok(stats)
    }

    fn unpark_woken(&mut self, waker: usize) {
        let wake_cycle = self.timing.core_now(waker);
        for tid in 0..self.parked.len() {
            if self.parked[tid] && self.machine.thread_state(tid) == ThreadState::Running {
                self.parked[tid] = false;
                self.timing.advance_core_to(tid, wake_cycle);
            }
        }
    }
}

/// Runs a whole program in detailed mode.
///
/// # Errors
/// Propagates any [`SimError`] from the run.
pub fn simulate_full(
    program: Arc<Program>,
    nthreads: usize,
    cfg: SimConfig,
    max_steps: u64,
) -> Result<SimStats, SimError> {
    let mut sim = Simulator::new(program, nthreads, cfg);
    sim.run(Mode::Detailed, None, max_steps)
}

/// Runs one region: fast-forwards (with warming) from program start to
/// `start`, then simulates in detail until `end`.
///
/// Passing `start = None` begins detailed simulation at program start.
///
/// # Errors
/// Propagates any [`SimError`]; in particular markers that are never
/// reached surface as [`SimError::MarkerNotReached`].
pub fn simulate_region(
    program: Arc<Program>,
    nthreads: usize,
    cfg: SimConfig,
    start: Option<Marker>,
    end: Marker,
    max_steps: u64,
) -> Result<RegionSim, SimError> {
    let mut sim = Simulator::new(program, nthreads, cfg);
    if let Some(s) = start {
        sim.watch_pc(s.pc);
    }
    sim.watch_pc(end.pc);
    if let Some(s) = start {
        sim.run(Mode::FastForward, Some(StopCond::Marker(s)), max_steps)?;
    }
    let stats = sim.run(Mode::Detailed, Some(StopCond::Marker(end)), max_steps)?;
    Ok(RegionSim { stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_isa::{AluOp, ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy};

    const BUDGET: u64 = 200_000_000;

    /// A small two-phase program: a cache-friendly compute loop, then a
    /// memory-streaming loop over a large array.
    fn two_phase_program(iters: u64) -> (Arc<Program>, Pc) {
        let mut pb = ProgramBuilder::new("two-phase");
        let mut c = pb.main_code();
        c.li(Reg::R1, 1);
        c.counted_loop("compute", Reg::R2, iters, |c| {
            c.alui(AluOp::Mul, Reg::R1, Reg::R1, 3);
            c.alui(AluOp::Add, Reg::R1, Reg::R1, 7);
        });
        c.li(Reg::R3, 0x100_0000); // array base
        let hdr = c.counted_loop("stream", Reg::R2, iters, |c| {
            c.load(Reg::R4, Reg::R3, 0);
            c.alui(AluOp::Add, Reg::R3, Reg::R3, 64);
            c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R4);
        });
        c.halt();
        c.finish();
        (Arc::new(pb.finish()), hdr)
    }

    #[test]
    fn full_simulation_produces_sane_stats() {
        let (p, _) = two_phase_program(1000);
        let stats = simulate_full(p, 1, lp_uarch::SimConfig::gainestown(1), BUDGET).unwrap();
        assert!(stats.instructions > 6000);
        assert!(stats.cycles > 0);
        let ipc = stats.ipc();
        assert!(ipc > 0.1 && ipc < 4.0, "ipc={ipc}");
        assert!(stats.mem.loads >= 1000);
        assert!(stats.mem.l1d_misses > 0, "streaming loop must miss");
    }

    #[test]
    fn inorder_is_slower_than_ooo() {
        let (p, _) = two_phase_program(2000);
        let ooo = simulate_full(p.clone(), 1, lp_uarch::SimConfig::gainestown(1), BUDGET).unwrap();
        let ino = simulate_full(p, 1, lp_uarch::SimConfig::gainestown_inorder(1), BUDGET).unwrap();
        assert_eq!(ooo.instructions, ino.instructions, "same functional path");
        assert!(
            ino.cycles > ooo.cycles,
            "in-order {} should exceed OoO {}",
            ino.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn region_simulation_stops_at_marker() {
        let (p, stream_hdr) = two_phase_program(1000);
        // Region = stream iterations 100..=200 (global counts).
        let start = Marker::new(stream_hdr, 100);
        let end = Marker::new(stream_hdr, 200);
        let cfg = lp_uarch::SimConfig::gainestown(1);
        let region = simulate_region(p, 1, cfg, Some(start), end, BUDGET).unwrap();
        // 100 stream iterations x 5 instructions (load/add/add/sub/branch).
        assert_eq!(region.stats.instructions, 500);
        assert!(region.stats.ff_instructions > 0, "warmup happened");
    }

    #[test]
    fn marker_not_reached_is_reported() {
        let (p, hdr) = two_phase_program(10);
        let cfg = lp_uarch::SimConfig::gainestown(1);
        let err = simulate_region(p, 1, cfg, None, Marker::new(hdr, 500), BUDGET).unwrap_err();
        assert!(matches!(err, SimError::MarkerNotReached { .. }), "{err}");
    }

    #[test]
    fn step_limit_is_enforced() {
        let (p, _) = two_phase_program(100_000);
        let err = simulate_full(p, 1, lp_uarch::SimConfig::gainestown(1), 1000).unwrap_err();
        assert!(matches!(err, SimError::StepLimit { limit: 1000 }));
    }

    fn parallel_program(nthreads: usize, policy: WaitPolicy) -> Arc<Program> {
        let mut pb = ProgramBuilder::new("par");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "work", |c, rt| {
            rt.emit_static_for(c, "work.loop", 4096, |c, _| {
                // idx in r16: touch a shared array.
                c.li(Reg::R1, 0x100_0000);
                c.alui(AluOp::Shl, Reg::R2, Reg::R16, 3);
                c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
                c.load(Reg::R3, Reg::R1, 0);
                c.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
                c.store(Reg::R3, Reg::R1, 0);
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        Arc::new(pb.finish())
    }

    #[test]
    fn multithreaded_simulation_completes_and_scales() {
        let cfg8 = lp_uarch::SimConfig::gainestown(8);
        let s1 = simulate_full(
            parallel_program(1, WaitPolicy::Passive),
            1,
            cfg8.clone(),
            BUDGET,
        )
        .unwrap();
        let s8 = simulate_full(parallel_program(8, WaitPolicy::Passive), 8, cfg8, BUDGET).unwrap();
        assert!(
            (s8.cycles as f64) < s1.cycles as f64 / 2.0,
            "8 threads ({}) should be much faster than 1 ({})",
            s8.cycles,
            s1.cycles
        );
    }

    #[test]
    fn active_policy_retires_spin_instructions() {
        let passive = simulate_full(
            parallel_program(4, WaitPolicy::Passive),
            4,
            lp_uarch::SimConfig::gainestown(4),
            BUDGET,
        )
        .unwrap();
        let active = simulate_full(
            parallel_program(4, WaitPolicy::Active),
            4,
            lp_uarch::SimConfig::gainestown(4),
            BUDGET,
        )
        .unwrap();
        assert!(
            active.instructions > passive.instructions,
            "spinning inflates instruction count: active={} passive={}",
            active.instructions,
            passive.instructions
        );
        // Spin instructions are in the library image, so the *filtered*
        // counts must be close (they differ only by futex-vs-spin runtime
        // code paths, not by application work).
        let diff = (active.filtered_instructions as f64 - passive.filtered_instructions as f64)
            .abs()
            / passive.filtered_instructions as f64;
        assert!(diff < 0.01, "filtered counts nearly equal, diff={diff}");
    }

    #[test]
    fn ipc_sampling_produces_trace() {
        let (p, _) = two_phase_program(5000);
        let mut sim = Simulator::new(p, 1, lp_uarch::SimConfig::gainestown(1));
        sim.set_ipc_sampling(1000);
        let stats = sim.run(Mode::Detailed, None, BUDGET).unwrap();
        assert!(stats.ipc_trace.len() >= 10);
        // The compute phase should have higher IPC than the streaming phase.
        let first = stats.ipc_trace[1].ipc;
        let last = stats.ipc_trace[stats.ipc_trace.len() - 2].ipc;
        assert!(
            first > last,
            "compute IPC {first} should exceed streaming IPC {last}"
        );
    }

    #[test]
    fn watch_counts_accumulate_across_runs() {
        let (p, hdr) = two_phase_program(50);
        let mut sim = Simulator::new(p, 1, lp_uarch::SimConfig::gainestown(1));
        sim.watch_pc(hdr);
        sim.run(
            Mode::FastForward,
            Some(StopCond::Marker(Marker::new(hdr, 10))),
            BUDGET,
        )
        .unwrap();
        assert_eq!(sim.watch_count(hdr), 10);
        sim.run(
            Mode::Detailed,
            Some(StopCond::Marker(Marker::new(hdr, 30))),
            BUDGET,
        )
        .unwrap();
        assert_eq!(sim.watch_count(hdr), 30);
    }

    #[test]
    fn hook_stop_ends_segment_cleanly_and_resumes() {
        let (p, hdr) = two_phase_program(50);
        let mut sim = Simulator::new(p, 1, lp_uarch::SimConfig::gainestown(1));
        sim.watch_pc(hdr);
        let mut seen = 0u64;
        let stats = sim
            .run_with(Mode::FastForward, None, BUDGET, &mut |_| {
                seen += 1;
                seen == 100
            })
            .unwrap();
        assert_eq!(stats.instructions, 100, "hook stop is exact");
        // The same simulator resumes where the hook stopped it.
        let rest = sim.run(Mode::Detailed, None, BUDGET).unwrap();
        assert!(rest.instructions > 0);
        assert_eq!(sim.watch_count(hdr), 50, "watch counts stay exact");
    }

    #[test]
    fn hook_stop_beats_an_unreached_marker() {
        let (p, hdr) = two_phase_program(50);
        let mut sim = Simulator::new(p, 1, lp_uarch::SimConfig::gainestown(1));
        sim.watch_pc(hdr);
        let mut seen = 0u64;
        // The marker would only fire on the 40th header execution; the
        // hook stops after 10 instructions, and that is not an error.
        let stats = sim
            .run_with(
                Mode::FastForward,
                Some(StopCond::Marker(Marker::new(hdr, 40))),
                BUDGET,
                &mut |_| {
                    seen += 1;
                    seen == 10
                },
            )
            .unwrap();
        assert_eq!(stats.instructions, 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = parallel_program(4, WaitPolicy::Active);
        let a = simulate_full(p.clone(), 4, lp_uarch::SimConfig::gainestown(4), BUDGET).unwrap();
        let b = simulate_full(p, 4, lp_uarch::SimConfig::gainestown(4), BUDGET).unwrap();
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
    }
}
