//! Property tests for `lp_sim::stats` aggregation helpers: `add_mem` and
//! `add_branch` are plain field-wise sums, so folding stats from several
//! simulation segments must be order-independent — commutative,
//! associative, and with `Default` as the identity. Extrapolation (Eq. 1)
//! sums region stats in cluster order; these properties are what make that
//! order arbitrary.

use lp_sim::stats::{add_branch, add_mem};
use lp_uarch::{BranchStats, CoreMemStats};
use proptest::prelude::*;

/// Field values are bounded so that summing three of them cannot overflow
/// a `u64` (the helpers use plain `+=`, as production segment counts stay
/// far below 2^62).
const BOUND: u64 = 1 << 32;

fn mem(v: &[u64]) -> CoreMemStats {
    CoreMemStats {
        loads: v[0],
        stores: v[1],
        l1d_misses: v[2],
        l2_misses: v[3],
        l3_misses: v[4],
        l1i_misses: v[5],
        invalidations: v[6],
        prefetches: v[7],
    }
}

fn branch(v: &[u64]) -> BranchStats {
    BranchStats {
        cond_branches: v[0],
        cond_mispredicts: v[1],
        indirect: v[2],
        indirect_mispredicts: v[3],
        returns: v[4],
        return_mispredicts: v[5],
    }
}

fn mem_fields() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..BOUND, 8usize)
}

fn branch_fields() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..BOUND, 6usize)
}

proptest! {
    #[test]
    fn add_mem_commutes(a in mem_fields(), b in mem_fields()) {
        let mut ab = mem(&a);
        add_mem(&mut ab, mem(&b));
        let mut ba = mem(&b);
        add_mem(&mut ba, mem(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn add_mem_associates(a in mem_fields(), b in mem_fields(), c in mem_fields()) {
        // (a + b) + c
        let mut left = mem(&a);
        add_mem(&mut left, mem(&b));
        add_mem(&mut left, mem(&c));
        // a + (b + c)
        let mut bc = mem(&b);
        add_mem(&mut bc, mem(&c));
        let mut right = mem(&a);
        add_mem(&mut right, bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn add_mem_identity(a in mem_fields()) {
        let mut x = mem(&a);
        add_mem(&mut x, CoreMemStats::default());
        prop_assert_eq!(x, mem(&a));
        let mut y = CoreMemStats::default();
        add_mem(&mut y, mem(&a));
        prop_assert_eq!(y, mem(&a));
    }

    #[test]
    fn add_branch_commutes(a in branch_fields(), b in branch_fields()) {
        let mut ab = branch(&a);
        add_branch(&mut ab, branch(&b));
        let mut ba = branch(&b);
        add_branch(&mut ba, branch(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn add_branch_associates(a in branch_fields(), b in branch_fields(), c in branch_fields()) {
        let mut left = branch(&a);
        add_branch(&mut left, branch(&b));
        add_branch(&mut left, branch(&c));
        let mut bc = branch(&b);
        add_branch(&mut bc, branch(&c));
        let mut right = branch(&a);
        add_branch(&mut right, bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn totals_are_sums(a in branch_fields(), b in branch_fields()) {
        let mut ab = branch(&a);
        add_branch(&mut ab, branch(&b));
        prop_assert_eq!(
            ab.total_mispredicts(),
            branch(&a).total_mispredicts() + branch(&b).total_mispredicts()
        );
        prop_assert_eq!(
            ab.total_branches(),
            branch(&a).total_branches() + branch(&b).total_branches()
        );
    }
}
