//! Timing-model effects the evaluation depends on: wait-policy costs,
//! coherence interference, mispredict penalties, and prefetching.

use lp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};
use lp_sim::simulate_full;
use lp_uarch::SimConfig;
use std::sync::Arc;

const BUDGET: u64 = 500_000_000;

/// Imbalanced barrier program: thread 0 does 10× the work of the others.
fn imbalanced(policy: WaitPolicy, nthreads: usize) -> Arc<Program> {
    let mut pb = ProgramBuilder::new("imb");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    rt.emit_parallel(&mut c, "work", |c, rt| {
        c.tid(Reg::R1);
        let heavy = c.new_label();
        let done = c.new_label();
        c.branch(Cond::Eq, Reg::R1, Reg::R31, heavy);
        c.li(Reg::R2, 200);
        c.jump(done);
        c.bind(heavy);
        c.li(Reg::R2, 2000);
        c.bind(done);
        c.counted_loop_reg("", Reg::R2, |c| {
            c.alui(AluOp::Mul, Reg::R3, Reg::R3, 13);
        });
        rt.emit_barrier(c);
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}

#[test]
fn active_waiting_burns_instructions_not_time() {
    // With one slow thread, active waiters spin (retiring instructions)
    // while passive waiters sleep; the *runtime* is dominated by the slow
    // thread either way, so cycles should be in the same ballpark while
    // instruction counts differ hugely.
    let cfg = SimConfig::gainestown(4);
    let act = simulate_full(imbalanced(WaitPolicy::Active, 4), 4, cfg.clone(), BUDGET).unwrap();
    let pas = simulate_full(imbalanced(WaitPolicy::Passive, 4), 4, cfg, BUDGET).unwrap();
    assert!(
        act.instructions > pas.instructions * 2,
        "spinning inflates instructions: {} vs {}",
        act.instructions,
        pas.instructions
    );
    let cycle_ratio = act.cycles as f64 / pas.cycles as f64;
    assert!(
        (0.5..2.0).contains(&cycle_ratio),
        "runtimes comparable, ratio {cycle_ratio}"
    );
}

/// Threads repeatedly writing the same shared line (true sharing) vs
/// disjoint lines.
fn sharing(nthreads: usize, same_line: bool) -> Arc<Program> {
    let mut pb = ProgramBuilder::new("share");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    rt.emit_parallel(&mut c, "w", |c, _| {
        c.tid(Reg::R1);
        if same_line {
            c.li(Reg::R2, APP_BASE as i64); // everyone hits one line
        } else {
            c.li(Reg::R3, 4096);
            c.alu(AluOp::Mul, Reg::R2, Reg::R1, Reg::R3);
            c.alui(AluOp::Add, Reg::R2, Reg::R2, APP_BASE as i64);
        }
        c.li(Reg::R4, 2000);
        c.counted_loop_reg("", Reg::R4, |c| {
            c.load(Reg::R5, Reg::R2, 0);
            c.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
            c.store(Reg::R5, Reg::R2, 0);
        });
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}

#[test]
fn true_sharing_costs_more_than_disjoint_lines() {
    let cfg = SimConfig::gainestown(4);
    let shared = simulate_full(sharing(4, true), 4, cfg.clone(), BUDGET).unwrap();
    let disjoint = simulate_full(sharing(4, false), 4, cfg, BUDGET).unwrap();
    assert!(
        shared.mem.invalidations > disjoint.mem.invalidations * 5,
        "ping-pong invalidations: {} vs {}",
        shared.mem.invalidations,
        disjoint.mem.invalidations
    );
    assert!(
        shared.cycles > disjoint.cycles,
        "coherence traffic slows the shared-line version: {} vs {}",
        shared.cycles,
        disjoint.cycles
    );
}

/// Data-dependent (unpredictable) branches vs a fixed pattern.
fn branchy(pseudo_random: bool) -> Arc<Program> {
    let mut pb = ProgramBuilder::new("br");
    let mut c = pb.main_code();
    c.li(Reg::R1, 0x9e3779b9);
    c.li(Reg::R5, 0);
    c.counted_loop("l", Reg::R2, 20_000, |c| {
        if pseudo_random {
            c.alui(AluOp::Mul, Reg::R1, Reg::R1, 6364136223846793005u64 as i64);
            c.alui(AluOp::Add, Reg::R1, Reg::R1, 1442695040888963407u64 as i64);
            c.alui(AluOp::Shr, Reg::R3, Reg::R1, 33);
            c.alui(AluOp::And, Reg::R3, Reg::R3, 1);
        } else {
            c.li(Reg::R3, 1);
        }
        let skip = c.new_label();
        c.branch(Cond::Eq, Reg::R3, Reg::R31, skip);
        c.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        c.bind(skip);
    });
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}

#[test]
fn unpredictable_branches_cost_cycles() {
    let cfg = SimConfig::gainestown(1);
    let random = simulate_full(branchy(true), 1, cfg.clone(), BUDGET).unwrap();
    let fixed = simulate_full(branchy(false), 1, cfg, BUDGET).unwrap();
    assert!(
        random.branch_mpki() > fixed.branch_mpki() * 5.0,
        "mispredicts: {} vs {} MPKI",
        random.branch_mpki(),
        fixed.branch_mpki()
    );
    // Per-instruction cost must be higher for the unpredictable version.
    let cpi_r = random.cycles as f64 / random.instructions as f64;
    let cpi_f = fixed.cycles as f64 / fixed.instructions as f64;
    assert!(cpi_r > cpi_f, "CPI {cpi_r:.3} vs {cpi_f:.3}");
}

#[test]
fn prefetcher_speeds_up_streaming() {
    let mut pb = ProgramBuilder::new("stream");
    let mut c = pb.main_code();
    c.li(Reg::R1, APP_BASE as i64);
    c.counted_loop("s", Reg::R2, 20_000, |c| {
        c.load(Reg::R3, Reg::R1, 0);
        c.alui(AluOp::Add, Reg::R1, Reg::R1, 64);
    });
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());

    let base = SimConfig::gainestown(1);
    let mut pf = SimConfig::gainestown(1);
    pf.prefetch_next_line = true;

    let without = simulate_full(p.clone(), 1, base, BUDGET).unwrap();
    let with = simulate_full(p, 1, pf, BUDGET).unwrap();
    assert!(with.mem.prefetches > 10_000, "prefetcher active");
    assert!(
        with.cycles < without.cycles * 9 / 10,
        "prefetching speeds streaming: {} vs {}",
        with.cycles,
        without.cycles
    );
}
