//! Property-based tests for the ISA and machine.

use lp_isa::*;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_aluop() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

proptest! {
    /// ALU semantics agree with a straightforward reference model.
    #[test]
    fn alu_matches_reference(op in arb_aluop(), a: u64, b: u64) {
        let expect = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(0),
            AluOp::Rem => if b == 0 { a } else { a % b },
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
        };
        prop_assert_eq!(op.apply(a, b), expect);
    }

    /// PC word encoding is a bijection over its domain.
    #[test]
    fn pc_word_roundtrip(image in 0u16..u16::MAX, offset: u32) {
        let pc = Pc::new(ImageId(image), offset);
        prop_assert_eq!(Pc::from_word(pc.to_word()), pc);
    }

    /// Memory is a flat word store: the last write to a word wins and
    /// word accesses never alias distinct word addresses.
    #[test]
    fn memory_is_a_word_store(writes in prop::collection::vec((0u64..1u64<<20, any::<u64>()), 1..64)) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, val) in &writes {
            let a = Addr(addr).align_word();
            mem.store(a, val);
            model.insert(a, val);
        }
        for (&a, &v) in &model {
            prop_assert_eq!(mem.load(a), v);
        }
    }

    /// Executing a random straight-line ALU program is deterministic and
    /// snapshot/restore at any point reproduces the same final registers.
    #[test]
    fn snapshot_restore_any_cut_point(
        ops in prop::collection::vec((arb_aluop(), 0u8..8, 0u8..8, 0u8..8, any::<i16>()), 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut pb = ProgramBuilder::new("prop");
        let mut c = pb.main_code();
        for (i, &(op, rd, ra, _rb, imm)) in ops.iter().enumerate() {
            if i % 3 == 0 {
                c.li(Reg::from_index(rd), i64::from(imm));
            }
            c.alui(op, Reg::from_index(rd), Reg::from_index(ra), i64::from(imm));
        }
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());

        let mut m1 = Machine::new(p.clone(), 1);
        m1.run_to_completion(1_000_000).unwrap();

        let cut = ((ops.len() as f64) * cut_frac) as u64;
        let mut m2 = Machine::new(p.clone(), 1);
        for _ in 0..cut {
            m2.step(0).unwrap();
        }
        let snap = m2.snapshot();
        let mut m3 = Machine::from_snapshot(p, &snap);
        m3.run_to_completion(1_000_000).unwrap();
        prop_assert_eq!(m1.regs(0), m3.regs(0));
    }

    /// Loop trip counts: a counted loop of n iterations retires exactly
    /// n executions of its header.
    #[test]
    fn counted_loop_trip_count(n in 0u64..200) {
        let mut pb = ProgramBuilder::new("loop");
        let mut c = pb.main_code();
        let hdr = c.counted_loop("l", Reg::R1, n, |c| {
            c.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        });
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let mut m = Machine::new(p, 1);
        let mut count = 0u64;
        while !m.is_finished() {
            if let StepResult::Retired(r) = m.step(0).unwrap() {
                if r.pc == hdr {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, n);
        prop_assert_eq!(m.regs(0)[Reg::R2], n);
    }
}

proptest! {
    /// MachineState serialization is a lossless, canonical round trip for
    /// any reachable state: arbitrary register contents, arbitrary store
    /// patterns, snapshots taken at any cut point — including the initial
    /// state with completely empty memory.
    #[test]
    fn state_roundtrip_arbitrary_contents(
        reg_vals in prop::collection::vec(any::<i16>(), 1..8),
        writes in prop::collection::vec((0u64..1u64<<20, any::<i16>()), 0..24),
        cut in 0usize..64,
    ) {
        let mut pb = ProgramBuilder::new("stateio-prop");
        let mut c = pb.main_code();
        for (i, &v) in reg_vals.iter().enumerate() {
            c.li(Reg::from_index((i % 8) as u8), i64::from(v));
        }
        for &(addr, v) in &writes {
            c.li(Reg::R9, (Addr(addr).align_word().0) as i64);
            c.li(Reg::R10, i64::from(v));
            c.store(Reg::R10, Reg::R9, 0);
        }
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());

        let mut m = Machine::new(p.clone(), 1);
        for _ in 0..cut {
            if m.is_finished() {
                break;
            }
            m.step(0).unwrap();
        }
        let state = m.snapshot();

        // Encode → decode → re-encode is the identity on bytes (canonical
        // form), and the declared length is exact.
        let mut bytes = Vec::new();
        state.write_to(&mut bytes).unwrap();
        prop_assert_eq!(state.encoded_len(), bytes.len());
        let restored = MachineState::read_from(&mut bytes.as_slice()).unwrap();
        let mut again = Vec::new();
        restored.write_to(&mut again).unwrap();
        prop_assert_eq!(&again, &bytes);

        // And the restored state is behaviourally identical: both runs
        // finish with the same registers and retire counts.
        let mut a = Machine::from_snapshot(p.clone(), &state);
        let mut b = Machine::from_snapshot(p, &restored);
        a.run_to_completion(1_000_000).unwrap();
        b.run_to_completion(1_000_000).unwrap();
        prop_assert_eq!(a.regs(0), b.regs(0));
        prop_assert_eq!(a.global_retired(), b.global_retired());
    }

    /// The pristine initial state (no instruction executed, empty memory)
    /// round-trips too — the smallest well-formed checkpoint.
    #[test]
    fn empty_memory_state_roundtrips(nregs in 1usize..8) {
        let mut pb = ProgramBuilder::new("empty-prop");
        let mut c = pb.main_code();
        for i in 0..nregs {
            c.alui(AluOp::Add, Reg::from_index(i as u8), Reg::from_index(i as u8), 1);
        }
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let state = Machine::new(p, 1).snapshot();

        let mut bytes = Vec::new();
        state.write_to(&mut bytes).unwrap();
        prop_assert_eq!(state.encoded_len(), bytes.len());
        let restored = MachineState::read_from(&mut bytes.as_slice()).unwrap();
        let mut again = Vec::new();
        restored.write_to(&mut again).unwrap();
        prop_assert_eq!(again, bytes);
    }
}
