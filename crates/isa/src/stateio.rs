//! Binary serialization of [`MachineState`] — the register + memory files
//! of a pinball.
//!
//! PinPlay pinballs are "portable and shareable user-level checkpoints";
//! this module provides the equivalent: a compact little-endian encoding of
//! the full architectural state that `lp-pinball` wraps (together with the
//! race log) into an on-disk pinball. The format is versioned and
//! self-describing enough to fail loudly on mismatch; it intentionally does
//! **not** include the program (the "binary"), which travels separately, as
//! `.text` does in a real pinball.

use crate::addr::Pc;
use crate::inst::{Reg, RegFile};
use crate::machine::{MachineState, ThreadCtx, ThreadState};
use crate::mem::{Memory, MEM_PAGE_WORDS};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"LPMS";
const VERSION: u32 = 1;

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl MachineState {
    /// Writes the state in the versioned binary format.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(w, VERSION)?;

        // Memory pages, sorted for deterministic output.
        let mut pages: Vec<(u64, &[u64; MEM_PAGE_WORDS])> = self.mem.iter_pages().collect();
        pages.sort_by_key(|&(i, _)| i);
        put_u64(w, pages.len() as u64)?;
        for (index, words) in pages {
            put_u64(w, index)?;
            for &word in words.iter() {
                put_u64(w, word)?;
            }
        }

        // Threads.
        put_u32(w, self.threads.len() as u32)?;
        for t in &self.threads {
            for r in Reg::all() {
                put_u64(w, t.regs[r])?;
            }
            put_u64(w, t.pc.to_word())?;
            match t.state {
                ThreadState::Running => put_u32(w, 0)?,
                ThreadState::Blocked { addr } => {
                    put_u32(w, 1)?;
                    put_u64(w, addr.0)?;
                }
                ThreadState::Halted => put_u32(w, 2)?,
            }
            put_u32(w, t.call_stack.len() as u32)?;
            for pc in &t.call_stack {
                put_u64(w, pc.to_word())?;
            }
            put_u64(w, t.retired)?;
        }

        // Futex wait queues, sorted by address.
        let mut futexes: Vec<(&u64, &VecDeque<usize>)> = self.futex_waiters.iter().collect();
        futexes.sort_by_key(|&(a, _)| *a);
        put_u32(w, futexes.len() as u32)?;
        for (addr, queue) in futexes {
            put_u64(w, *addr)?;
            put_u32(w, queue.len() as u32)?;
            for &tid in queue {
                put_u32(w, tid as u32)?;
            }
        }

        put_u64(w, self.global_seq)?;
        put_u32(w, self.live_threads as u32)?;
        Ok(())
    }

    /// Exact byte length [`MachineState::write_to`] would produce, computed
    /// arithmetically (no serialization). Cheap enough to call on every
    /// region checkpoint for memory-footprint accounting.
    pub fn encoded_len(&self) -> usize {
        let n_regs = Reg::all().count();
        let mut n = MAGIC.len() + 4; // magic + version
                                     // Memory pages: count + per page (index + words).
        n += 8 + self.mem.iter_pages().count() * (8 + MEM_PAGE_WORDS * 8);
        // Threads.
        n += 4;
        for t in &self.threads {
            n += n_regs * 8; // registers
            n += 8; // pc
            n += match t.state {
                ThreadState::Blocked { .. } => 4 + 8,
                ThreadState::Running | ThreadState::Halted => 4,
            };
            n += 4 + t.call_stack.len() * 8; // call stack
            n += 8; // retired
        }
        // Futex wait queues.
        n += 4;
        for queue in self.futex_waiters.values() {
            n += 8 + 4 + queue.len() * 4;
        }
        n += 8 + 4; // global_seq + live_threads
        n
    }

    /// Reads a state previously produced by [`MachineState::write_to`].
    ///
    /// # Errors
    /// I/O errors, or `InvalidData` on magic/version/shape mismatches.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<MachineState> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a machine-state blob (bad magic)"));
        }
        let version = get_u32(r)?;
        if version != VERSION {
            return Err(bad("unsupported machine-state version"));
        }

        let mut mem = Memory::new();
        let npages = get_u64(r)?;
        for _ in 0..npages {
            let index = get_u64(r)?;
            let mut words = Box::new([0u64; MEM_PAGE_WORDS]);
            for slot in words.iter_mut() {
                *slot = get_u64(r)?;
            }
            mem.insert_page(index, words);
        }

        let nthreads = get_u32(r)? as usize;
        if nthreads == 0 || nthreads > 4096 {
            return Err(bad("implausible thread count"));
        }
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let mut regs = RegFile::default();
            for reg in Reg::all() {
                regs[reg] = get_u64(r)?;
            }
            let pc = Pc::from_word(get_u64(r)?);
            let state = match get_u32(r)? {
                0 => ThreadState::Running,
                1 => ThreadState::Blocked {
                    addr: crate::addr::Addr(get_u64(r)?),
                },
                2 => ThreadState::Halted,
                _ => return Err(bad("unknown thread state tag")),
            };
            let depth = get_u32(r)? as usize;
            if depth > 1 << 16 {
                return Err(bad("implausible call-stack depth"));
            }
            let mut call_stack = Vec::with_capacity(depth);
            for _ in 0..depth {
                call_stack.push(Pc::from_word(get_u64(r)?));
            }
            let retired = get_u64(r)?;
            threads.push(ThreadCtx {
                regs,
                pc,
                state,
                call_stack,
                retired,
            });
        }

        let nfutex = get_u32(r)? as usize;
        let mut futex_waiters = HashMap::with_capacity(nfutex);
        for _ in 0..nfutex {
            let addr = get_u64(r)?;
            let len = get_u32(r)? as usize;
            if len > nthreads {
                return Err(bad("futex queue longer than thread pool"));
            }
            let mut q = VecDeque::with_capacity(len);
            for _ in 0..len {
                let tid = get_u32(r)? as usize;
                if tid >= nthreads {
                    return Err(bad("futex waiter tid out of range"));
                }
                q.push_back(tid);
            }
            futex_waiters.insert(addr, q);
        }

        let global_seq = get_u64(r)?;
        let live_threads = get_u32(r)? as usize;
        if live_threads > nthreads {
            return Err(bad("live thread count exceeds pool"));
        }

        Ok(MachineState {
            mem,
            threads,
            futex_waiters,
            global_seq,
            live_threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Machine, MachineState, ProgramBuilder, Reg};
    use std::sync::Arc;

    fn sample_state() -> (Arc<crate::Program>, MachineState) {
        let mut pb = ProgramBuilder::new("io");
        let f = pb.new_label();
        let mut c = pb.main_code();
        c.li(Reg::R1, 0x40);
        c.li(Reg::R2, 99);
        c.store(Reg::R2, Reg::R1, 0);
        c.call(f);
        c.halt();
        c.bind(f);
        c.counted_loop("l", Reg::R3, 5, |c| {
            c.alui(crate::AluOp::Add, Reg::R4, Reg::R4, 7);
        });
        c.ret();
        c.finish();
        let p = Arc::new(pb.finish());
        let mut m = Machine::new(p.clone(), 1);
        // Stop mid-loop, with a live call stack.
        for _ in 0..10 {
            m.step(0).unwrap();
        }
        (p, m.snapshot())
    }

    #[test]
    fn roundtrip_preserves_execution() {
        let (p, state) = sample_state();
        let mut bytes = Vec::new();
        state.write_to(&mut bytes).unwrap();
        let restored = MachineState::read_from(&mut bytes.as_slice()).unwrap();

        let mut a = Machine::from_snapshot(p.clone(), &state);
        let mut b = Machine::from_snapshot(p, &restored);
        a.run_to_completion(10_000).unwrap();
        b.run_to_completion(10_000).unwrap();
        assert_eq!(a.regs(0), b.regs(0));
        assert_eq!(a.global_retired(), b.global_retired());
        assert_eq!(a.mem().load(crate::Addr(0x40)), 99);
        assert_eq!(b.mem().load(crate::Addr(0x40)), 99);
    }

    #[test]
    fn encoded_len_matches_serialized_size() {
        let (_, state) = sample_state();
        let mut bytes = Vec::new();
        state.write_to(&mut bytes).unwrap();
        assert_eq!(state.encoded_len(), bytes.len());
    }

    #[test]
    fn serialization_is_deterministic() {
        let (_, state) = sample_state();
        let mut x = Vec::new();
        let mut y = Vec::new();
        state.write_to(&mut x).unwrap();
        state.write_to(&mut y).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = MachineState::read_from(&mut &b"XXXXrest"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_rejected() {
        let (_, state) = sample_state();
        let mut bytes = Vec::new();
        state.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(MachineState::read_from(&mut bytes.as_slice()).is_err());
    }
}
