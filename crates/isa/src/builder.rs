//! Program construction DSL.
//!
//! [`ProgramBuilder`] owns images under construction and a global label
//! table; [`CodeBuilder`] appends instructions to one image at a time.
//! Labels are program-global, so runtime code emitted into a library image
//! can be called from the main image and vice versa.
//!
//! ## Register conventions
//!
//! The builder reserves [`Reg::R31`] as an always-zero register: every entry
//! point it creates begins with `li r31, 0`, and generated control flow
//! (e.g. [`CodeBuilder::counted_loop`]) compares against it. Runtime code in
//! `lp-omp` additionally reserves `r24`–`r30`; application code should use
//! `r1`–`r23`.

use crate::addr::{Addr, ImageId, MemLayout, Pc};
use crate::image::{Image, ImageKind};
use crate::inst::{AluOp, Cond, FpuOp, Inst, Reg};
use crate::program::Program;
use std::collections::HashMap;

/// A forward-declarable code label.
///
/// Created with [`ProgramBuilder::new_label`] or [`CodeBuilder::new_label`],
/// bound with [`CodeBuilder::bind`], and usable as a branch/jump/call target
/// before or after binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

#[derive(Debug)]
struct ImageBuild {
    name: String,
    kind: ImageKind,
    insts: Vec<Inst>,
}

/// Builds a [`Program`]: images, labels, entry points, and initial data.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    images: Vec<ImageBuild>,
    main_image: Option<ImageId>,
    bound: Vec<Option<Pc>>,
    fixups: Vec<(Pc, Label)>,
    entry_main: Option<Label>,
    entry_worker: Option<Label>,
    init_data: Vec<(Addr, u64)>,
    symbols: HashMap<String, Label>,
    layout: MemLayout,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            images: Vec::new(),
            main_image: None,
            bound: Vec::new(),
            fixups: Vec::new(),
            entry_main: None,
            entry_worker: None,
            init_data: Vec::new(),
            symbols: HashMap::new(),
            layout: MemLayout::default(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.bound.len() as u32);
        self.bound.push(None);
        l
    }

    fn image_code(&mut self, id: ImageId, prologue_zero: bool) -> CodeBuilder<'_> {
        let mut cb = CodeBuilder {
            pb: self,
            image: id,
        };
        if prologue_zero {
            cb.li(Reg::R31, 0);
        }
        cb
    }

    /// Returns a code builder appending to the main image, creating the
    /// image on first use. The main entry defaults to the first instruction
    /// emitted here (a `li r31, 0` prologue the builder inserts).
    pub fn main_code(&mut self) -> CodeBuilder<'_> {
        let (id, fresh) = match self.main_image {
            Some(id) => (id, false),
            None => {
                let id = ImageId(self.images.len() as u16);
                self.images.push(ImageBuild {
                    name: "app".to_string(),
                    kind: ImageKind::Main,
                    insts: Vec::new(),
                });
                self.main_image = Some(id);
                (id, true)
            }
        };
        if fresh {
            let entry = self.new_label();
            let mut cb = CodeBuilder {
                pb: self,
                image: id,
            };
            cb.bind(entry);
            cb.pb.entry_main = Some(entry);
            cb.li(Reg::R31, 0);
            cb
        } else {
            self.image_code(id, false)
        }
    }

    /// Creates a library image and returns a code builder for it.
    ///
    /// Code in library images is spin-filtered by the LoopPoint profiler and
    /// its loop entries never become region boundaries.
    pub fn library_code(&mut self, name: impl Into<String>) -> CodeBuilder<'_> {
        let id = ImageId(self.images.len() as u16);
        self.images.push(ImageBuild {
            name: name.into(),
            kind: ImageKind::Library,
            insts: Vec::new(),
        });
        self.image_code(id, false)
    }

    /// Declares `label` as the worker-pool entry point.
    ///
    /// Worker threads of a [`crate::Machine`] begin execution here; the
    /// label must be bound by the time [`ProgramBuilder::finish`] is called.
    pub fn set_worker_entry(&mut self, label: Label) {
        self.entry_worker = Some(label);
    }

    /// Overrides the main-thread entry point.
    pub fn set_main_entry(&mut self, label: Label) {
        self.entry_main = Some(label);
    }

    /// Pre-initializes consecutive shared-memory words starting at `addr`.
    pub fn data(&mut self, addr: Addr, words: &[u64]) {
        for (i, &w) in words.iter().enumerate() {
            self.init_data.push((addr.word(i as u64), w));
        }
    }

    /// Pre-initializes consecutive shared-memory words with `f64` values.
    pub fn data_f64(&mut self, addr: Addr, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.init_data.push((addr.word(i as u64), v.to_bits()));
        }
    }

    /// Overrides the default address-space layout.
    pub fn set_layout(&mut self, layout: MemLayout) {
        self.layout = layout;
    }

    fn resolve(&self, label: Label) -> Pc {
        self.bound[label.0 as usize]
            .unwrap_or_else(|| panic!("label {:?} used but never bound", label))
    }

    /// Finalizes the program, patching all label references.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound, or if no main image
    /// was created.
    pub fn finish(mut self) -> Program {
        let fixups = std::mem::take(&mut self.fixups);
        for (slot, label) in fixups {
            let target = self.resolve(label);
            let inst = &mut self.images[slot.image.0 as usize].insts[slot.offset as usize];
            match inst {
                Inst::Branch { target: t, .. }
                | Inst::Jump { target: t }
                | Inst::Call { target: t } => *t = target,
                Inst::Li { imm, .. } => *imm = target.to_word() as i64,
                other => panic!("fixup on unsupported instruction {other:?}"),
            }
        }
        let entry_main = self
            .entry_main
            .map(|l| self.resolve(l))
            .expect("program has no main image / entry point");
        let entry_worker = self.entry_worker.map(|l| self.resolve(l));
        let symbols = self
            .symbols
            .iter()
            .map(|(name, &l)| (name.clone(), self.resolve(l)))
            .collect();
        let images = self
            .images
            .into_iter()
            .enumerate()
            .map(|(i, ib)| Image::new(ImageId(i as u16), ib.name, ib.kind, ib.insts))
            .collect();
        Program::from_parts(
            self.name,
            images,
            entry_main,
            entry_worker,
            self.layout,
            self.init_data,
            symbols,
        )
    }
}

/// Appends instructions to one image of a [`ProgramBuilder`].
#[derive(Debug)]
pub struct CodeBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    image: ImageId,
}

impl<'a> CodeBuilder<'a> {
    /// The PC of the next instruction slot.
    pub fn here(&self) -> Pc {
        Pc::new(
            self.image,
            self.pb.images[self.image.0 as usize].insts.len() as u32,
        )
    }

    /// Creates a fresh, unbound label (shared with the program builder).
    pub fn new_label(&mut self) -> Label {
        self.pb.new_label()
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.pb.bound[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(here);
    }

    /// Creates a label, binds it here, and exports it as a named symbol.
    pub fn export_label(&mut self, name: impl Into<String>) -> Label {
        let l = self.new_label();
        self.bind(l);
        self.pb.symbols.insert(name.into(), l);
        l
    }

    /// Emits a raw instruction, returning its PC.
    pub fn emit(&mut self, inst: Inst) -> Pc {
        let pc = self.here();
        self.pb.images[self.image.0 as usize].insts.push(inst);
        pc
    }

    fn emit_fixup(&mut self, inst: Inst, label: Label) -> Pc {
        let pc = self.emit(inst);
        self.pb.fixups.push((pc, label));
        pc
    }

    /// Finishes this code section (consumes the builder, releasing the
    /// borrow on the program builder).
    pub fn finish(self) {}

    // ---- plain instructions -------------------------------------------------

    /// Emits `nop`.
    pub fn nop(&mut self) -> Pc {
        self.emit(Inst::Nop)
    }

    /// Emits a spin-hint `pause`.
    pub fn pause(&mut self) -> Pc {
        self.emit(Inst::Pause)
    }

    /// Emits `halt`, terminating the executing thread.
    pub fn halt(&mut self) -> Pc {
        self.emit(Inst::Halt)
    }

    /// Emits `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> Pc {
        self.emit(Inst::Li { rd, imm })
    }

    /// Emits `rd = imm` with an `f64` immediate (stored as bits).
    pub fn lf(&mut self, rd: Reg, v: f64) -> Pc {
        self.emit(Inst::Li {
            rd,
            imm: v.to_bits() as i64,
        })
    }

    /// Emits `rd = ra op rb`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> Pc {
        self.emit(Inst::Alu { op, rd, ra, rb })
    }

    /// Emits `rd = ra + rb`.
    pub fn alu_add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> Pc {
        self.alu(AluOp::Add, rd, ra, rb)
    }

    /// Emits `rd = ra op imm`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: i64) -> Pc {
        self.emit(Inst::AluI { op, rd, ra, imm })
    }

    /// Emits `rd = ra + imm`.
    pub fn alui_add(&mut self, rd: Reg, ra: Reg, imm: i64) -> Pc {
        self.alui(AluOp::Add, rd, ra, imm)
    }

    /// Emits `rd = ra fpop rb`.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, ra: Reg, rb: Reg) -> Pc {
        self.emit(Inst::Fpu { op, rd, ra, rb })
    }

    /// Emits `rd = mem[base + off]`.
    pub fn load(&mut self, rd: Reg, base: Reg, off: i64) -> Pc {
        self.emit(Inst::Load { rd, base, off })
    }

    /// Emits `mem[base + off] = rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, off: i64) -> Pc {
        self.emit(Inst::Store { rs, base, off })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, ra: Reg, rb: Reg, label: Label) -> Pc {
        self.emit_fixup(
            Inst::Branch {
                cond,
                ra,
                rb,
                target: Pc::INVALID,
            },
            label,
        )
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> Pc {
        self.emit_fixup(
            Inst::Jump {
                target: Pc::INVALID,
            },
            label,
        )
    }

    /// Emits a call to `label` (may be in another image).
    pub fn call(&mut self, label: Label) -> Pc {
        self.emit_fixup(
            Inst::Call {
                target: Pc::INVALID,
            },
            label,
        )
    }

    /// Emits an indirect call through `ra` (holding a [`Pc::to_word`] value).
    pub fn call_ind(&mut self, ra: Reg) -> Pc {
        self.emit(Inst::CallInd { ra })
    }

    /// Emits `rd = address-of(label)` as a [`Pc::to_word`] encoding.
    ///
    /// The immediate is patched when the program is finished, so the label
    /// may still be unbound here.
    pub fn li_label(&mut self, rd: Reg, label: Label) -> Pc {
        self.emit_fixup(Inst::Li { rd, imm: 0 }, label)
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> Pc {
        self.emit(Inst::Ret)
    }

    /// Emits `rd = tid`.
    pub fn tid(&mut self, rd: Reg) -> Pc {
        self.emit(Inst::Tid { rd })
    }

    /// Emits an atomic fetch-add.
    pub fn atomic_add(&mut self, rd: Reg, base: Reg, off: i64, rs: Reg) -> Pc {
        self.emit(Inst::AtomicAdd { rd, base, off, rs })
    }

    /// Emits an atomic exchange.
    pub fn atomic_xchg(&mut self, rd: Reg, base: Reg, off: i64, rs: Reg) -> Pc {
        self.emit(Inst::AtomicXchg { rd, base, off, rs })
    }

    /// Emits an atomic compare-and-swap.
    pub fn atomic_cas(&mut self, rd: Reg, base: Reg, off: i64, expected: Reg, new: Reg) -> Pc {
        self.emit(Inst::AtomicCas {
            rd,
            base,
            off,
            expected,
            new,
        })
    }

    /// Emits a memory fence.
    pub fn fence(&mut self) -> Pc {
        self.emit(Inst::Fence)
    }

    /// Emits a futex wait on `mem[base+off] == expected`.
    pub fn futex_wait(&mut self, base: Reg, off: i64, expected: Reg) -> Pc {
        self.emit(Inst::FutexWait {
            base,
            off,
            expected,
        })
    }

    /// Emits a futex wake of up to `count` waiters on `mem[base+off]`.
    pub fn futex_wake(&mut self, base: Reg, off: i64, count: u32) -> Pc {
        self.emit(Inst::FutexWake { base, off, count })
    }

    // ---- structured control flow --------------------------------------------

    /// Emits a counted loop running `body` exactly `n` times.
    ///
    /// `counter` is clobbered (counts down from `n` to zero). The loop header
    /// — the first instruction of the body — is exported as symbol `name`
    /// and returned; it is the PC a LoopPoint region marker would use.
    pub fn counted_loop(
        &mut self,
        name: &str,
        counter: Reg,
        n: u64,
        body: impl FnOnce(&mut CodeBuilder<'_>),
    ) -> Pc {
        self.li(counter, n as i64);
        let exit = self.new_label();
        // Skip entirely when n == 0.
        self.branch(Cond::Eq, counter, Reg::R31, exit);
        let header_label = self.new_label();
        self.bind(header_label);
        let header = self.here();
        if !name.is_empty() {
            let l = self.export_label(name.to_string());
            debug_assert_eq!(self.pb.resolve(l), header);
        }
        body(self);
        self.alui(AluOp::Sub, counter, counter, 1);
        self.branch(Cond::Ne, counter, Reg::R31, header_label);
        self.bind(exit);
        header
    }

    /// Emits a loop whose trip count is taken from `counter` at run time
    /// (counts `counter` down to zero; body runs `counter` times).
    pub fn counted_loop_reg(
        &mut self,
        name: &str,
        counter: Reg,
        body: impl FnOnce(&mut CodeBuilder<'_>),
    ) -> Pc {
        let exit = self.new_label();
        self.branch(Cond::Eq, counter, Reg::R31, exit);
        let header_label = self.new_label();
        self.bind(header_label);
        let header = self.here();
        if !name.is_empty() {
            self.export_label(name.to_string());
        }
        body(self);
        self.alui(AluOp::Sub, counter, counter, 1);
        self.branch(Cond::Ne, counter, Reg::R31, header_label);
        self.bind(exit);
        header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        let fwd = c.new_label();
        c.jump(fwd);
        let back_pc = c.here();
        let back = c.new_label();
        c.bind(back);
        c.nop();
        c.bind(fwd);
        c.branch(Cond::Eq, Reg::R31, Reg::R31, back);
        c.halt();
        c.finish();
        let p = pb.finish();
        // jump at offset 1 (after prologue li) targets the branch slot.
        let jump = p.inst(Pc::new(ImageId(0), 1)).unwrap();
        match jump {
            Inst::Jump { target } => assert_eq!(target.offset, 3),
            other => panic!("expected jump, got {other:?}"),
        }
        let br = p.inst(Pc::new(ImageId(0), 3)).unwrap();
        match br {
            Inst::Branch { target, .. } => assert_eq!(*target, back_pc),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        let l = c.new_label();
        c.jump(l);
        c.finish();
        let _ = pb.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        let l = c.new_label();
        c.bind(l);
        c.bind(l);
    }

    #[test]
    fn library_images_are_marked() {
        let mut pb = ProgramBuilder::new("t");
        let mut lib = pb.library_code("libomp");
        let entry = lib.export_label("worker");
        lib.halt();
        lib.finish();
        pb.set_worker_entry(entry);
        let mut c = pb.main_code();
        c.halt();
        c.finish();
        let p = pb.finish();
        let w = p.entry_worker().unwrap();
        assert!(p.is_library_pc(w));
        assert!(!p.is_library_pc(p.entry_main()));
        assert_eq!(p.images().len(), 2);
    }

    #[test]
    fn data_words_are_laid_out_consecutively() {
        let mut pb = ProgramBuilder::new("t");
        pb.data(Addr(0x100), &[1, 2, 3]);
        pb.data_f64(Addr(0x200), &[1.5]);
        let mut c = pb.main_code();
        c.halt();
        c.finish();
        let p = pb.finish();
        assert_eq!(p.init_data()[0], (Addr(0x100), 1));
        assert_eq!(p.init_data()[1], (Addr(0x108), 2));
        assert_eq!(p.init_data()[2], (Addr(0x110), 3));
        assert_eq!(p.init_data()[3], (Addr(0x200), 1.5f64.to_bits()));
    }

    #[test]
    fn counted_loop_shape() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        let header = c.counted_loop("body", Reg::R1, 3, |c| {
            c.nop();
        });
        c.halt();
        c.finish();
        let p = pb.finish();
        assert_eq!(p.symbol("body"), Some(header));
        // The back edge targets the header.
        let mut back_edges = 0;
        for (pc, inst) in p.images()[0].iter() {
            if let Inst::Branch { target, .. } = inst {
                if *target == header && pc > header {
                    back_edges += 1;
                }
            }
        }
        assert_eq!(back_edges, 1);
    }
}
