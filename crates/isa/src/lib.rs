//! # lp-isa — abstract ISA, program images, and functional VM
//!
//! This crate is the foundation of the LoopPoint reproduction. It plays the
//! role that *program binaries plus Intel Pin* play in the original paper:
//! it defines a small register-machine instruction set, lays program code out
//! in [`Image`]s (a *main* executable image and *library* images, mirroring
//! the `binary` / `libiomp5.so` split the paper's spin-filtering heuristic
//! relies on), and executes programs functionally on a [`Machine`] that
//! reports every retired instruction to the caller — the same observation
//! stream a Pin tool sees.
//!
//! ## Address spaces
//!
//! Every instruction lives at a [`Pc`] (image id + instruction index) and
//! every memory access touches an [`Addr`] in a single flat, word-addressed
//! address space. The layout distinguishes *shared* addresses (low range)
//! from *per-thread private* addresses (high range, one stripe per thread);
//! see [`MemLayout`]. Shared accesses are what the pinball race log records.
//!
//! ## Threads
//!
//! A [`Machine`] is created with a fixed thread pool (mirroring an OpenMP
//! runtime's worker pool). Thread 0 runs the program's main entry; worker
//! threads run the worker entry (typically a parked dispatch loop emitted by
//! `lp-omp`). The machine itself has **no scheduler**: callers decide which
//! thread steps next, which is exactly how record/replay (constrained order),
//! flow-control profiling (equal progress), and timing-driven simulation
//! (unconstrained order) impose their different interleavings on one
//! functional core.
//!
//! ## Example
//!
//! ```
//! use lp_isa::{ProgramBuilder, Machine, Reg, StepResult};
//!
//! # fn main() -> Result<(), lp_isa::MachineError> {
//! let mut pb = ProgramBuilder::new("demo");
//! let mut code = pb.main_code();
//! // for i in 0..10 { sum += i }
//! code.li(Reg::R1, 0); // sum
//! code.li(Reg::R2, 0); // i
//! code.counted_loop("body", Reg::R3, 10, |c| {
//!     c.alu_add(Reg::R1, Reg::R1, Reg::R2);
//!     c.alui_add(Reg::R2, Reg::R2, 1);
//! });
//! code.halt();
//! code.finish();
//! let program = pb.finish();
//!
//! let mut machine = Machine::new(std::sync::Arc::new(program), 1);
//! while !machine.is_finished() {
//!     if let StepResult::Retired(_) = machine.step(0)? {}
//! }
//! assert_eq!(machine.regs(0)[Reg::R1], 45);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod builder;
mod disasm;
mod error;
mod fingerprint;
mod image;
mod inst;
mod machine;
mod mem;
mod program;
mod stateio;

pub use addr::{Addr, ImageId, Marker, MemLayout, Pc};
pub use builder::{CodeBuilder, Label, ProgramBuilder};
pub use disasm::{describe_marker, describe_pc};
pub use error::MachineError;
pub use image::{Image, ImageKind};
pub use inst::{AluOp, Cond, CtrlKind, FpuOp, Inst, InstClass, Reg, RegFile};
pub use machine::{CtrlEvent, Machine, MachineState, MemAccess, Retired, StepResult, ThreadState};
pub use mem::Memory;
pub use program::Program;
