//! Code images: the unit of code layout and of the spin-filtering heuristic.

use crate::addr::{ImageId, Pc};
use crate::inst::Inst;

/// Whether an image is the application's main executable or a library.
///
/// LoopPoint's synchronization filter (§IV-F of the paper) treats *all* code
/// in synchronization-library images as potential busy-waiting: such
/// instructions are executed but excluded from BBVs and filtered instruction
/// counts, and loop entries inside libraries are never region boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageKind {
    /// The main application binary; its loop entries may bound regions.
    Main,
    /// A library image (e.g. the OpenMP runtime); fully filtered.
    Library,
}

/// A loaded code image: a named, contiguous array of instructions.
#[derive(Debug, Clone)]
pub struct Image {
    id: ImageId,
    name: String,
    kind: ImageKind,
    insts: Vec<Inst>,
}

impl Image {
    /// Creates an image; normally done through [`crate::ProgramBuilder`].
    pub fn new(id: ImageId, name: impl Into<String>, kind: ImageKind, insts: Vec<Inst>) -> Self {
        Image {
            id,
            name: name.into(),
            kind,
            insts,
        }
    }

    /// The image's identifier.
    pub fn id(&self) -> ImageId {
        self.id
    }

    /// Human-readable image name (e.g. `"app"` or `"libomp"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is the main image or a library.
    pub fn kind(&self) -> ImageKind {
        self.kind
    }

    /// Number of instruction slots in the image.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `offset`, if in bounds.
    pub fn inst(&self, offset: u32) -> Option<&Inst> {
        self.insts.get(offset as usize)
    }

    /// All instructions with their PCs.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &Inst)> {
        let id = self.id;
        self.insts
            .iter()
            .enumerate()
            .map(move |(i, inst)| (Pc::new(id, i as u32), inst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_accessors() {
        let img = Image::new(
            ImageId(1),
            "app",
            ImageKind::Main,
            vec![Inst::Nop, Inst::Halt],
        );
        assert_eq!(img.id(), ImageId(1));
        assert_eq!(img.name(), "app");
        assert_eq!(img.kind(), ImageKind::Main);
        assert_eq!(img.len(), 2);
        assert!(!img.is_empty());
        assert_eq!(img.inst(0), Some(&Inst::Nop));
        assert_eq!(img.inst(1), Some(&Inst::Halt));
        assert_eq!(img.inst(2), None);
        let pcs: Vec<Pc> = img.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![Pc::new(ImageId(1), 0), Pc::new(ImageId(1), 1)]);
    }
}
