//! The functional multi-threaded virtual machine.
//!
//! A [`Machine`] executes a [`Program`] one instruction at a time on a fixed
//! pool of threads. It deliberately has **no scheduler**: the caller picks
//! which thread to step, so record/replay, flow-controlled profiling, and
//! timing-driven simulation can each impose their own interleaving. Every
//! retired instruction is returned as a [`Retired`] record — the observation
//! stream a Pin tool would see.

use crate::addr::{Addr, Pc};
use crate::error::MachineError;
use crate::inst::{CtrlKind, Inst, InstClass, Reg, RegFile};
use crate::mem::Memory;
use crate::program::Program;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Maximum call-stack depth per thread.
const CALL_STACK_LIMIT: usize = 1 << 16;

/// Scheduling state of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to execute.
    Running,
    /// Asleep on a futex word.
    Blocked {
        /// The futex address the thread sleeps on.
        addr: Addr,
    },
    /// Finished (executed `Halt`).
    Halted,
}

/// A memory access performed (or previewed) by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Word-aligned effective address.
    pub addr: Addr,
    /// Whether the access writes memory (atomics both read and write).
    pub write: bool,
    /// Whether the access is an atomic read-modify-write.
    pub atomic: bool,
    /// Whether the address lies in the shared region of the layout.
    pub shared: bool,
}

/// A control transfer performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlEvent {
    /// Kind of transfer (taken/not-taken conditional, jump, call, return).
    pub kind: CtrlKind,
    /// The PC control continued at.
    pub target: Pc,
}

/// Everything an observer needs to know about one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Executing thread.
    pub tid: usize,
    /// PC of the retired instruction.
    pub pc: Pc,
    /// The instruction itself (instructions are small and `Copy`).
    pub inst: Inst,
    /// Timing class.
    pub class: InstClass,
    /// PC the thread continues at ([`Pc::INVALID`] after `Halt`).
    pub next_pc: Pc,
    /// Memory access, if the instruction touched memory.
    pub mem: Option<MemAccess>,
    /// Control transfer, if the instruction redirected control.
    pub ctrl: Option<CtrlEvent>,
    /// Global retirement sequence number (total order over all threads).
    pub global_seq: u64,
}

/// Result of stepping one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// An instruction retired.
    Retired(Retired),
    /// The thread blocked on a futex (nothing retired; the futex
    /// instruction re-executes after wake-up).
    Blocked,
    /// The thread had already halted or was blocked; nothing happened.
    Idle,
}

#[derive(Debug, Clone)]
pub(crate) struct ThreadCtx {
    pub(crate) regs: RegFile,
    pub(crate) pc: Pc,
    pub(crate) state: ThreadState,
    pub(crate) call_stack: Vec<Pc>,
    pub(crate) retired: u64,
}

/// An opaque, restorable snapshot of a machine's full architectural state.
///
/// This is the in-memory equivalent of a pinball's register + memory files:
/// `lp-pinball` wraps it with the logs that make replay deterministic.
#[derive(Debug, Clone)]
pub struct MachineState {
    pub(crate) mem: Memory,
    pub(crate) threads: Vec<ThreadCtx>,
    pub(crate) futex_waiters: HashMap<u64, VecDeque<usize>>,
    pub(crate) global_seq: u64,
    pub(crate) live_threads: usize,
}

/// The functional VM. See the module-level docs for the execution model.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Arc<Program>,
    mem: Memory,
    threads: Vec<ThreadCtx>,
    futex_waiters: HashMap<u64, VecDeque<usize>>,
    global_seq: u64,
    live_threads: usize,
}

impl Machine {
    /// Creates a machine running `program` on a pool of `nthreads` threads.
    ///
    /// Thread 0 starts at the main entry; threads 1.. start at the worker
    /// entry. Initial data from the program is applied to memory.
    ///
    /// # Panics
    /// Panics if `nthreads > 1` but the program declares no worker entry,
    /// or if `nthreads == 0`.
    pub fn new(program: Arc<Program>, nthreads: usize) -> Self {
        assert!(nthreads > 0, "machine needs at least one thread");
        let worker = program.entry_worker();
        assert!(
            nthreads == 1 || worker.is_some(),
            "multi-threaded machine requires a worker entry point"
        );
        let mut mem = Memory::new();
        for &(addr, word) in program.init_data() {
            mem.store(addr, word);
        }
        let threads = (0..nthreads)
            .map(|tid| ThreadCtx {
                regs: RegFile::default(),
                pc: if tid == 0 {
                    program.entry_main()
                } else {
                    worker.expect("checked above")
                },
                state: ThreadState::Running,
                call_stack: Vec::new(),
                retired: 0,
            })
            .collect();
        Machine {
            program,
            mem,
            threads,
            futex_waiters: HashMap::new(),
            global_seq: 0,
            live_threads: nthreads,
        }
    }

    /// The program this machine executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Number of threads in the pool.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of threads that have not halted.
    pub fn live_threads(&self) -> usize {
        self.live_threads
    }

    /// Whether every thread has halted.
    pub fn is_finished(&self) -> bool {
        self.live_threads == 0
    }

    /// Whether live threads exist but none is runnable (futex deadlock).
    pub fn is_deadlocked(&self) -> bool {
        self.live_threads > 0 && !self.threads.iter().any(|t| t.state == ThreadState::Running)
    }

    /// The scheduling state of thread `tid`.
    pub fn thread_state(&self, tid: usize) -> ThreadState {
        self.threads[tid].state
    }

    /// Thread ids currently runnable.
    pub fn runnable_threads(&self) -> impl Iterator<Item = usize> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThreadState::Running)
            .map(|(tid, _)| tid)
    }

    /// Register file of thread `tid`.
    pub fn regs(&self, tid: usize) -> &RegFile {
        &self.threads[tid].regs
    }

    /// Mutable register file of thread `tid` (used by test harnesses).
    pub fn regs_mut(&mut self, tid: usize) -> &mut RegFile {
        &mut self.threads[tid].regs
    }

    /// Current PC of thread `tid`.
    pub fn pc(&self, tid: usize) -> Pc {
        self.threads[tid].pc
    }

    /// Instructions retired so far by thread `tid`.
    pub fn retired(&self, tid: usize) -> u64 {
        self.threads[tid].retired
    }

    /// Global retirement count across all threads.
    pub fn global_retired(&self) -> u64 {
        self.global_seq
    }

    /// Read-only view of memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable view of memory (used by test harnesses and loaders).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Takes a restorable snapshot of the full architectural state.
    pub fn snapshot(&self) -> MachineState {
        MachineState {
            mem: self.mem.clone(),
            threads: self.threads.clone(),
            futex_waiters: self.futex_waiters.clone(),
            global_seq: self.global_seq,
            live_threads: self.live_threads,
        }
    }

    /// Reconstructs a machine from a snapshot and the program it came from.
    pub fn from_snapshot(program: Arc<Program>, state: &MachineState) -> Self {
        Machine {
            program,
            mem: state.mem.clone(),
            threads: state.threads.clone(),
            futex_waiters: state.futex_waiters.clone(),
            global_seq: state.global_seq,
            live_threads: state.live_threads,
        }
    }

    fn effective_addr(&self, tid: usize, base: Reg, off: i64) -> Addr {
        Addr(self.threads[tid].regs[base].wrapping_add(off as u64)).align_word()
    }

    fn access(&self, tid: usize, base: Reg, off: i64, write: bool, atomic: bool) -> MemAccess {
        let addr = self.effective_addr(tid, base, off);
        MemAccess {
            addr,
            write,
            atomic,
            shared: self.program.layout().is_shared(addr),
        }
    }

    /// Previews the memory access the next instruction of `tid` would
    /// perform, without executing it. Returns `None` for non-memory
    /// instructions, blocked/halted threads, or invalid PCs.
    ///
    /// Constrained (pinball) replay uses this to decide whether a thread may
    /// proceed without violating the recorded shared-access order.
    pub fn preview_access(&self, tid: usize) -> Option<MemAccess> {
        let t = self.threads.get(tid)?;
        if t.state != ThreadState::Running {
            return None;
        }
        match *self.program.inst(t.pc)? {
            Inst::Load { base, off, .. } => Some(self.access(tid, base, off, false, false)),
            Inst::Store { base, off, .. } => Some(self.access(tid, base, off, true, false)),
            Inst::AtomicAdd { base, off, .. }
            | Inst::AtomicXchg { base, off, .. }
            | Inst::AtomicCas { base, off, .. } => Some(self.access(tid, base, off, true, true)),
            Inst::FutexWait { base, off, .. } => Some(self.access(tid, base, off, false, true)),
            Inst::FutexWake { base, off, .. } => Some(self.access(tid, base, off, false, true)),
            _ => None,
        }
    }

    /// Executes one instruction on thread `tid`.
    ///
    /// # Errors
    /// Returns [`MachineError`] for invalid thread ids, invalid PCs, and
    /// call-stack violations. Stepping a blocked or halted thread is not an
    /// error; it returns [`StepResult::Idle`].
    pub fn step(&mut self, tid: usize) -> Result<StepResult, MachineError> {
        if tid >= self.threads.len() {
            return Err(MachineError::BadThread {
                tid,
                nthreads: self.threads.len(),
            });
        }
        if self.threads[tid].state != ThreadState::Running {
            return Ok(StepResult::Idle);
        }
        let pc = self.threads[tid].pc;
        let inst = *self
            .program
            .inst(pc)
            .ok_or(MachineError::InvalidPc { tid, pc })?;

        let mut next_pc = pc.next();
        let mut mem_access: Option<MemAccess> = None;
        let mut ctrl: Option<CtrlEvent> = None;

        match inst {
            Inst::Nop | Inst::Pause | Inst::Fence => {}
            Inst::Halt => {
                self.threads[tid].state = ThreadState::Halted;
                self.live_threads -= 1;
                next_pc = Pc::INVALID;
            }
            Inst::Li { rd, imm } => {
                self.threads[tid].regs[rd] = imm as u64;
            }
            Inst::Alu { op, rd, ra, rb } => {
                let (a, b) = (self.threads[tid].regs[ra], self.threads[tid].regs[rb]);
                self.threads[tid].regs[rd] = op.apply(a, b);
            }
            Inst::AluI { op, rd, ra, imm } => {
                let a = self.threads[tid].regs[ra];
                self.threads[tid].regs[rd] = op.apply(a, imm as u64);
            }
            Inst::Fpu { op, rd, ra, rb } => {
                let (a, b) = (self.threads[tid].regs[ra], self.threads[tid].regs[rb]);
                self.threads[tid].regs[rd] = op.apply(a, b);
            }
            Inst::Load { rd, base, off } => {
                let acc = self.access(tid, base, off, false, false);
                self.threads[tid].regs[rd] = self.mem.load(acc.addr);
                mem_access = Some(acc);
            }
            Inst::Store { rs, base, off } => {
                let acc = self.access(tid, base, off, true, false);
                self.mem.store(acc.addr, self.threads[tid].regs[rs]);
                mem_access = Some(acc);
            }
            Inst::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                let (a, b) = (self.threads[tid].regs[ra], self.threads[tid].regs[rb]);
                let taken = cond.eval(a, b);
                if taken {
                    next_pc = target;
                }
                ctrl = Some(CtrlEvent {
                    kind: if taken {
                        CtrlKind::CondTaken
                    } else {
                        CtrlKind::CondNotTaken
                    },
                    target: next_pc,
                });
            }
            Inst::Jump { target } => {
                next_pc = target;
                ctrl = Some(CtrlEvent {
                    kind: CtrlKind::Jump,
                    target,
                });
            }
            Inst::Call { target } => {
                if self.threads[tid].call_stack.len() >= CALL_STACK_LIMIT {
                    return Err(MachineError::CallStackOverflow { tid, pc });
                }
                self.threads[tid].call_stack.push(pc.next());
                next_pc = target;
                ctrl = Some(CtrlEvent {
                    kind: CtrlKind::Call,
                    target,
                });
            }
            Inst::CallInd { ra } => {
                if self.threads[tid].call_stack.len() >= CALL_STACK_LIMIT {
                    return Err(MachineError::CallStackOverflow { tid, pc });
                }
                let target = Pc::from_word(self.threads[tid].regs[ra]);
                self.threads[tid].call_stack.push(pc.next());
                next_pc = target;
                ctrl = Some(CtrlEvent {
                    kind: CtrlKind::Call,
                    target,
                });
            }
            Inst::Ret => {
                let ret = self.threads[tid]
                    .call_stack
                    .pop()
                    .ok_or(MachineError::CallStackUnderflow { tid, pc })?;
                next_pc = ret;
                ctrl = Some(CtrlEvent {
                    kind: CtrlKind::Ret,
                    target: ret,
                });
            }
            Inst::Tid { rd } => {
                self.threads[tid].regs[rd] = tid as u64;
            }
            Inst::AtomicAdd { rd, base, off, rs } => {
                let acc = self.access(tid, base, off, true, true);
                let old = self.mem.load(acc.addr);
                let add = self.threads[tid].regs[rs];
                self.mem.store(acc.addr, old.wrapping_add(add));
                self.threads[tid].regs[rd] = old;
                mem_access = Some(acc);
            }
            Inst::AtomicXchg { rd, base, off, rs } => {
                let acc = self.access(tid, base, off, true, true);
                let old = self.mem.load(acc.addr);
                self.mem.store(acc.addr, self.threads[tid].regs[rs]);
                self.threads[tid].regs[rd] = old;
                mem_access = Some(acc);
            }
            Inst::AtomicCas {
                rd,
                base,
                off,
                expected,
                new,
            } => {
                let acc = self.access(tid, base, off, true, true);
                let old = self.mem.load(acc.addr);
                if old == self.threads[tid].regs[expected] {
                    self.mem.store(acc.addr, self.threads[tid].regs[new]);
                }
                self.threads[tid].regs[rd] = old;
                mem_access = Some(acc);
            }
            Inst::FutexWait {
                base,
                off,
                expected,
            } => {
                let acc = self.access(tid, base, off, false, true);
                if self.mem.load(acc.addr) == self.threads[tid].regs[expected] {
                    // Sleep; the instruction re-executes after wake-up.
                    self.threads[tid].state = ThreadState::Blocked { addr: acc.addr };
                    self.futex_waiters
                        .entry(acc.addr.0)
                        .or_default()
                        .push_back(tid);
                    return Ok(StepResult::Blocked);
                }
                mem_access = Some(acc);
            }
            Inst::FutexWake { base, off, count } => {
                let acc = self.access(tid, base, off, false, true);
                if let Some(q) = self.futex_waiters.get_mut(&acc.addr.0) {
                    for _ in 0..count {
                        match q.pop_front() {
                            Some(w) => self.threads[w].state = ThreadState::Running,
                            None => break,
                        }
                    }
                    if q.is_empty() {
                        self.futex_waiters.remove(&acc.addr.0);
                    }
                }
                mem_access = Some(acc);
            }
        }

        self.threads[tid].pc = next_pc;
        self.threads[tid].retired += 1;
        let seq = self.global_seq;
        self.global_seq += 1;

        Ok(StepResult::Retired(Retired {
            tid,
            pc,
            inst,
            class: inst.class(),
            next_pc,
            mem: mem_access,
            ctrl,
            global_seq: seq,
        }))
    }

    /// Runs a single-threaded machine to completion, returning the number of
    /// retired instructions.
    ///
    /// Convenience for tests and single-threaded workloads; multi-threaded
    /// execution needs a scheduler (see `lp-pinball` and `lp-sim`).
    ///
    /// # Errors
    /// Propagates the first [`MachineError`]; also errors on deadlock.
    pub fn run_to_completion(&mut self, max_steps: u64) -> Result<u64, MachineError> {
        let n = self.threads.len();
        let mut steps = 0;
        let mut tid = 0;
        while !self.is_finished() && steps < max_steps {
            // Rotate to the next runnable thread (fair round-robin, so
            // active spin loops cannot starve the thread they wait on).
            let start = tid;
            while self.threads[tid].state != ThreadState::Running {
                tid = (tid + 1) % n;
                if tid == start {
                    return Err(MachineError::Deadlock);
                }
            }
            self.step(tid)?;
            steps += 1;
            tid = (tid + 1) % n;
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{AluOp, Cond};

    fn run_main(pb: ProgramBuilder) -> Machine {
        let mut m = Machine::new(Arc::new(pb.finish()), 1);
        m.run_to_completion(1_000_000).unwrap();
        assert!(m.is_finished());
        m
    }

    #[test]
    fn arithmetic_program() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 6);
        c.li(Reg::R2, 7);
        c.alu(AluOp::Mul, Reg::R3, Reg::R1, Reg::R2);
        c.alui(AluOp::Add, Reg::R3, Reg::R3, 100);
        c.halt();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.regs(0)[Reg::R3], 142);
    }

    #[test]
    fn loads_and_stores() {
        let mut pb = ProgramBuilder::new("t");
        pb.data(Addr(0x100), &[11, 22]);
        let mut c = pb.main_code();
        c.li(Reg::R1, 0x100);
        c.load(Reg::R2, Reg::R1, 0);
        c.load(Reg::R3, Reg::R1, 8);
        c.alu_add(Reg::R4, Reg::R2, Reg::R3);
        c.store(Reg::R4, Reg::R1, 16);
        c.halt();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.mem().load(Addr(0x110)), 33);
    }

    #[test]
    fn loop_and_branch() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0);
        c.li(Reg::R2, 0);
        c.counted_loop("l", Reg::R3, 100, |c| {
            c.alu_add(Reg::R1, Reg::R1, Reg::R2);
            c.alui_add(Reg::R2, Reg::R2, 1);
        });
        c.halt();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.regs(0)[Reg::R1], 4950);
    }

    #[test]
    fn zero_trip_loop_skips_body() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0);
        c.counted_loop("l", Reg::R3, 0, |c| {
            c.alui_add(Reg::R1, Reg::R1, 1);
        });
        c.halt();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.regs(0)[Reg::R1], 0);
    }

    #[test]
    fn call_and_ret() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.new_label();
        let mut c = pb.main_code();
        c.li(Reg::R1, 10);
        c.call(f);
        c.call(f);
        c.halt();
        c.bind(f);
        c.alui_add(Reg::R1, Reg::R1, 5);
        c.ret();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.regs(0)[Reg::R1], 20);
    }

    #[test]
    fn ret_underflow_errors() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.ret();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), 1);
        m.step(0).unwrap(); // prologue li
        let err = m.step(0).unwrap_err();
        assert!(matches!(err, MachineError::CallStackUnderflow { .. }));
    }

    #[test]
    fn atomics() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0x40);
        c.li(Reg::R2, 5);
        c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2); // old=0, mem=5
        c.atomic_add(Reg::R4, Reg::R1, 0, Reg::R2); // old=5, mem=10
        c.li(Reg::R5, 10);
        c.li(Reg::R6, 99);
        c.atomic_cas(Reg::R7, Reg::R1, 0, Reg::R5, Reg::R6); // swaps, old=10
        c.atomic_xchg(Reg::R8, Reg::R1, 0, Reg::R2); // old=99, mem=5
        c.halt();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.regs(0)[Reg::R3], 0);
        assert_eq!(m.regs(0)[Reg::R4], 5);
        assert_eq!(m.regs(0)[Reg::R7], 10);
        assert_eq!(m.regs(0)[Reg::R8], 99);
        assert_eq!(m.mem().load(Addr(0x40)), 5);
    }

    #[test]
    fn cas_failure_leaves_memory() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0x40);
        c.li(Reg::R2, 7);
        c.store(Reg::R2, Reg::R1, 0);
        c.li(Reg::R5, 999); // wrong expected
        c.li(Reg::R6, 1);
        c.atomic_cas(Reg::R7, Reg::R1, 0, Reg::R5, Reg::R6);
        c.halt();
        c.finish();
        let m = run_main(pb);
        assert_eq!(m.regs(0)[Reg::R7], 7, "old value returned");
        assert_eq!(m.mem().load(Addr(0x40)), 7, "memory unchanged");
    }

    fn futex_pair_program() -> Arc<Program> {
        // Thread 0 stores 1 to the flag and wakes; worker waits on flag==0.
        let mut pb = ProgramBuilder::new("t");
        let mut lib = pb.library_code("librt");
        let worker = lib.export_label("worker");
        lib.li(Reg::R31, 0);
        lib.li(Reg::R1, 0x80);
        lib.li(Reg::R2, 0);
        lib.futex_wait(Reg::R1, 0, Reg::R2);
        lib.halt();
        lib.finish();
        let mut c = pb.main_code();
        c.li(Reg::R1, 0x80);
        c.li(Reg::R2, 1);
        c.store(Reg::R2, Reg::R1, 0);
        c.futex_wake(Reg::R1, 0, u32::MAX);
        c.halt();
        c.finish();
        pb.set_worker_entry(worker);
        Arc::new(pb.finish())
    }

    #[test]
    fn futex_block_and_wake() {
        let mut m = Machine::new(futex_pair_program(), 2);
        // Step worker until it blocks.
        loop {
            match m.step(1).unwrap() {
                StepResult::Blocked => break,
                StepResult::Retired(_) => {}
                StepResult::Idle => panic!("worker went idle unexpectedly"),
            }
        }
        assert!(matches!(m.thread_state(1), ThreadState::Blocked { .. }));
        assert!(!m.is_deadlocked()); // main still runnable
                                     // Main sets flag and wakes.
        while m.thread_state(0) == ThreadState::Running {
            m.step(0).unwrap();
        }
        assert_eq!(m.thread_state(1), ThreadState::Running);
        // Worker re-executes the wait, sees flag==1, falls through to halt.
        while m.thread_state(1) == ThreadState::Running {
            m.step(1).unwrap();
        }
        assert!(m.is_finished());
    }

    #[test]
    fn futex_no_block_when_value_differs() {
        let m = futex_pair_program();
        let mut mach = Machine::new(m, 2);
        // Pre-set flag so the worker never blocks.
        mach.mem_mut().store(Addr(0x80), 1);
        loop {
            match mach.step(1).unwrap() {
                StepResult::Retired(r) if r.inst == Inst::Halt => break,
                StepResult::Retired(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(mach.thread_state(1), ThreadState::Halted);
    }

    #[test]
    fn preview_access_matches_execution() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0x100);
        c.load(Reg::R2, Reg::R1, 8);
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), 1);
        m.step(0).unwrap(); // prologue
        m.step(0).unwrap(); // li
        let preview = m.preview_access(0).unwrap();
        assert_eq!(preview.addr, Addr(0x108));
        assert!(!preview.write);
        assert!(preview.shared);
        match m.step(0).unwrap() {
            StepResult::Retired(r) => assert_eq!(r.mem.unwrap().addr, preview.addr),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.li(Reg::R1, 1);
        c.li(Reg::R2, 0x40);
        c.store(Reg::R1, Reg::R2, 0);
        c.li(Reg::R3, 77);
        c.halt();
        c.finish();
        let prog = Arc::new(pb.finish());
        let mut m = Machine::new(prog.clone(), 1);
        m.step(0).unwrap();
        m.step(0).unwrap();
        m.step(0).unwrap();
        m.step(0).unwrap(); // store done
        let snap = m.snapshot();
        // Run original to completion.
        m.run_to_completion(100).unwrap();
        assert_eq!(m.regs(0)[Reg::R3], 77);
        // Restore and re-run: same result.
        let mut m2 = Machine::from_snapshot(prog, &snap);
        assert_eq!(m2.mem().load(Addr(0x40)), 1);
        m2.run_to_completion(100).unwrap();
        assert_eq!(m2.regs(0)[Reg::R3], 77);
        assert!(m2.is_finished());
    }

    #[test]
    fn retired_metadata() {
        let mut pb = ProgramBuilder::new("t");
        let l = pb.new_label();
        let mut c = pb.main_code();
        c.branch(Cond::Eq, Reg::R31, Reg::R31, l);
        c.nop();
        c.bind(l);
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), 1);
        m.step(0).unwrap(); // prologue
        match m.step(0).unwrap() {
            StepResult::Retired(r) => {
                let ev = r.ctrl.unwrap();
                assert_eq!(ev.kind, CtrlKind::CondTaken);
                assert_eq!(r.next_pc, ev.target);
                assert_eq!(r.class, InstClass::Branch);
                assert_eq!(r.global_seq, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indirect_call_through_register() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.new_label();
        let mut c = pb.main_code();
        c.li_label(Reg::R5, f);
        c.li(Reg::R1, 2);
        c.call_ind(Reg::R5);
        c.halt();
        c.bind(f);
        c.alui(AluOp::Mul, Reg::R1, Reg::R1, 21);
        c.ret();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), 1);
        m.run_to_completion(100).unwrap();
        assert_eq!(m.regs(0)[Reg::R1], 42);
    }

    #[test]
    fn pc_word_roundtrip() {
        use crate::addr::ImageId;
        let pc = Pc::new(ImageId(3), 0xdead);
        assert_eq!(Pc::from_word(pc.to_word()), pc);
    }

    #[test]
    fn bad_thread_id_errors() {
        let mut pb = ProgramBuilder::new("t");
        let mut c = pb.main_code();
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), 1);
        assert!(matches!(
            m.step(5),
            Err(MachineError::BadThread { tid: 5, .. })
        ));
    }
}
