//! The abstract instruction set.
//!
//! Instructions are compact, `Copy`, and carry concrete register operands so
//! timing models can extract dependence information without decoding state.

use crate::addr::Pc;
use std::fmt;
use std::ops::{Index, IndexMut};

/// An architectural integer register.
///
/// The machine has 32 general-purpose 64-bit registers. Floating-point
/// operations reinterpret register bits as `f64` (one register file keeps the
/// ISA small without losing the latency distinction, which lives in
/// [`InstClass`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// All registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg::from_index)
    }

    /// Register with the given index.
    ///
    /// # Panics
    /// Panics if `i >= Reg::COUNT`.
    pub fn from_index(i: u8) -> Reg {
        const TABLE: [Reg; Reg::COUNT] = [
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
            Reg::R14,
            Reg::R15,
            Reg::R16,
            Reg::R17,
            Reg::R18,
            Reg::R19,
            Reg::R20,
            Reg::R21,
            Reg::R22,
            Reg::R23,
            Reg::R24,
            Reg::R25,
            Reg::R26,
            Reg::R27,
            Reg::R28,
            Reg::R29,
            Reg::R30,
            Reg::R31,
        ];
        TABLE[i as usize]
    }

    /// Index of this register.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// An architectural register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile(pub [u64; Reg::COUNT]);

impl Default for RegFile {
    fn default() -> Self {
        RegFile([0; Reg::COUNT])
    }
}

impl Index<Reg> for RegFile {
    type Output = u64;
    fn index(&self, r: Reg) -> &u64 {
        &self.0[r.index()]
    }
}

impl IndexMut<Reg> for RegFile {
    fn index_mut(&mut self, r: Reg) -> &mut u64 {
        &mut self.0[r.index()]
    }
}

/// Integer ALU operations (register-register and register-immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Integer division; division by zero yields zero (documented semantics,
    /// no trap, keeping workload code branch-free around modular arithmetic).
    Div,
    /// Remainder; remainder by zero yields the dividend.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl AluOp {
    /// Applies the operation to two operand values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Floating-point operations over `f64` values stored as register bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpuOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Unary square root; the second operand is ignored.
    FSqrt,
    /// `rd = if fa < fb { 1 } else { 0 }` as an integer value.
    FCmpLt,
}

impl FpuOp {
    /// Applies the operation to two operands given as raw `f64` bits.
    pub fn apply(self, a_bits: u64, b_bits: u64) -> u64 {
        let a = f64::from_bits(a_bits);
        let b = f64::from_bits(b_bits);
        match self {
            FpuOp::FAdd => (a + b).to_bits(),
            FpuOp::FSub => (a - b).to_bits(),
            FpuOp::FMul => (a * b).to_bits(),
            FpuOp::FDiv => (a / b).to_bits(),
            FpuOp::FSqrt => a.abs().sqrt().to_bits(),
            FpuOp::FCmpLt => u64::from(a < b),
        }
    }
}

/// Branch comparison conditions over unsigned register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }
}

/// One instruction of the abstract ISA.
///
/// Control-flow targets are concrete [`Pc`]s; the [`crate::ProgramBuilder`]
/// patches label references before a [`crate::Program`] is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Spin-loop hint (cheap, like x86 `PAUSE`).
    Pause,
    /// Terminates the executing thread.
    Halt,
    /// `rd = imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value (sign-extended to 64 bits).
        imm: i64,
    },
    /// `rd = ra op rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = ra op imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `rd = ra fpop rb` over `f64` bit patterns.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = mem[ra + off]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        off: i64,
    },
    /// `mem[base + off] = rs`.
    Store {
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        off: i64,
    },
    /// Conditional direct branch: `if ra cond rb goto target`.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// First comparison operand.
        ra: Reg,
        /// Second comparison operand.
        rb: Reg,
        /// Branch target.
        target: Pc,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Direct call; pushes the return PC on the thread's call stack.
    Call {
        /// Callee entry PC.
        target: Pc,
    },
    /// Indirect call through a register holding a [`Pc::to_word`] encoding.
    CallInd {
        /// Register holding the encoded callee PC.
        ra: Reg,
    },
    /// Return to the PC on top of the call stack.
    Ret,
    /// `rd =` executing thread id.
    Tid {
        /// Destination register.
        rd: Reg,
    },
    /// Atomic fetch-add: `rd = mem[base+off]; mem[base+off] += rs`.
    AtomicAdd {
        /// Receives the old memory value.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Addend register.
        rs: Reg,
    },
    /// Atomic exchange: `rd = mem[base+off]; mem[base+off] = rs`.
    AtomicXchg {
        /// Receives the old memory value.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// New value register.
        rs: Reg,
    },
    /// Atomic compare-and-swap; `rd` receives the old value.
    AtomicCas {
        /// Receives the old memory value.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Expected value register.
        expected: Reg,
        /// Replacement value register.
        new: Reg,
    },
    /// Memory fence (ordering only; a timing event, not a functional one).
    Fence,
    /// Block if `mem[base+off] == expected` (futex-style sleep).
    ///
    /// On wake-up the instruction re-executes, mirroring the kernel/user
    /// futex retry loop. If the value differs the instruction retires
    /// immediately without blocking.
    FutexWait {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Register holding the expected value.
        expected: Reg,
    },
    /// Wake up to `count` threads blocked on `mem[base+off]`.
    FutexWake {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Maximum number of threads to wake.
        count: u32,
    },
}

/// Timing class of an instruction, consumed by core models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum InstClass {
    IntAlu,
    IntMul,
    IntDiv,
    Fp,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    Call,
    Ret,
    Atomic,
    Fence,
    Pause,
    Futex,
    Other,
}

/// Kind of control transfer a retired instruction performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Conditional branch, taken.
    CondTaken,
    /// Conditional branch, not taken.
    CondNotTaken,
    /// Unconditional direct jump.
    Jump,
    /// Direct call.
    Call,
    /// Return.
    Ret,
}

impl Inst {
    /// Timing class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Nop | Inst::Li { .. } | Inst::Tid { .. } => InstClass::IntAlu,
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
                AluOp::Mul => InstClass::IntMul,
                AluOp::Div | AluOp::Rem => InstClass::IntDiv,
                _ => InstClass::IntAlu,
            },
            Inst::Fpu { op, .. } => match op {
                FpuOp::FDiv | FpuOp::FSqrt => InstClass::FpDiv,
                _ => InstClass::Fp,
            },
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Jump { .. } => InstClass::Jump,
            Inst::Call { .. } | Inst::CallInd { .. } => InstClass::Call,
            Inst::Ret => InstClass::Ret,
            Inst::AtomicAdd { .. } | Inst::AtomicXchg { .. } | Inst::AtomicCas { .. } => {
                InstClass::Atomic
            }
            Inst::Fence => InstClass::Fence,
            Inst::Pause => InstClass::Pause,
            Inst::FutexWait { .. } | Inst::FutexWake { .. } => InstClass::Futex,
            Inst::Halt => InstClass::Other,
        }
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret
        )
    }

    /// Whether this instruction reads or writes memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::AtomicAdd { .. }
                | Inst::AtomicXchg { .. }
                | Inst::AtomicCas { .. }
                | Inst::FutexWait { .. }
                | Inst::FutexWake { .. }
        )
    }

    /// Source registers read by this instruction (up to three).
    pub fn srcs(&self) -> [Option<Reg>; 3] {
        match *self {
            Inst::Alu { ra, rb, .. } | Inst::Fpu { ra, rb, .. } => [Some(ra), Some(rb), None],
            Inst::AluI { ra, .. } => [Some(ra), None, None],
            Inst::Load { base, .. } => [Some(base), None, None],
            Inst::Store { rs, base, .. } => [Some(rs), Some(base), None],
            Inst::Branch { ra, rb, .. } => [Some(ra), Some(rb), None],
            Inst::AtomicAdd { base, rs, .. } | Inst::AtomicXchg { base, rs, .. } => {
                [Some(base), Some(rs), None]
            }
            Inst::AtomicCas {
                base,
                expected,
                new,
                ..
            } => [Some(base), Some(expected), Some(new)],
            Inst::FutexWait { base, expected, .. } => [Some(base), Some(expected), None],
            Inst::FutexWake { base, .. } => [Some(base), None, None],
            Inst::CallInd { ra } => [Some(ra), None, None],
            _ => [None, None, None],
        }
    }

    /// Destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Inst::Li { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Fpu { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Tid { rd }
            | Inst::AtomicAdd { rd, .. }
            | Inst::AtomicXchg { rd, .. }
            | Inst::AtomicCas { rd, .. } => Some(rd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX);
        assert_eq!(AluOp::Mul.apply(6, 7), 42);
        assert_eq!(AluOp::Div.apply(42, 6), 7);
        assert_eq!(AluOp::Div.apply(42, 0), 0);
        assert_eq!(AluOp::Rem.apply(43, 6), 1);
        assert_eq!(AluOp::Rem.apply(43, 0), 43);
        assert_eq!(
            AluOp::Shl.apply(1, 65),
            2,
            "shift amount is masked to 6 bits"
        );
        assert_eq!(AluOp::Shr.apply(8, 2), 2);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn fpu_semantics() {
        let a = 2.0f64.to_bits();
        let b = 8.0f64.to_bits();
        assert_eq!(f64::from_bits(FpuOp::FAdd.apply(a, b)), 10.0);
        assert_eq!(f64::from_bits(FpuOp::FMul.apply(a, b)), 16.0);
        assert_eq!(f64::from_bits(FpuOp::FDiv.apply(b, a)), 4.0);
        assert_eq!(
            f64::from_bits(FpuOp::FSqrt.apply((16.0f64).to_bits(), 0)),
            4.0
        );
        assert_eq!(FpuOp::FCmpLt.apply(a, b), 1);
        assert_eq!(FpuOp::FCmpLt.apply(b, a), 0);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval(5, 6));
        assert!(Cond::Ge.eval(6, 6));
        assert!(Cond::Le.eval(6, 6));
        assert!(Cond::Gt.eval(7, 6));
        assert!(!Cond::Gt.eval(6, 6));
    }

    #[test]
    fn classes_and_operands() {
        let i = Inst::Alu {
            op: AluOp::Mul,
            rd: Reg::R1,
            ra: Reg::R2,
            rb: Reg::R3,
        };
        assert_eq!(i.class(), InstClass::IntMul);
        assert_eq!(i.dst(), Some(Reg::R1));
        assert_eq!(i.srcs(), [Some(Reg::R2), Some(Reg::R3), None]);
        assert!(!i.is_control());
        assert!(!i.is_mem());

        let b = Inst::Branch {
            cond: Cond::Eq,
            ra: Reg::R0,
            rb: Reg::R0,
            target: Pc::INVALID,
        };
        assert!(b.is_control());
        assert_eq!(b.class(), InstClass::Branch);

        let l = Inst::Load {
            rd: Reg::R4,
            base: Reg::R5,
            off: 8,
        };
        assert!(l.is_mem());
        assert_eq!(l.class(), InstClass::Load);

        let cas = Inst::AtomicCas {
            rd: Reg::R1,
            base: Reg::R2,
            off: 0,
            expected: Reg::R3,
            new: Reg::R4,
        };
        assert_eq!(cas.class(), InstClass::Atomic);
        assert_eq!(cas.srcs(), [Some(Reg::R2), Some(Reg::R3), Some(Reg::R4)]);
        assert!(cas.is_mem());
    }

    #[test]
    fn regfile_indexing() {
        let mut rf = RegFile::default();
        rf[Reg::R7] = 99;
        assert_eq!(rf[Reg::R7], 99);
        assert_eq!(rf[Reg::R0], 0);
        assert_eq!(Reg::all().count(), Reg::COUNT);
        assert_eq!(Reg::from_index(31), Reg::R31);
    }
}
