//! Sparse, paged simulated memory.

use crate::addr::Addr;
use std::collections::HashMap;

const PAGE_WORDS: usize = 512; // 4 KiB pages of 8-byte words
const PAGE_SHIFT: u64 = 12;
const OFF_MASK: u64 = (1 << PAGE_SHIFT) - 1;

/// A flat 64-bit word-addressed memory, allocated lazily in 4 KiB pages.
///
/// Uninitialized words read as zero, matching anonymous-mapping semantics.
/// Cloning a `Memory` clones only the touched pages, which is what makes
/// pinball snapshots cheap.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl Memory {
    /// Iterates over resident pages as `(page index, words)` (for state
    /// serialization).
    pub(crate) fn iter_pages(&self) -> impl Iterator<Item = (u64, &[u64; PAGE_WORDS])> {
        self.pages.iter().map(|(&k, v)| (k, v.as_ref()))
    }

    /// Installs a page wholesale (for state deserialization).
    pub(crate) fn insert_page(&mut self, index: u64, words: Box<[u64; PAGE_WORDS]>) {
        self.pages.insert(index, words);
    }
}

/// Number of 8-byte words per memory page (exposed to state I/O).
pub(crate) const MEM_PAGE_WORDS: usize = PAGE_WORDS;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr` (aligned down to a word boundary).
    pub fn load(&self, addr: Addr) -> u64 {
        let a = addr.align_word().0;
        match self.pages.get(&(a >> PAGE_SHIFT)) {
            Some(page) => page[((a & OFF_MASK) / Addr::WORD) as usize],
            None => 0,
        }
    }

    /// Writes the word at `addr` (aligned down to a word boundary).
    pub fn store(&mut self, addr: Addr, value: u64) {
        let a = addr.align_word().0;
        let page = self
            .pages
            .entry(a >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]));
        page[((a & OFF_MASK) / Addr::WORD) as usize] = value;
    }

    /// Reads the word at `addr` as an `f64`.
    pub fn load_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.load(addr))
    }

    /// Writes an `f64` word at `addr`.
    pub fn store_f64(&mut self, addr: Addr, value: f64) {
        self.store(addr, value.to_bits());
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.pages.len() * PAGE_WORDS * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_roundtrip() {
        let mut m = Memory::new();
        assert_eq!(m.load(Addr(0x1234_5678)), 0);
        m.store(Addr(0x1000), 42);
        assert_eq!(m.load(Addr(0x1000)), 42);
        // Misaligned accesses hit the containing word.
        assert_eq!(m.load(Addr(0x1003)), 42);
        m.store(Addr(0x1007), 7);
        assert_eq!(m.load(Addr(0x1000)), 7);
    }

    #[test]
    fn pages_are_sparse() {
        let mut m = Memory::new();
        m.store(Addr(0), 1);
        m.store(Addr(1 << 40), 2);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.footprint_bytes(), 2 * 4096);
        assert_eq!(m.load(Addr(0)), 1);
        assert_eq!(m.load(Addr(1 << 40)), 2);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new();
        m.store_f64(Addr(64), 3.25);
        assert_eq!(m.load_f64(Addr(64)), 3.25);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.store(Addr(8), 5);
        let mut b = a.clone();
        b.store(Addr(8), 9);
        assert_eq!(a.load(Addr(8)), 5);
        assert_eq!(b.load(Addr(8)), 9);
    }
}
