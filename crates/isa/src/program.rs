//! A complete executable program: images, entry points, and initial data.

use crate::addr::{Addr, ImageId, MemLayout, Pc};
use crate::image::{Image, ImageKind};
use crate::inst::Inst;
use std::collections::HashMap;

/// An executable program produced by [`crate::ProgramBuilder`].
///
/// A program bundles its code [`Image`]s, a main entry point, an optional
/// worker entry point (the parked dispatch loop that the `lp-omp` runtime
/// emits for its thread pool), the address-space [`MemLayout`], initial data
/// for shared memory, and a symbol table for diagnostics.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    images: Vec<Image>,
    entry_main: Pc,
    entry_worker: Option<Pc>,
    layout: MemLayout,
    init_data: Vec<(Addr, u64)>,
    symbols: HashMap<String, Pc>,
}

impl Program {
    /// Assembles a program from parts; normally done by the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        images: Vec<Image>,
        entry_main: Pc,
        entry_worker: Option<Pc>,
        layout: MemLayout,
        init_data: Vec<(Addr, u64)>,
        symbols: HashMap<String, Pc>,
    ) -> Self {
        Program {
            name,
            images,
            entry_main,
            entry_worker,
            layout,
            init_data,
            symbols,
        }
    }

    /// The program's name (used in reports and pinball metadata).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All code images.
    pub fn images(&self) -> &[Image] {
        &self.images
    }

    /// Looks up an image by id.
    pub fn image(&self, id: ImageId) -> Option<&Image> {
        self.images.get(id.0 as usize)
    }

    /// Fetches the instruction at `pc`.
    pub fn inst(&self, pc: Pc) -> Option<&Inst> {
        self.image(pc.image)?.inst(pc.offset)
    }

    /// Whether `pc` lies in a library image (and is thus spin-filtered).
    ///
    /// PCs naming no image are reported as library so malformed markers can
    /// never become region boundaries.
    pub fn is_library_pc(&self, pc: Pc) -> bool {
        match self.image(pc.image) {
            Some(img) => img.kind() == ImageKind::Library,
            None => true,
        }
    }

    /// Entry PC for the main thread.
    pub fn entry_main(&self) -> Pc {
        self.entry_main
    }

    /// Entry PC for pool worker threads, if the program has one.
    pub fn entry_worker(&self) -> Option<Pc> {
        self.entry_worker
    }

    /// The address-space layout.
    pub fn layout(&self) -> MemLayout {
        self.layout
    }

    /// Initial shared-memory contents as `(address, word)` pairs.
    pub fn init_data(&self) -> &[(Addr, u64)] {
        &self.init_data
    }

    /// Resolves a symbol (label exported by the builder) to its PC.
    pub fn symbol(&self, name: &str) -> Option<Pc> {
        self.symbols.get(name).copied()
    }

    /// Iterates all exported symbols in unspecified order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Pc)> {
        self.symbols.iter().map(|(n, &pc)| (n.as_str(), pc))
    }

    /// Finds the innermost symbol at or before `pc` in the same image,
    /// formatted as `sym+delta`. Purely for human-readable reports.
    pub fn symbolize(&self, pc: Pc) -> String {
        let best = self
            .symbols
            .iter()
            .filter(|(_, &s)| s.image == pc.image && s.offset <= pc.offset)
            .max_by_key(|(_, &s)| s.offset);
        match best {
            Some((name, &s)) if s.offset == pc.offset => name.clone(),
            Some((name, &s)) => format!("{}+{}", name, pc.offset - s.offset),
            None => pc.to_string(),
        }
    }

    /// Total instruction slots across all images.
    pub fn code_size(&self) -> usize {
        self.images.iter().map(Image::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Reg;

    fn tiny_program() -> Program {
        let mut pb = ProgramBuilder::new("tiny");
        let mut c = pb.main_code();
        c.export_label("start");
        c.li(Reg::R1, 1);
        c.export_label("mid");
        c.nop();
        c.halt();
        c.finish();
        pb.finish()
    }

    #[test]
    fn symbols_and_fetch() {
        let p = tiny_program();
        let start = p.symbol("start").unwrap();
        // Entry precedes `start` by the builder's `li r31, 0` prologue.
        assert_eq!(p.entry_main().next(), start);
        assert!(p.inst(start).is_some());
        assert_eq!(p.symbolize(start), "start");
        let mid = p.symbol("mid").unwrap();
        assert_eq!(p.symbolize(mid), "mid");
        assert_eq!(p.symbolize(mid.next()), "mid+1");
        assert!(p.symbol("nope").is_none());
    }

    #[test]
    fn library_pc_classification() {
        let p = tiny_program();
        assert!(!p.is_library_pc(p.entry_main()));
        assert!(p.is_library_pc(Pc::INVALID), "unknown images are filtered");
    }

    #[test]
    fn code_size_counts_all_images() {
        let p = tiny_program();
        // prologue li + li + nop + halt
        assert_eq!(p.code_size(), 4);
    }
}
