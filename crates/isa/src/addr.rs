//! Program-counter and memory-address newtypes plus the address-space layout.

use std::fmt;

/// Identifier of a code image (the main executable or a library).
///
/// Mirrors the role of a loaded module in a real process: the LoopPoint
/// spin-filtering heuristic keys off whether a PC belongs to the main image
/// or to a synchronization library image (`libiomp5.so` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ImageId(pub u16);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img{}", self.0)
    }
}

/// A program counter: an instruction slot within an image.
///
/// `offset` is an instruction index, not a byte offset; the abstract ISA has
/// fixed-slot instructions. `Pc` is `Copy`, ordered, and hashable so it can
/// key DCFG nodes, BBV dimensions, and `(PC, count)` region markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc {
    /// Image this PC belongs to.
    pub image: ImageId,
    /// Instruction index within the image.
    pub offset: u32,
}

impl Pc {
    /// A sentinel PC that never names a real instruction.
    pub const INVALID: Pc = Pc {
        image: ImageId(u16::MAX),
        offset: u32::MAX,
    };

    /// Creates a PC from an image id and instruction index.
    pub fn new(image: ImageId, offset: u32) -> Self {
        Pc { image, offset }
    }

    /// The PC of the next sequential instruction slot.
    #[must_use]
    pub fn next(self) -> Self {
        Pc {
            image: self.image,
            offset: self.offset + 1,
        }
    }

    /// Whether this PC is the [`Pc::INVALID`] sentinel.
    pub fn is_invalid(self) -> bool {
        self == Pc::INVALID
    }

    /// Encodes this PC as a 64-bit word (a "function pointer" value usable
    /// by [`crate::Inst::CallInd`]).
    pub fn to_word(self) -> u64 {
        (u64::from(self.image.0) << 32) | u64::from(self.offset)
    }

    /// Decodes a PC from its [`Pc::to_word`] encoding.
    pub fn from_word(word: u64) -> Self {
        Pc {
            image: ImageId((word >> 32) as u16),
            offset: word as u32,
        }
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.image, self.offset)
    }
}

/// A `(PC, count)` execution point: the `count`-th global execution of the
/// instruction at `pc`.
///
/// LoopPoint region boundaries are markers at main-image loop entries
/// (§III-C of the paper); counts are global (all-thread) execution counts,
/// which makes markers valid even in the presence of spin-loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Marker {
    /// Marker instruction address.
    pub pc: Pc,
    /// Global execution count of `pc` at the boundary (1-based).
    pub count: u64,
}

impl Marker {
    /// Creates a marker.
    pub fn new(pc: Pc, count: u64) -> Self {
        Marker { pc, count }
    }
}

impl fmt::Display for Marker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.pc, self.count)
    }
}

/// A byte address in the flat simulated address space.
///
/// All memory accesses are 8-byte words; the machine aligns addresses down to
/// a word boundary. Arithmetic helpers keep workload generators readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Word size in bytes for every memory access.
    pub const WORD: u64 = 8;

    /// The address of the `i`-th word after `self`.
    #[must_use]
    pub fn word(self, i: u64) -> Addr {
        Addr(self.0 + i * Self::WORD)
    }

    /// Aligns the address down to a word boundary.
    #[must_use]
    pub fn align_word(self) -> Addr {
        Addr(self.0 & !(Self::WORD - 1))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// The address-space layout: a shared low range and per-thread private
/// stripes in the high range.
///
/// The pinball recorder only logs accesses to the *shared* range (PinPlay
/// likewise records only shared-memory dependencies), and the coherence model
/// in `lp-uarch` can skip invalidation traffic for private stripes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// First address of the private region.
    pub private_base: u64,
    /// Size in bytes of each per-thread private stripe.
    pub private_stride: u64,
}

impl Default for MemLayout {
    fn default() -> Self {
        MemLayout {
            private_base: 1 << 40,
            private_stride: 1 << 32,
        }
    }
}

impl MemLayout {
    /// Returns the owning thread if `addr` falls in a private stripe.
    pub fn private_owner(&self, addr: Addr) -> Option<usize> {
        if addr.0 >= self.private_base {
            Some(((addr.0 - self.private_base) / self.private_stride) as usize)
        } else {
            None
        }
    }

    /// Whether `addr` lies in the shared region.
    pub fn is_shared(&self, addr: Addr) -> bool {
        addr.0 < self.private_base
    }

    /// Base address of thread `tid`'s private stripe.
    pub fn private_for(&self, tid: usize) -> Addr {
        Addr(self.private_base + tid as u64 * self.private_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_ordering_and_next() {
        let a = Pc::new(ImageId(0), 5);
        let b = a.next();
        assert!(a < b);
        assert_eq!(b.offset, 6);
        assert_eq!(b.image, ImageId(0));
        assert!(Pc::INVALID.is_invalid());
        assert!(!a.is_invalid());
    }

    #[test]
    fn addr_word_arithmetic() {
        let a = Addr(0x1000);
        assert_eq!(a.word(3), Addr(0x1018));
        assert_eq!(Addr(0x1007).align_word(), Addr(0x1000));
        assert_eq!(Addr(0x1008).align_word(), Addr(0x1008));
    }

    #[test]
    fn layout_classifies_shared_and_private() {
        let l = MemLayout::default();
        assert!(l.is_shared(Addr(0)));
        assert!(l.is_shared(Addr((1 << 40) - 8)));
        assert_eq!(l.private_owner(Addr(1 << 40)), Some(0));
        assert_eq!(l.private_owner(l.private_for(3)), Some(3));
        assert_eq!(l.private_owner(Addr(42)), None);
        assert!(!l.is_shared(l.private_for(0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pc::new(ImageId(2), 16).to_string(), "img2:0x10");
        assert_eq!(Addr(255).to_string(), "0xff");
    }
}
