//! Error type for functional execution.

use crate::addr::Pc;
use std::error::Error;
use std::fmt;

/// Errors raised by [`crate::Machine`] execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A thread fetched from a PC that names no instruction.
    InvalidPc {
        /// The faulting thread.
        tid: usize,
        /// The invalid PC.
        pc: Pc,
    },
    /// `Ret` executed with an empty call stack.
    CallStackUnderflow {
        /// The faulting thread.
        tid: usize,
        /// PC of the offending `Ret`.
        pc: Pc,
    },
    /// The per-thread call stack exceeded its depth limit.
    CallStackOverflow {
        /// The faulting thread.
        tid: usize,
        /// PC of the offending `Call`.
        pc: Pc,
    },
    /// A thread id outside the machine's thread pool was referenced.
    BadThread {
        /// The out-of-range thread id.
        tid: usize,
        /// Number of threads in the pool.
        nthreads: usize,
    },
    /// Live threads exist but all are blocked (futex deadlock).
    Deadlock,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidPc { tid, pc } => {
                write!(f, "thread {tid} fetched invalid pc {pc}")
            }
            MachineError::CallStackUnderflow { tid, pc } => {
                write!(f, "thread {tid} returned with empty call stack at {pc}")
            }
            MachineError::CallStackOverflow { tid, pc } => {
                write!(f, "thread {tid} overflowed call stack at {pc}")
            }
            MachineError::BadThread { tid, nthreads } => {
                write!(f, "thread id {tid} out of range (pool of {nthreads})")
            }
            MachineError::Deadlock => write!(f, "all live threads are blocked"),
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ImageId, Pc};

    #[test]
    fn display_messages() {
        let e = MachineError::InvalidPc {
            tid: 2,
            pc: Pc::new(ImageId(0), 7),
        };
        assert_eq!(e.to_string(), "thread 2 fetched invalid pc img0:0x7");
        let e = MachineError::BadThread {
            tid: 9,
            nthreads: 8,
        };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MachineError>();
    }
}
