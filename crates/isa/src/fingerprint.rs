//! Canonical program bytes for content addressing.
//!
//! The artifact store keys cached analyses by *what was analyzed*: the
//! exact program image, entry points, layout, and initial data. This module
//! renders a [`Program`] into a single deterministic byte string — same
//! program, same bytes, on every run and platform — that callers hash
//! (`lp-store`'s 128-bit digest) into a store key.
//!
//! The encoding is write-only by design. It is **not** a serialization
//! format for loading programs (images carry closures-free plain data, but
//! a program is always rebuilt by `ProgramBuilder`/`lp-omp`); it only needs
//! to be injective and stable. Instructions are rendered through their
//! derived `Debug` form, which spells out every operand of every variant —
//! two different instruction streams cannot collide, and a new variant is
//! automatically covered.

use crate::inst::Inst;
use crate::program::Program;

/// Format tag bumped whenever the canonical rendering changes shape, so
/// stale store keys can never alias fresh ones.
const CANON_VERSION: u32 = 1;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_inst(out: &mut Vec<u8>, inst: &Inst) {
    // Derived Debug is deterministic and spells every field; length-prefix
    // it so adjacent instructions cannot re-segment into a collision.
    put_str(out, &format!("{inst:?}"));
}

impl Program {
    /// Deterministic canonical byte rendering of the whole program:
    /// name, every image (id, name, kind, instruction stream), entry
    /// points, memory layout, initial data, and the sorted symbol table.
    ///
    /// Equal programs produce equal bytes; any semantic difference —
    /// one instruction operand, one symbol, one init word — changes them.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 * self.code_size() + 256);
        out.extend_from_slice(b"LPPF");
        out.extend_from_slice(&CANON_VERSION.to_le_bytes());
        put_str(&mut out, self.name());

        put_u64(&mut out, self.images().len() as u64);
        for img in self.images() {
            put_u64(&mut out, u64::from(img.id().0));
            put_str(&mut out, img.name());
            put_str(&mut out, &format!("{:?}", img.kind()));
            put_u64(&mut out, img.len() as u64);
            for (_, inst) in img.iter() {
                put_inst(&mut out, inst);
            }
        }

        put_u64(&mut out, self.entry_main().to_word());
        match self.entry_worker() {
            Some(pc) => {
                out.push(1);
                put_u64(&mut out, pc.to_word());
            }
            None => out.push(0),
        }

        let layout = self.layout();
        put_u64(&mut out, layout.private_base);
        put_u64(&mut out, layout.private_stride);

        // Init data in builder order (the order is semantically inert —
        // addresses are distinct — but keeping it avoids a sort and still
        // yields identical bytes for identically-built programs).
        put_u64(&mut out, self.init_data().len() as u64);
        for (addr, word) in self.init_data() {
            put_u64(&mut out, addr.0);
            put_u64(&mut out, *word);
        }

        // Symbols sorted by name: the builder stores them in a HashMap.
        let mut syms: Vec<(&str, u64)> = self
            .symbols()
            .map(|(name, pc)| (name, pc.to_word()))
            .collect();
        syms.sort_unstable();
        put_u64(&mut out, syms.len() as u64);
        for (name, word) in syms {
            put_str(&mut out, name);
            put_u64(&mut out, word);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProgramBuilder, Reg};

    fn build(name: &str, imm: i64, extra_sym: bool) -> crate::Program {
        let mut pb = ProgramBuilder::new(name);
        let mut c = pb.main_code();
        c.export_label("start");
        c.li(Reg::R1, imm);
        if extra_sym {
            c.export_label("extra");
        }
        c.nop();
        c.halt();
        c.finish();
        pb.finish()
    }

    #[test]
    fn identical_builds_share_bytes() {
        let a = build("p", 7, false).canonical_bytes();
        let b = build("p", 7, false).canonical_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn any_semantic_difference_changes_bytes() {
        let base = build("p", 7, false).canonical_bytes();
        assert_ne!(base, build("q", 7, false).canonical_bytes(), "name");
        assert_ne!(base, build("p", 8, false).canonical_bytes(), "operand");
        assert_ne!(base, build("p", 7, true).canonical_bytes(), "symbols");
    }

    #[test]
    fn symbol_order_is_canonical() {
        // HashMap iteration order varies; canonical bytes must not.
        for _ in 0..8 {
            assert_eq!(
                build("p", 1, true).canonical_bytes(),
                build("p", 1, true).canonical_bytes()
            );
        }
    }
}
