//! Human-readable instruction and program listings.

use crate::addr::Pc;
use crate::image::Image;
use crate::inst::{AluOp, Cond, FpuOp, Inst};
use crate::program::Program;
use std::fmt;

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FpuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpuOp::FAdd => "fadd",
            FpuOp::FSub => "fsub",
            FpuOp::FMul => "fmul",
            FpuOp::FDiv => "fdiv",
            FpuOp::FSqrt => "fsqrt",
            FpuOp::FCmpLt => "fcmplt",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
        };
        f.write_str(s)
    }
}

fn off(v: i64) -> String {
    if v < 0 {
        format!("-{:#x}", v.unsigned_abs())
    } else {
        format!("+{v:#x}")
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Pause => write!(f, "pause"),
            Inst::Halt => write!(f, "halt"),
            Inst::Li { rd, imm } => write!(f, "li      {rd}, {imm:#x}"),
            Inst::Alu { op, rd, ra, rb } => write!(f, "{op:<7} {rd}, {ra}, {rb}"),
            Inst::AluI { op, rd, ra, imm } => write!(
                f,
                "{op}i{:<width$} {rd}, {ra}, {imm:#x}",
                "",
                width = 6usize.saturating_sub(op.to_string().len() + 1)
            ),
            Inst::Fpu { op, rd, ra, rb } => write!(f, "{op:<7} {rd}, {ra}, {rb}"),
            Inst::Load { rd, base, off: o } => write!(f, "ld      {rd}, [{base}{}]", off(o)),
            Inst::Store { rs, base, off: o } => write!(f, "st      {rs}, [{base}{}]", off(o)),
            Inst::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                write!(f, "b{cond:<6} {ra}, {rb}, {target}")
            }
            Inst::Jump { target } => write!(f, "j       {target}"),
            Inst::Call { target } => write!(f, "call    {target}"),
            Inst::CallInd { ra } => write!(f, "callr   {ra}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Tid { rd } => write!(f, "tid     {rd}"),
            Inst::AtomicAdd {
                rd,
                base,
                off: o,
                rs,
            } => {
                write!(f, "amoadd  {rd}, [{base}{}], {rs}", off(o))
            }
            Inst::AtomicXchg {
                rd,
                base,
                off: o,
                rs,
            } => {
                write!(f, "amoswap {rd}, [{base}{}], {rs}", off(o))
            }
            Inst::AtomicCas {
                rd,
                base,
                off: o,
                expected,
                new,
            } => {
                write!(f, "amocas  {rd}, [{base}{}], {expected}, {new}", off(o))
            }
            Inst::Fence => write!(f, "fence"),
            Inst::FutexWait {
                base,
                off: o,
                expected,
            } => {
                write!(f, "fuwait  [{base}{}], {expected}", off(o))
            }
            Inst::FutexWake {
                base,
                off: o,
                count,
            } => {
                write!(f, "fuwake  [{base}{}], {count}", off(o))
            }
        }
    }
}

impl Program {
    /// Produces an assembly-style listing of one image, annotated with
    /// symbol labels — a debugging aid (think `objdump -d`).
    pub fn disassemble(&self, image: &Image) -> String {
        let mut out = String::new();
        use fmt::Write;
        let _ = writeln!(out, "; image {} ({:?})", image.name(), image.kind());
        for (pc, inst) in image.iter() {
            let sym = self.symbolize(pc);
            if !sym.contains('+') && !sym.contains(':') {
                let _ = writeln!(out, "{sym}:");
            }
            let _ = writeln!(out, "  {pc}  {inst}");
        }
        out
    }

    /// Disassembles every image.
    pub fn disassemble_all(&self) -> String {
        self.images()
            .iter()
            .map(|img| self.disassemble(img))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Formats a marker position as `symbol+delta (count N)` for reports.
pub fn describe_marker(program: &Program, marker: crate::addr::Marker) -> String {
    format!("{} (count {})", program.symbolize(marker.pc), marker.count)
}

/// Formats a PC with its symbol, for diagnostics.
pub fn describe_pc(program: &Program, pc: Pc) -> String {
    format!("{pc} [{}]", program.symbolize(pc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Marker, ProgramBuilder, Reg};

    fn program() -> Program {
        let mut pb = ProgramBuilder::new("dis");
        let mut c = pb.main_code();
        c.export_label("main");
        c.li(Reg::R1, 16);
        c.counted_loop("main.loop", Reg::R2, 3, |c| {
            c.load(Reg::R3, Reg::R1, 8);
            c.alui(crate::AluOp::Add, Reg::R3, Reg::R3, 1);
            c.store(Reg::R3, Reg::R1, 8);
        });
        c.halt();
        c.finish();
        pb.finish()
    }

    #[test]
    fn instruction_mnemonics() {
        assert_eq!(Inst::Nop.to_string(), "nop");
        assert_eq!(Inst::Ret.to_string(), "ret");
        let li = Inst::Li {
            rd: Reg::R3,
            imm: 255,
        };
        assert_eq!(li.to_string(), "li      r3, 0xff");
        let ld = Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            off: 8,
        };
        assert_eq!(ld.to_string(), "ld      r1, [r2+0x8]");
        let st = Inst::Store {
            rs: Reg::R1,
            base: Reg::R2,
            off: -8,
        };
        assert_eq!(st.to_string(), "st      r1, [r2-0x8]");
        let b = Inst::Branch {
            cond: Cond::Ne,
            ra: Reg::R1,
            rb: Reg::R31,
            target: Pc::new(crate::ImageId(0), 4),
        };
        assert!(b.to_string().starts_with("bne"));
        assert!(b.to_string().contains("img0:0x4"));
    }

    #[test]
    fn listing_contains_symbols_and_all_slots() {
        let p = program();
        let listing = p.disassemble_all();
        assert!(listing.contains("main:"), "{listing}");
        assert!(listing.contains("main.loop:"), "{listing}");
        assert!(listing.contains("ld      r3"), "{listing}");
        assert!(listing.contains("halt"));
        // One line per instruction plus labels/headers.
        let inst_lines = listing.lines().filter(|l| l.starts_with("  img")).count();
        assert_eq!(inst_lines, p.code_size());
    }

    #[test]
    fn describe_helpers() {
        let p = program();
        let hdr = p.symbol("main.loop").unwrap();
        let d = describe_marker(&p, Marker::new(hdr, 7));
        assert_eq!(d, "main.loop (count 7)");
        assert!(describe_pc(&p, hdr).contains("main.loop"));
    }
}
