//! Unconstrained, binary-driven simulation of looppoint regions.

use crate::error::LoopPointError;
use crate::pipeline::{Analysis, LoopPointRegion};
use lp_isa::Program;
use lp_sim::{Mode, SimError, SimStats, Simulator, StopCond};
use lp_uarch::SimConfig;
use std::sync::Arc;

/// A region paired with its optional checkpoint payload: the snapshotted
/// machine state plus the global `(PC, count)` watch counts at that point.
type PreparedRegion = (
    LoopPointRegion,
    Option<(lp_isa::MachineState, Vec<(lp_isa::Pc, u64)>)>,
);

/// Detailed statistics for one simulated looppoint.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// The region that was simulated.
    pub region: LoopPointRegion,
    /// Region statistics (with warmup accounting in the `ff_*` fields).
    pub stats: SimStats,
}

/// Simulates one region: fast-forward (warming caches and predictors) from
/// program start to the region's start marker, then detailed until its end
/// marker (§III-F's binary-driven warmup).
fn simulate_one(
    region: &LoopPointRegion,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    max_steps: u64,
    warmup: bool,
) -> Result<SimStats, SimError> {
    let obs = lp_obs::global();
    let mut span = obs.span("region.sim", "pipeline");
    span.arg("cluster", region.cluster);
    span.arg("slice_index", region.slice_index);
    span.arg("multiplier", region.multiplier);
    let mut sim = Simulator::new(program.clone(), nthreads, simcfg.clone());
    sim.set_ff_warming(warmup);
    if let Some(s) = region.start {
        sim.watch_pc(s.pc);
    }
    if let Some(e) = region.end {
        sim.watch_pc(e.pc);
    }
    if let Some(s) = region.start {
        sim.run(Mode::FastForward, Some(StopCond::Marker(s)), max_steps)?;
    }
    let stats = sim.run(Mode::Detailed, region.end.map(StopCond::Marker), max_steps)?;
    span.arg("instructions", stats.instructions);
    span.arg("cycles", stats.cycles);
    obs.counter("region.sims").inc();
    Ok(stats)
}

/// Simulates every looppoint unconstrained on `simcfg`.
///
/// With `parallel = true`, regions run on separate OS threads — the
/// deployment §III-J describes (checkpoints simulated in parallel given
/// enough resources); wall-clock times then feed the *actual parallel*
/// speedup numbers.
///
/// # Errors
/// The first region failure is returned.
pub fn simulate_representatives(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    parallel: bool,
) -> Result<Vec<RegionResult>, LoopPointError> {
    simulate_representatives_opts(analysis, program, nthreads, simcfg, parallel, true)
}

/// Like [`simulate_representatives`], with explicit control over
/// fast-forward warming (`warmup = false` is the cold-start ablation).
///
/// # Errors
/// The first region failure is returned.
pub fn simulate_representatives_opts(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    parallel: bool,
    warmup: bool,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let max_steps = 4_000_000_000;
    if !parallel {
        return analysis
            .looppoints
            .iter()
            .map(|region| {
                simulate_one(region, program, nthreads, simcfg, max_steps, warmup)
                    .map(|stats| RegionResult {
                        region: region.clone(),
                        stats,
                    })
                    .map_err(LoopPointError::from)
            })
            .collect();
    }

    let results: Vec<Result<RegionResult, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = analysis
            .looppoints
            .iter()
            .map(|region| {
                scope.spawn(move || {
                    simulate_one(region, program, nthreads, simcfg, max_steps, warmup).map(
                        |stats| RegionResult {
                            region: region.clone(),
                            stats,
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region simulation thread panicked"))
            .collect()
    });
    results
        .into_iter()
        .map(|r| r.map_err(LoopPointError::from))
        .collect()
}

/// Simulates every looppoint **checkpoint-driven**: each region restores a
/// pinball checkpoint taken `warmup_slices` slices before its start marker,
/// fast-forwards (warming caches and predictors) through that short warmup
/// window, and then runs detailed to the end marker.
///
/// This is the deployment the paper's title describes: regions ship as
/// checkpoints, so no simulation time is spent re-executing the program
/// prefix — the property behind the large *actual* speedups of §V-B.
/// Checkpoint construction replays the analysis pinball and is a one-time,
/// shareable cost (like pinball generation itself); it is not charged to
/// the per-region simulation time.
///
/// # Errors
/// The first region failure is returned.
pub fn simulate_representatives_checkpointed(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    warmup_slices: usize,
    parallel: bool,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let max_steps: u64 = 4_000_000_000;
    let obs = lp_obs::global();
    // Build checkpoints serially (they replay the shared pinball).
    let ckpt_span = obs.span("region.checkpoints", "pipeline");
    let mut prepared: Vec<PreparedRegion> = Vec::with_capacity(analysis.looppoints.len());
    for region in &analysis.looppoints {
        let warm_idx = region.slice_index.saturating_sub(warmup_slices);
        let warm_marker = analysis.profile.slices[warm_idx].start;
        let ckpt = match warm_marker {
            None => None, // region near program start: simulate from reset
            Some(marker) => {
                let mut watch = Vec::new();
                if let Some(s) = region.start {
                    watch.push(s.pc);
                }
                if let Some(e) = region.end {
                    watch.push(e.pc);
                }
                let (ckpt, counts) =
                    analysis
                        .pinball
                        .checkpoint_at_with_counts(program.clone(), marker, &watch)?;
                let counts: Vec<(lp_isa::Pc, u64)> = counts.into_iter().collect();
                Some((ckpt.state().clone(), counts))
            }
        };
        prepared.push((region.clone(), ckpt));
    }
    drop(ckpt_span);

    let run_one = |(region, ckpt): &PreparedRegion| -> Result<RegionResult, SimError> {
        let obs = lp_obs::global();
        let mut span = obs.span("region.sim", "pipeline");
        span.arg("cluster", region.cluster);
        span.arg("checkpointed", u64::from(ckpt.is_some()));
        let mut sim = match ckpt {
            None => Simulator::new(program.clone(), nthreads, simcfg.clone()),
            Some((state, counts)) => {
                let machine = lp_isa::Machine::from_snapshot(program.clone(), state);
                let mut sim = Simulator::from_machine(machine, simcfg.clone());
                for &(pc, count) in counts {
                    sim.watch_pc_from(pc, count);
                }
                sim
            }
        };
        if let Some(s) = region.start {
            sim.watch_pc(s.pc);
        }
        if let Some(e) = region.end {
            sim.watch_pc(e.pc);
        }
        if let Some(s) = region.start {
            sim.run(Mode::FastForward, Some(StopCond::Marker(s)), max_steps)?;
        }
        let stats = sim.run(Mode::Detailed, region.end.map(StopCond::Marker), max_steps)?;
        span.arg("instructions", stats.instructions);
        span.arg("cycles", stats.cycles);
        obs.counter("region.sims").inc();
        Ok(RegionResult {
            region: region.clone(),
            stats,
        })
    };

    let results: Vec<Result<RegionResult, SimError>> = if parallel {
        std::thread::scope(|scope| {
            let handles: Vec<_> = prepared
                .iter()
                .map(|p| scope.spawn(move || run_one(p)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region simulation thread panicked"))
                .collect()
        })
    } else {
        prepared.iter().map(run_one).collect()
    };
    results
        .into_iter()
        .map(|r| r.map_err(LoopPointError::from))
        .collect()
}

/// Simulates the whole application in detailed mode (the reference run the
/// prediction error is measured against).
///
/// # Errors
/// Propagates simulator failures.
pub fn simulate_whole(
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
) -> Result<SimStats, LoopPointError> {
    let _span = lp_obs::global().span("sim.whole", "pipeline");
    lp_sim::simulate_full(program.clone(), nthreads, simcfg.clone(), 4_000_000_000)
        .map_err(LoopPointError::from)
}
