//! Unconstrained, binary-driven simulation of looppoint regions.

use crate::config::DEFAULT_MAX_STEPS;
use crate::error::LoopPointError;
use crate::pipeline::{Analysis, LoopPointRegion};
use crate::pool;
use lp_isa::{MachineState, Marker, Pc, Program};
use lp_sim::{Mode, SimError, SimStats, Simulator, StopCond};
use lp_uarch::SimConfig;
use std::sync::Arc;

/// Knobs shared by every region-simulation entry point.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Hard step budget for any single fast-forward or detailed run
    /// (default: [`DEFAULT_MAX_STEPS`]).
    pub max_steps: u64,
    /// Simulate regions concurrently on a bounded worker pool.
    pub parallel: bool,
    /// Fast-forward warming of caches and predictors (`false` is the
    /// cold-start ablation).
    pub warmup: bool,
    /// Worker-pool width when `parallel`; `None` uses
    /// [`std::thread::available_parallelism`]. Always clamped to the
    /// region count.
    pub pool_size: Option<usize>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_steps: DEFAULT_MAX_STEPS,
            parallel: false,
            warmup: true,
            pool_size: None,
        }
    }
}

impl SimOptions {
    /// Options running regions on the bounded worker pool.
    #[must_use]
    pub fn parallel() -> Self {
        SimOptions {
            parallel: true,
            ..Default::default()
        }
    }
}

/// A region paired with its optional checkpoint payload.
#[derive(Debug, Clone)]
pub struct PreparedRegion {
    /// The region to simulate.
    pub region: LoopPointRegion,
    /// Snapshotted machine state at the warmup marker plus the global
    /// `(PC, count)` watch counts at that point; `None` when the region
    /// starts near program begin and is simulated from reset.
    pub checkpoint: Option<(MachineState, Vec<(Pc, u64)>)>,
}

/// Region checkpoints ready for simulation, plus accounting of what their
/// construction cost.
#[derive(Debug)]
pub struct PreparedCheckpoints {
    /// One prepared entry per looppoint, in looppoint order.
    pub regions: Vec<PreparedRegion>,
    /// Full pinball replays performed to build the checkpoints. The
    /// single-pass generator keeps this at **1** regardless of region
    /// count (0 when no region needs a checkpoint); the legacy per-region
    /// path pays one replay per checkpointed region.
    pub replay_passes: u64,
}

/// Detailed statistics for one simulated looppoint.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// The region that was simulated.
    pub region: LoopPointRegion,
    /// Region statistics (with warmup accounting in the `ff_*` fields).
    pub stats: SimStats,
}

/// Simulates one region: fast-forward (warming caches and predictors) from
/// program start to the region's start marker, then detailed until its end
/// marker (§III-F's binary-driven warmup).
fn simulate_one(
    region: &LoopPointRegion,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    max_steps: u64,
    warmup: bool,
) -> Result<SimStats, SimError> {
    let obs = lp_obs::global();
    let mut span = obs.span("region.sim", "pipeline");
    span.arg("cluster", region.cluster);
    span.arg("slice_index", region.slice_index);
    span.arg("multiplier", region.multiplier);
    let mut sim = Simulator::new(program.clone(), nthreads, simcfg.clone());
    sim.set_ff_warming(warmup);
    if let Some(s) = region.start {
        sim.watch_pc(s.pc);
    }
    if let Some(e) = region.end {
        sim.watch_pc(e.pc);
    }
    if let Some(s) = region.start {
        sim.run(Mode::FastForward, Some(StopCond::Marker(s)), max_steps)?;
    }
    let stats = sim.run(Mode::Detailed, region.end.map(StopCond::Marker), max_steps)?;
    span.arg("instructions", stats.instructions);
    span.arg("cycles", stats.cycles);
    obs.counter("region.sims").inc();
    Ok(stats)
}

/// Simulates every looppoint unconstrained on `simcfg`.
///
/// With `parallel = true`, regions run concurrently on a bounded worker
/// pool — the deployment §III-J describes (checkpoints simulated in
/// parallel given enough resources); wall-clock times then feed the
/// *actual parallel* speedup numbers.
///
/// # Errors
/// The first region failure is returned; outstanding parallel work is
/// cancelled.
pub fn simulate_representatives(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    parallel: bool,
) -> Result<Vec<RegionResult>, LoopPointError> {
    simulate_representatives_opts(analysis, program, nthreads, simcfg, parallel, true)
}

/// Like [`simulate_representatives`], with explicit control over
/// fast-forward warming (`warmup = false` is the cold-start ablation).
///
/// # Errors
/// The first region failure is returned; outstanding parallel work is
/// cancelled.
pub fn simulate_representatives_opts(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    parallel: bool,
    warmup: bool,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let opts = SimOptions {
        parallel,
        warmup,
        ..Default::default()
    };
    simulate_representatives_with(analysis, program, nthreads, simcfg, &opts)
}

/// Fully-configurable binary-driven region simulation (see [`SimOptions`]).
///
/// # Errors
/// The first region failure is returned; outstanding parallel work is
/// cancelled.
pub fn simulate_representatives_with(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    opts: &SimOptions,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let run_one = |region: &LoopPointRegion| -> Result<RegionResult, SimError> {
        simulate_one(
            region,
            program,
            nthreads,
            simcfg,
            opts.max_steps,
            opts.warmup,
        )
        .map(|stats| RegionResult {
            region: region.clone(),
            stats,
        })
    };
    if !opts.parallel {
        return analysis
            .looppoints
            .iter()
            .map(|region| run_one(region).map_err(LoopPointError::from))
            .collect();
    }
    let workers = pool::effective_pool_size(opts.pool_size, analysis.looppoints.len());
    pool::run_cancelable(&analysis.looppoints, workers, run_one).map_err(LoopPointError::from)
}

/// Builds the per-region checkpoints for
/// [`simulate_representatives_checkpointed_with`] in a **single pinball
/// replay**, regardless of region count.
///
/// Regions are sorted by warmup-marker position into a multi-marker agenda
/// and batched through [`lp_pinball::Pinball::checkpoints_at`]; each
/// region's watch counts are filtered back down to its own start/end PCs,
/// so the prepared payloads are byte-identical to what the legacy
/// per-region path produces. Snapshot sizes are recorded into the
/// `region.checkpoint_bytes` histogram.
///
/// # Errors
/// Replay failures, or a warmup marker the recording never reaches.
pub fn prepare_region_checkpoints(
    analysis: &Analysis,
    program: &Arc<Program>,
    warmup_slices: usize,
) -> Result<PreparedCheckpoints, LoopPointError> {
    let obs = lp_obs::global();
    let mut span = obs.span("region.checkpoints", "pipeline");
    span.arg("regions", analysis.looppoints.len());

    // Warmup marker per region, plus the union of watch PCs (watch counts
    // are *global* execution counts, so the union pass produces the same
    // values any per-region watch list would see).
    let mut markers: Vec<Marker> = Vec::new();
    let mut marker_slots: Vec<Option<usize>> = Vec::with_capacity(analysis.looppoints.len());
    let mut watch: Vec<Pc> = Vec::new();
    for region in &analysis.looppoints {
        let warm_idx = region.slice_index.saturating_sub(warmup_slices);
        let warm_marker = analysis.profile.slices[warm_idx].start;
        match warm_marker {
            None => marker_slots.push(None), // near program start: from reset
            Some(marker) => {
                marker_slots.push(Some(markers.len()));
                markers.push(marker);
            }
        }
        for m in [region.start, region.end].into_iter().flatten() {
            if !watch.contains(&m.pc) {
                watch.push(m.pc);
            }
        }
    }

    let batch = analysis
        .pinball
        .checkpoints_at(program.clone(), &markers, &watch)?;
    let replay_passes = u64::from(!markers.is_empty());
    span.arg("replay_passes", replay_passes);

    let regions = assemble_prepared(analysis, &marker_slots, batch);
    Ok(PreparedCheckpoints {
        regions,
        replay_passes,
    })
}

/// The pre-batching checkpoint builder: one full pinball replay **per
/// region**. Kept as the measured baseline for the analysis-cost benchmark
/// (`cargo bench --bench analysis_cost`) — O(k·N) against
/// [`prepare_region_checkpoints`]'s O(N).
///
/// # Errors
/// Replay failures, or a warmup marker the recording never reaches.
pub fn prepare_region_checkpoints_per_region(
    analysis: &Analysis,
    program: &Arc<Program>,
    warmup_slices: usize,
) -> Result<PreparedCheckpoints, LoopPointError> {
    let obs = lp_obs::global();
    let mut span = obs.span("region.checkpoints", "pipeline");
    span.arg("regions", analysis.looppoints.len());
    let mut regions: Vec<PreparedRegion> = Vec::with_capacity(analysis.looppoints.len());
    let mut replay_passes = 0u64;
    for region in &analysis.looppoints {
        let warm_idx = region.slice_index.saturating_sub(warmup_slices);
        let warm_marker = analysis.profile.slices[warm_idx].start;
        let checkpoint = match warm_marker {
            None => None,
            Some(marker) => {
                let mut watch = Vec::new();
                for m in [region.start, region.end].into_iter().flatten() {
                    watch.push(m.pc);
                }
                let (ckpt, counts) =
                    analysis
                        .pinball
                        .checkpoint_at_with_counts(program.clone(), marker, &watch)?;
                replay_passes += 1;
                record_checkpoint_size(ckpt.state());
                let counts: Vec<(Pc, u64)> = counts.into_iter().collect();
                Some((ckpt.state().clone(), counts))
            }
        };
        regions.push(PreparedRegion {
            region: region.clone(),
            checkpoint,
        });
    }
    span.arg("replay_passes", replay_passes);
    Ok(PreparedCheckpoints {
        regions,
        replay_passes,
    })
}

fn record_checkpoint_size(state: &MachineState) {
    lp_obs::global()
        .histogram("region.checkpoint_bytes")
        .record(state.encoded_len() as u64);
}

fn assemble_prepared(
    analysis: &Analysis,
    marker_slots: &[Option<usize>],
    mut batch: lp_pinball::MarkerCheckpoints,
) -> Vec<PreparedRegion> {
    analysis
        .looppoints
        .iter()
        .zip(marker_slots)
        .map(|(region, slot)| {
            let checkpoint = slot.map(|i| {
                let (ckpt, counts) = &mut batch[i];
                record_checkpoint_size(ckpt.state());
                // Filter the union watch counts down to this region's own
                // start/end PCs (exactly the legacy per-region payload).
                let mut own: Vec<(Pc, u64)> = Vec::new();
                for m in [region.start, region.end].into_iter().flatten() {
                    if own.iter().all(|&(pc, _)| pc != m.pc) {
                        own.push((m.pc, counts[&m.pc]));
                    }
                }
                (ckpt.state().clone(), own)
            });
            PreparedRegion {
                region: region.clone(),
                checkpoint,
            }
        })
        .collect()
}

/// Simulates every looppoint **checkpoint-driven**: each region restores a
/// pinball checkpoint taken `warmup_slices` slices before its start marker,
/// fast-forwards (warming caches and predictors) through that short warmup
/// window, and then runs detailed to the end marker.
///
/// This is the deployment the paper's title describes: regions ship as
/// checkpoints, so no simulation time is spent re-executing the program
/// prefix — the property behind the large *actual* speedups of §V-B.
/// Checkpoint construction is a **single** replay of the analysis pinball
/// (see [`prepare_region_checkpoints`]) and a one-time, shareable cost
/// (like pinball generation itself); it is not charged to the per-region
/// simulation time.
///
/// # Errors
/// The first region failure is returned; outstanding parallel work is
/// cancelled.
pub fn simulate_representatives_checkpointed(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    warmup_slices: usize,
    parallel: bool,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let opts = SimOptions {
        parallel,
        ..Default::default()
    };
    simulate_representatives_checkpointed_with(
        analysis,
        program,
        nthreads,
        simcfg,
        warmup_slices,
        &opts,
    )
}

/// Fully-configurable checkpoint-driven region simulation (see
/// [`SimOptions`]): single-pass checkpoint generation, then serial or
/// bounded-pool region runs.
///
/// # Errors
/// The first region failure is returned; outstanding parallel work is
/// cancelled.
pub fn simulate_representatives_checkpointed_with(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    warmup_slices: usize,
    opts: &SimOptions,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let prepared = prepare_region_checkpoints(analysis, program, warmup_slices)?;
    simulate_prepared(&prepared, program, nthreads, simcfg, opts)
}

/// Simulates already-prepared region checkpoints (the second half of
/// [`simulate_representatives_checkpointed_with`]; split out so benchmarks
/// can time checkpoint construction and simulation separately).
///
/// # Errors
/// The first region failure is returned; outstanding parallel work is
/// cancelled.
pub fn simulate_prepared(
    prepared: &PreparedCheckpoints,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    opts: &SimOptions,
) -> Result<Vec<RegionResult>, LoopPointError> {
    simulate_prepared_with_cancel(
        prepared,
        program,
        nthreads,
        simcfg,
        opts,
        &crate::CancelToken::default(),
    )
}

/// [`simulate_prepared`] honoring a cooperative [`crate::CancelToken`]:
/// the token is checked before every region (serial and pooled alike), so
/// a tripped token aborts the sweep with [`LoopPointError::Cancelled`]
/// after at most one in-flight region per worker completes. This is the
/// hook the lp-farm service uses for per-job timeouts and explicit
/// cancellation.
///
/// # Errors
/// The first region failure — or [`LoopPointError::Cancelled`] — is
/// returned; outstanding parallel work is cancelled.
pub fn simulate_prepared_with_cancel(
    prepared: &PreparedCheckpoints,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    opts: &SimOptions,
    cancel: &crate::CancelToken,
) -> Result<Vec<RegionResult>, LoopPointError> {
    let max_steps = opts.max_steps;
    let run_one = |p: &PreparedRegion| -> Result<RegionResult, LoopPointError> {
        cancel.check()?;
        let region = &p.region;
        let obs = lp_obs::global();
        let mut span = obs.span("region.sim", "pipeline");
        span.arg("cluster", region.cluster);
        span.arg("checkpointed", u64::from(p.checkpoint.is_some()));
        let mut sim = match &p.checkpoint {
            None => Simulator::new(program.clone(), nthreads, simcfg.clone()),
            Some((state, counts)) => {
                let machine = lp_isa::Machine::from_snapshot(program.clone(), state);
                let mut sim = Simulator::from_machine(machine, simcfg.clone());
                for &(pc, count) in counts {
                    sim.watch_pc_from(pc, count);
                }
                sim
            }
        };
        sim.set_ff_warming(opts.warmup);
        if let Some(s) = region.start {
            sim.watch_pc(s.pc);
        }
        if let Some(e) = region.end {
            sim.watch_pc(e.pc);
        }
        if let Some(s) = region.start {
            sim.run(Mode::FastForward, Some(StopCond::Marker(s)), max_steps)?;
        }
        let stats = sim.run(Mode::Detailed, region.end.map(StopCond::Marker), max_steps)?;
        span.arg("instructions", stats.instructions);
        span.arg("cycles", stats.cycles);
        obs.counter("region.sims").inc();
        Ok(RegionResult {
            region: region.clone(),
            stats,
        })
    };

    if !opts.parallel {
        return prepared.regions.iter().map(run_one).collect();
    }
    let workers = pool::effective_pool_size(opts.pool_size, prepared.regions.len());
    pool::run_cancelable(&prepared.regions, workers, run_one)
}

/// Simulates the whole application in detailed mode (the reference run the
/// prediction error is measured against).
///
/// # Errors
/// Propagates simulator failures.
pub fn simulate_whole(
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
) -> Result<SimStats, LoopPointError> {
    let _span = lp_obs::global().span("sim.whole", "pipeline");
    lp_sim::simulate_full(program.clone(), nthreads, simcfg.clone(), DEFAULT_MAX_STEPS)
        .map_err(LoopPointError::from)
}
