//! Pipeline configuration.

use lp_pinball::RecordConfig;
use lp_simpoint::SimpointConfig;

/// Default hard step budget for any single simulation or replay.
///
/// 4 G retired instructions comfortably covers the scaled workloads (the
/// largest bench-scale pipelines retire tens of millions); it exists to
/// turn runaway executions (e.g. a marker that never fires in a buggy
/// region) into a [`lp_pinball::PinballError::StepLimit`] instead of a
/// hang. Override per run via [`LoopPointConfig::max_steps`] or the driver
/// flag `--max-steps`.
pub const DEFAULT_MAX_STEPS: u64 = 4_000_000_000;

/// Configuration of the end-to-end LoopPoint pipeline.
///
/// Defaults reproduce the paper's settings, scaled ~1000× down in
/// instruction counts so whole pipelines (including the full-application
/// reference simulations the paper itself could not afford for `ref`
/// inputs) run in seconds: the paper's per-thread slice size of 100 M
/// instructions becomes [`LoopPointConfig::slice_base`] = 25 000, while
/// `maxK = 50` and the 100-dimension projection are kept verbatim.
#[derive(Debug, Clone)]
pub struct LoopPointConfig {
    /// Per-thread slice size in *spin-filtered* instructions; the global
    /// slice target is `slice_base × nthreads` (§III-B: N × 100 M, scaled).
    pub slice_base: u64,
    /// Clustering parameters (projection dims, maxK, BIC threshold, seed).
    pub simpoint: SimpointConfig,
    /// Recording (flow-control) parameters.
    pub record: RecordConfig,
    /// Hard step budget for any single simulation or replay
    /// ([`DEFAULT_MAX_STEPS`] by default).
    pub max_steps: u64,
    /// Whether profiling filters library-image (spin) instructions; `false`
    /// is the §IV-F ablation.
    pub filter_spin: bool,
    /// Slice-length policy (§III-B supports varying-length intervals).
    pub slice_policy: lp_bbv::SlicePolicy,
    /// Observability handle spans/metrics from [`crate::analyze`] and the
    /// simulators it drives are recorded into. Defaults to the
    /// process-global observer ([`lp_obs::global`]); set explicitly to
    /// capture a pipeline run in isolation.
    pub obs: lp_obs::Observer,
    /// Cooperative cancellation flag, checked at phase boundaries (and by
    /// the `*_with_cancel` simulation entry points between regions). The
    /// default token is never tripped; *not* part of the content key.
    pub cancel: crate::CancelToken,
    /// Distributed trace context this run's spans parent under. When set,
    /// [`crate::run_job`] attaches it for the run's duration, so every
    /// pipeline/store span carries the caller's trace id (e.g. the farm
    /// job that requested the analysis). `None` (the default) leaves
    /// ambient-context behavior unchanged; *not* part of the content key.
    pub trace: Option<lp_obs::TraceContext>,
}

impl Default for LoopPointConfig {
    fn default() -> Self {
        LoopPointConfig {
            slice_base: 25_000,
            simpoint: SimpointConfig::default(),
            record: RecordConfig::default(),
            max_steps: DEFAULT_MAX_STEPS,
            filter_spin: true,
            slice_policy: lp_bbv::SlicePolicy::Fixed,
            obs: lp_obs::global(),
            cancel: crate::CancelToken::default(),
            trace: None,
        }
    }
}

impl LoopPointConfig {
    /// A configuration with a custom per-thread slice size.
    pub fn with_slice_base(slice_base: u64) -> Self {
        LoopPointConfig {
            slice_base,
            ..Default::default()
        }
    }

    /// Routes this pipeline's spans and metrics to `obs` (builder style).
    #[must_use]
    pub fn with_observer(mut self, obs: lp_obs::Observer) -> Self {
        self.obs = obs;
        self
    }

    /// Installs the cancellation token this pipeline run honors (builder
    /// style). Trip it from any thread to abort the run at the next phase
    /// boundary with [`crate::LoopPointError::Cancelled`].
    #[must_use]
    pub fn with_cancel(mut self, cancel: crate::CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Parents this run's spans under `trace` (builder style); see the
    /// [`LoopPointConfig::trace`] field.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<lp_obs::TraceContext>) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let cfg = LoopPointConfig::default();
        assert_eq!(cfg.simpoint.max_k, 50);
        assert_eq!(cfg.simpoint.proj_dims, 100);
        assert_eq!(cfg.slice_base, 25_000);
        let custom = LoopPointConfig::with_slice_base(1000);
        assert_eq!(custom.slice_base, 1000);
    }
}
