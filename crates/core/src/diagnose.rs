//! Bridges the pipeline's domain types into `lp-diag`'s accuracy
//! attribution: one call turns an [`Analysis`], its region results, and
//! (optionally) the full-simulation reference into a [`DiagReport`].

use crate::extrapolate::extrapolate;
use crate::pipeline::Analysis;
use crate::simulate::RegionResult;
use lp_diag::{attribute, ClusterInput, DiagReport, SelfProfile};
use lp_obs::{names, Observer};
use lp_sim::SimStats;

/// Builds the accuracy-attribution report for one workload run.
///
/// * `results` are the simulated representatives (one per cluster);
/// * `full` is the measured whole-program reference — pass `None` when no
///   full simulation exists, in which case the prediction is judged
///   against itself and every attributed error is zero (the report is
///   still useful for its weights, distances, and self-profile);
/// * `obs` supplies the recorded trace spans for the self-profile and
///   receives the `diag.*` counters/gauges.
///
/// The per-cluster signed errors in the returned report sum exactly to
/// the end-to-end signed extrapolation error (see [`lp_diag::attribution`]).
pub fn diagnose(
    workload: &str,
    nthreads: usize,
    analysis: &Analysis,
    results: &[RegionResult],
    full: Option<&SimStats>,
    obs: &Observer,
) -> DiagReport {
    let mut span = obs.span(names::SPAN_DIAG_REPORT, names::CAT_DIAG);
    span.arg("workload", workload);
    span.arg("clusters", results.len());

    let inputs: Vec<ClusterInput> = results
        .iter()
        .map(|r| {
            let region = &r.region;
            let (mean_dist, _max_dist) = analysis.clustering.member_distance_stats(region.cluster);
            ClusterInput {
                cluster: region.cluster,
                slice_index: region.slice_index,
                multiplier: region.multiplier,
                cluster_filtered_insts: region.cluster_filtered_insts,
                rep_cycles: r.stats.cycles,
                rep_instructions: r.stats.instructions,
                ff_instructions: r.stats.ff_instructions,
                rep_distance: analysis.clustering.representative_distance(region.cluster),
                mean_member_distance: mean_dist,
            }
        })
        .collect();

    let predicted = extrapolate(results).total_cycles;
    let actual = full.map_or(predicted, |s| s.cycles as f64);
    let attribution = attribute(&inputs, actual);

    obs.counter(names::DIAG_REPORTS).inc();
    if attribution.error_pct.is_finite() {
        obs.gauge(names::DIAG_ERROR_PCT).set(attribution.error_pct);
    }
    obs.gauge(names::DIAG_CLUSTERS)
        .set(attribution.clusters.len() as f64);

    let profile = SelfProfile::from_events(&obs.trace_events());
    DiagReport::new(workload, nthreads as u64, attribution, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, simulate_representatives, simulate_whole, LoopPointConfig};
    use lp_omp::WaitPolicy;
    use lp_uarch::SimConfig;

    #[test]
    fn attributed_errors_sum_to_end_to_end_error() {
        let program = crate::testutil::phased_program(2, WaitPolicy::Passive, 8);
        let obs = lp_obs::Observer::enabled();
        let mut cfg = LoopPointConfig::with_slice_base(2_000);
        cfg.obs = obs.clone();
        let analysis = analyze(&program, 2, &cfg).unwrap();
        let simcfg = SimConfig::gainestown(2);
        let results = simulate_representatives(&analysis, &program, 2, &simcfg, false).unwrap();
        let full = simulate_whole(&program, 2, &simcfg).unwrap();

        let report = diagnose("phased", 2, &analysis, &results, Some(&full), &obs);
        assert_eq!(report.k as usize, analysis.looppoints.len());
        let sum: f64 = report.clusters.iter().map(|c| c.error_cycles).sum();
        assert!(
            (sum - report.error_cycles).abs() <= 1e-9 * report.error_cycles.abs().max(1.0),
            "cluster errors {sum} must sum to total {}",
            report.error_cycles
        );
        // The report knows where the pipeline's own time went.
        assert!(report.profile.phases.iter().any(|p| p.name == "analyze"));
        assert!(!report.profile.critical_path.is_empty());
        // Weights cover the filtered work.
        let wsum: f64 = report.clusters.iter().map(|c| c.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weights sum to {wsum}");
        // JSON round-trip of a real report.
        let back = DiagReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn no_reference_run_yields_zero_error_but_full_structure() {
        let program = crate::testutil::phased_program(2, WaitPolicy::Passive, 6);
        let obs = lp_obs::Observer::enabled();
        let mut cfg = LoopPointConfig::with_slice_base(2_000);
        cfg.obs = obs.clone();
        let analysis = analyze(&program, 2, &cfg).unwrap();
        let simcfg = SimConfig::gainestown(2);
        let results = simulate_representatives(&analysis, &program, 2, &simcfg, false).unwrap();

        let report = diagnose("phased", 2, &analysis, &results, None, &obs);
        assert_eq!(report.error_cycles, 0.0);
        assert_eq!(report.error_pct, 0.0);
        assert_eq!(report.clusters.len(), analysis.looppoints.len());
        // Individual clusters may disagree with their weight-share (that
        // is the informative part), but with actual == predicted the
        // signed contributions cancel exactly.
        let sum: f64 = report.clusters.iter().map(|c| c.error_cycles).sum();
        assert!(
            sum.abs() <= 1e-9 * report.predicted_cycles.max(1.0),
            "{sum}"
        );
    }
}
