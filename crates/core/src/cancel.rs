//! Cooperative cancellation for pipeline runs.
//!
//! Long analyses and region-simulation sweeps are uninterruptible in a
//! one-shot CLI — acceptable there, fatal in a multi-tenant service where
//! a job must honor a timeout or an explicit cancel without taking the
//! whole process down. A [`CancelToken`] is a cheap, clonable flag that
//! callers hand to a pipeline run (via
//! [`crate::LoopPointConfig::with_cancel`] or the `*_with_cancel`
//! simulation entry points) and trip from any thread; the pipeline checks
//! it at phase boundaries and between region simulations and aborts with
//! [`crate::LoopPointError::Cancelled`].
//!
//! Granularity is deliberately coarse (a phase or a single region, not an
//! individual simulated instruction): checks are free on the hot path and
//! an in-flight region completes before the abort, so partially simulated
//! state never leaks out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clonable cancellation flag shared between a job's owner and the
/// pipeline executing it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the flag; every pipeline holding a clone aborts at its next
    /// check. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether two tokens share one flag (clones of each other).
    pub fn same_flag(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }

    /// Returns `Err(LoopPointError::Cancelled)` if the flag is tripped.
    ///
    /// # Errors
    /// [`crate::LoopPointError::Cancelled`] when cancelled.
    pub fn check(&self) -> Result<(), crate::LoopPointError> {
        if self.is_cancelled() {
            Err(crate::LoopPointError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_once_and_stays_tripped() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(crate::LoopPointError::Cancelled)));
        assert!(t.same_flag(&clone));
        assert!(!t.same_flag(&CancelToken::new()));
    }

    #[test]
    fn cancellation_crosses_threads() {
        let t = CancelToken::new();
        let remote = t.clone();
        std::thread::spawn(move || remote.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
