//! Coverage diagnostics for an analysis: how much of the program the
//! chosen looppoints stand for, and how concentrated the clustering is.
//!
//! SimPoint-style methodologies are often judged by how few representatives
//! cover how much of the execution; these helpers expose that for reports
//! and for the sanity checks a user should run before trusting an
//! extrapolation (§V-A's caveat about unstable regions applies when
//! coverage is thin).

use crate::pipeline::Analysis;

/// Coverage summary of an [`Analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// Number of slices profiled.
    pub slices: usize,
    /// Number of representatives selected.
    pub looppoints: usize,
    /// Fraction of whole-program filtered work the largest cluster holds.
    pub largest_cluster_share: f64,
    /// Smallest number of looppoints whose clusters cover ≥ 90 % of the
    /// filtered work.
    pub looppoints_for_90pct: usize,
    /// Detailed-simulation fraction: representative instructions over
    /// whole-program filtered instructions (the inverse of the theoretical
    /// serial speedup).
    pub detailed_fraction: f64,
}

impl Analysis {
    /// Computes the coverage summary.
    pub fn coverage(&self) -> Coverage {
        let total = self.profile.total_filtered.max(1) as f64;
        let mut shares: Vec<f64> = self
            .looppoints
            .iter()
            .map(|lp| lp.cluster_filtered_insts as f64 / total)
            .collect();
        shares.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let largest = shares.first().copied().unwrap_or(0.0);
        let mut acc = 0.0;
        let mut needed = shares.len();
        for (i, s) in shares.iter().enumerate() {
            acc += s;
            if acc >= 0.9 {
                needed = i + 1;
                break;
            }
        }
        let rep_insts: u64 = self.looppoints.iter().map(|lp| lp.filtered_insts).sum();
        Coverage {
            slices: self.profile.slices.len(),
            looppoints: self.looppoints.len(),
            largest_cluster_share: largest,
            looppoints_for_90pct: needed,
            detailed_fraction: rep_insts as f64 / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze, LoopPointConfig};
    use lp_omp::WaitPolicy;

    #[test]
    fn coverage_invariants() {
        let program = crate::testutil::phased_program(2, WaitPolicy::Passive, 8);
        let analysis = analyze(&program, 2, &LoopPointConfig::with_slice_base(2_000)).unwrap();
        let cov = analysis.coverage();
        assert_eq!(cov.slices, analysis.profile.slices.len());
        assert_eq!(cov.looppoints, analysis.looppoints.len());
        assert!(cov.largest_cluster_share > 0.0 && cov.largest_cluster_share <= 1.0);
        assert!(cov.looppoints_for_90pct >= 1);
        assert!(cov.looppoints_for_90pct <= cov.looppoints);
        // Cluster shares sum to 1 (every slice belongs to some cluster),
        // so 90% coverage always exists.
        let total_share: f64 = analysis
            .looppoints
            .iter()
            .map(|lp| lp.cluster_filtered_insts as f64)
            .sum::<f64>()
            / analysis.profile.total_filtered as f64;
        assert!((total_share - 1.0).abs() < 1e-9);
        // Sampling means detailed fraction < 1.
        assert!(cov.detailed_fraction < 1.0);
        assert!(cov.detailed_fraction > 0.0);
    }
}
