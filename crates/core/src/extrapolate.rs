//! Runtime and metric extrapolation (Eqs. 1–2 of the paper).

use crate::simulate::RegionResult;

/// Whole-program performance reconstructed from looppoint simulations.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Eq. 1: `Σ runtimeᵢ × multiplierᵢ` in cycles.
    pub total_cycles: f64,
    /// Extrapolated total instructions (all images).
    pub total_instructions: f64,
    /// Extrapolated branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Extrapolated L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Extrapolated L3 misses per kilo-instruction.
    pub l3_mpki: f64,
    /// Extrapolated aggregate IPC.
    pub ipc: f64,
}

/// Reconstructs whole-program metrics from region results using the Eq. 2
/// multipliers. Every *event count* (cycles, instructions, misses) is
/// multiplier-weighted, then rates (MPKI, IPC) are derived from the
/// extrapolated counts — the "any event of interest" generalization of
/// §III-G.
pub fn extrapolate(results: &[RegionResult]) -> Prediction {
    let mut cycles = 0.0;
    let mut insts = 0.0;
    let mut branch_miss = 0.0;
    let mut l2_miss = 0.0;
    let mut l3_miss = 0.0;
    for r in results {
        let m = r.region.multiplier;
        cycles += r.stats.cycles as f64 * m;
        insts += r.stats.instructions as f64 * m;
        branch_miss += r.stats.branch.total_mispredicts() as f64 * m;
        l2_miss += r.stats.mem.l2_misses as f64 * m;
        l3_miss += r.stats.mem.l3_misses as f64 * m;
    }
    let per_kilo = if insts > 0.0 { 1000.0 / insts } else { 0.0 };
    Prediction {
        total_cycles: cycles,
        total_instructions: insts,
        branch_mpki: branch_miss * per_kilo,
        l2_mpki: l2_miss * per_kilo,
        l3_mpki: l3_miss * per_kilo,
        ipc: if cycles > 0.0 { insts / cycles } else { 0.0 },
    }
}

/// Absolute percentage error of a prediction against the measured value.
pub fn error_pct(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((predicted - actual) / actual * 100.0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::LoopPointRegion;
    use lp_sim::SimStats;

    fn region(mult: f64) -> LoopPointRegion {
        LoopPointRegion {
            slice_index: 0,
            cluster: 0,
            start: None,
            end: None,
            multiplier: mult,
            filtered_insts: 100,
            cluster_filtered_insts: (100.0 * mult) as u64,
        }
    }

    fn result(mult: f64, cycles: u64, insts: u64, l2: u64, br: u64) -> RegionResult {
        let mut stats = SimStats {
            cycles,
            instructions: insts,
            ..Default::default()
        };
        stats.mem.l2_misses = l2;
        stats.branch.cond_branches = br * 10;
        stats.branch.cond_mispredicts = br;
        RegionResult {
            region: region(mult),
            stats,
        }
    }

    #[test]
    fn eq1_weighted_sum() {
        let results = vec![result(3.0, 1000, 2000, 10, 4), result(1.0, 500, 1000, 0, 0)];
        let p = extrapolate(&results);
        assert!((p.total_cycles - 3500.0).abs() < 1e-9);
        assert!((p.total_instructions - 7000.0).abs() < 1e-9);
        // l2 misses = 30; mpki = 30/7000*1000
        assert!((p.l2_mpki - 30.0 * 1000.0 / 7000.0).abs() < 1e-9);
        assert!((p.branch_mpki - 12.0 * 1000.0 / 7000.0).abs() < 1e-9);
        assert!((p.ipc - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_region_identity() {
        // A single region with multiplier 1 predicts exactly itself.
        let results = vec![result(1.0, 1234, 5678, 7, 3)];
        let p = extrapolate(&results);
        assert_eq!(p.total_cycles, 1234.0);
        assert_eq!(p.total_instructions, 5678.0);
    }

    #[test]
    fn error_pct_semantics() {
        assert!((error_pct(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert!((error_pct(90.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(error_pct(0.0, 0.0), 0.0);
        assert!(error_pct(1.0, 0.0).is_infinite());
    }

    #[test]
    fn empty_results_are_zero() {
        let p = extrapolate(&[]);
        assert_eq!(p.total_cycles, 0.0);
        assert_eq!(p.ipc, 0.0);
        assert_eq!(p.branch_mpki, 0.0);
    }
}
