//! Constrained timing simulation: replay-driven, with artificial stalls.
//!
//! PinPlay's default replay repeats the shared-memory access order captured
//! on the recording machine. Timing simulation on top of such a replay
//! (§V-A.1) therefore serializes shared accesses in recorded order,
//! delaying threads artificially — which the paper shows can mislead
//! performance extrapolation (e.g. ~19.6% runtime error for `657.xz_s.2`).
//! This module implements exactly that: an `lp-pinball` replayer drives
//! the same [`TimingModel`] the unconstrained simulator uses, plus a
//! serializing dependency through every shared access.

use crate::error::LoopPointError;
use lp_isa::Program;
use lp_pinball::Pinball;
use lp_sim::{Mode, SimStats, TimingModel};
use lp_uarch::SimConfig;
use std::sync::Arc;
use std::time::Instant;

/// Simulates the whole recorded execution in constrained mode.
///
/// # Errors
/// Replay divergence or budget exhaustion.
pub fn simulate_constrained(
    pinball: &Pinball,
    program: &Arc<Program>,
    simcfg: &SimConfig,
    max_steps: u64,
) -> Result<SimStats, LoopPointError> {
    let wall = Instant::now();
    let nthreads = pinball.nthreads();
    let mut timing = TimingModel::new(simcfg.clone(), nthreads);
    let mut replayer = pinball.replayer(program.clone());
    let mut stats = SimStats {
        per_thread_instructions: vec![0; nthreads],
        ..Default::default()
    };
    // The recorded order is enforced functionally by the replayer; in
    // timing, each shared access additionally waits for the previous
    // *conflicting* access to the same word by another thread (reads wait
    // on the last write; writes wait on the last write and the last read)
    // — the artificial cross-thread stalls constrained replay injects to
    // enforce the recorded dependence order. Read-after-read needs no
    // ordering, as in PinPlay.
    #[derive(Clone, Copy, Default)]
    struct WordOrder {
        last_write: Option<(usize, u64)>,
        last_read: Option<(usize, u64)>,
    }
    let mut order: std::collections::HashMap<u64, WordOrder> = std::collections::HashMap::new();
    let mut steps: u64 = 0;
    while let Some(r) = replayer.step()? {
        steps += 1;
        if steps > max_steps {
            return Err(LoopPointError::Sim(lp_sim::SimError::StepLimit {
                limit: max_steps,
            }));
        }
        stats.instructions += 1;
        stats.per_thread_instructions[r.tid] += 1;
        if !program.is_library_pc(r.pc) {
            stats.filtered_instructions += 1;
        }
        let shared = r.mem.filter(|m| m.shared);
        if let Some(acc) = shared {
            if let Some(w) = order.get(&acc.addr.0) {
                let mut wait = 0u64;
                if let Some((tid, cycle)) = w.last_write {
                    if tid != r.tid {
                        wait = wait.max(cycle);
                    }
                }
                if acc.write || acc.atomic {
                    if let Some((tid, cycle)) = w.last_read {
                        if tid != r.tid {
                            wait = wait.max(cycle);
                        }
                    }
                }
                if wait > 0 {
                    timing.advance_core_to(r.tid, wait);
                }
            }
        }
        let complete = timing.account(&r, Mode::Detailed);
        if let Some(acc) = shared {
            let w = order.entry(acc.addr.0).or_default();
            if acc.write || acc.atomic {
                w.last_write = Some((r.tid, complete));
            } else {
                w.last_read = Some((r.tid, complete));
            }
        }
    }
    stats.cycles = timing.max_cycle();
    timing.collect_into(&mut stats);
    stats.wall = wall.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_pinball::RecordConfig;

    #[test]
    fn constrained_runtime_deviates_under_contention() {
        // Constrained timing replays the *recording host's* interleaving
        // with artificial cross-thread dependence stalls. For a contended
        // workload the result deviates substantially from the
        // unconstrained simulation in one direction or the other — the
        // unreliability §V-A.1 warns about (either artificial stalls slow
        // it down, or the recorded flow-controlled schedule dodges the
        // contention the target machine would really see).
        let program = crate::testutil::contended_program(4);
        let pinball = Pinball::record(&program, 4, RecordConfig::default()).unwrap();
        let cfg = SimConfig::gainestown(4);
        let constrained = simulate_constrained(&pinball, &program, &cfg, u64::MAX).unwrap();
        let unconstrained = lp_sim::simulate_full(program.clone(), 4, cfg, u64::MAX).unwrap();
        let deviation = (constrained.cycles as f64 - unconstrained.cycles as f64).abs()
            / unconstrained.cycles as f64;
        assert!(
            deviation > 0.10,
            "constrained ({}) should deviate notably from unconstrained ({})",
            constrained.cycles,
            unconstrained.cycles
        );
        // Functionally it retires the recorded stream.
        assert_eq!(constrained.instructions, pinball.instructions());
    }
}
