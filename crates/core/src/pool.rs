//! A bounded, work-stealing worker pool for region simulations.
//!
//! Region simulations are embarrassingly parallel, but spawning one
//! unbounded OS thread per region oversubscribes the host as soon as the
//! clustering picks tens of looppoints. This pool caps concurrency at
//! [`std::thread::available_parallelism`] (or an explicit size), lets
//! workers steal items off a shared atomic cursor, and aborts outstanding
//! work on the first error via a shared cancel flag — failed pipelines
//! stop burning CPU instead of running every remaining region to
//! completion.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Effective pool width: `requested` if given, otherwise the host's
/// available parallelism; always clamped to `[1, items]`.
pub(crate) fn effective_pool_size(requested: Option<usize>, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    requested.unwrap_or(hw).clamp(1, items.max(1))
}

/// Runs `f` over `items` on at most `pool_size` worker threads.
///
/// Items are claimed work-stealing style off a shared atomic cursor, so an
/// expensive item never serializes the queue behind it. The first `Err`
/// raises the shared cancel flag: workers finish their in-flight item and
/// stop claiming new ones. Results come back in item order; the returned
/// error is the erroring item with the lowest index (deterministic even
/// when several items fail concurrently).
///
/// Per-claim, the current number of busy workers is recorded into the
/// `region.pool.occupancy` histogram so pool utilization shows up in the
/// metrics report.
pub(crate) fn run_cancelable<T, R, E, F>(items: &[T], pool_size: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let obs = lp_obs::global();
    let occupancy = obs.histogram("region.pool.occupancy");
    let workers = pool_size.clamp(1, items.len().max(1));
    obs.gauge("region.pool.size").set(workers as f64);

    let cursor = AtomicUsize::new(0);
    let active = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = items.iter().map(|_| Mutex::new(None)).collect();

    // The ambient trace context is thread-local; capture the caller's and
    // re-attach it in each worker so region-sim spans stay parented under
    // the pipeline (and, transitively, the farm job) that spawned them.
    let trace_ctx = lp_obs::tracectx::current();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _trace_guard = trace_ctx.as_ref().map(|c| c.attach());
                loop {
                    if cancel.load(Ordering::Acquire) {
                        break;
                    }
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    let busy = active.fetch_add(1, Ordering::Relaxed) + 1;
                    occupancy.record(busy as u64);
                    let result = f(&items[idx]);
                    if result.is_err() {
                        cancel.store(true, Ordering::Release);
                    }
                    *slots[idx].lock().expect("pool slot poisoned") = Some(result);
                    active.fetch_sub(1, Ordering::Relaxed);
                }
            });
        }
    });

    // First error in item order wins; on cancellation later slots may be
    // unvisited (None), which is fine — the error precedes them.
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner().expect("pool slot poisoned") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_items_in_order() {
        let items: Vec<u64> = (0..37).collect();
        let out: Vec<u64> = run_cancelable(&items, 4, |&x| Ok::<_, ()>(x * 2)).unwrap();
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_is_serial() {
        let items: Vec<u64> = (0..5).collect();
        let out: Vec<u64> = run_cancelable(&items, 1, |&x| Ok::<_, ()>(x + 1)).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn first_error_cancels_outstanding_work() {
        let items: Vec<u64> = (0..1000).collect();
        let executed = AtomicUsize::new(0);
        let err = run_cancelable(&items, 2, |&x| {
            executed.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(format!("boom at {x}"))
            } else {
                // Slow non-failing items so cancellation can win the race.
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(err.starts_with("boom"));
        let ran = executed.load(Ordering::Relaxed);
        assert!(
            ran < items.len(),
            "cancel flag must abort outstanding work (ran {ran}/{})",
            items.len()
        );
    }

    #[test]
    fn lowest_index_error_is_reported() {
        let items: Vec<u64> = (0..8).collect();
        // Every item fails; the reported error must be item 0's.
        let err = run_cancelable(&items, 4, |&x| Err::<(), _>(x)).unwrap_err();
        assert_eq!(err, 0);
    }

    #[test]
    fn effective_size_clamps() {
        assert_eq!(effective_pool_size(Some(99), 3), 3);
        assert_eq!(effective_pool_size(Some(2), 10), 2);
        assert_eq!(effective_pool_size(Some(0), 10), 1);
        assert!(effective_pool_size(None, 1000) >= 1);
        assert_eq!(effective_pool_size(None, 0), 1);
    }

    #[test]
    fn empty_items_is_empty_result() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = run_cancelable(&items, 4, |&x| Ok::<_, ()>(x)).unwrap();
        assert!(out.is_empty());
    }
}
