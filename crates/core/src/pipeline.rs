//! The up-front analysis: record → replay → DCFG → slice → cluster.

use crate::config::LoopPointConfig;
use crate::error::LoopPointError;
use lp_bbv::{LoopAlignedSlicer, SliceProfile};
use lp_dcfg::{Dcfg, DcfgBuilder};
use lp_isa::{Marker, Program};
use lp_pinball::Pinball;
use lp_simpoint::{cluster, Clustering};
use std::sync::Arc;

/// One selected representative region — a *looppoint*.
#[derive(Debug, Clone)]
pub struct LoopPointRegion {
    /// Index of the representative slice in the profile.
    pub slice_index: usize,
    /// Cluster this region represents.
    pub cluster: usize,
    /// Start boundary (`None` = program start).
    pub start: Option<Marker>,
    /// End boundary (`None` = program end).
    pub end: Option<Marker>,
    /// Eq. 2 multiplier: cluster filtered instructions over this region's
    /// filtered instructions.
    pub multiplier: f64,
    /// Spin-filtered instructions in the representative slice itself.
    pub filtered_insts: u64,
    /// Spin-filtered instructions across the whole cluster.
    pub cluster_filtered_insts: u64,
}

impl LoopPointRegion {
    /// Start marker (panics if the region starts at program begin; test
    /// helper).
    pub fn region_start(&self) -> lp_isa::Marker {
        self.start.expect("region has a start marker")
    }

    /// End marker (panics if the region runs to program end; test helper).
    pub fn region_end(&self) -> lp_isa::Marker {
        self.end.expect("region has an end marker")
    }

    /// The fraction of whole-program (filtered) work this region stands
    /// for.
    pub fn weight(&self, total_filtered: u64) -> f64 {
        if total_filtered == 0 {
            0.0
        } else {
            self.cluster_filtered_insts as f64 / total_filtered as f64
        }
    }
}

/// Results of the one-time application analysis.
#[derive(Debug)]
pub struct Analysis {
    /// The whole-program pinball the analysis replayed.
    pub pinball: Pinball,
    /// The dynamic control-flow graph (loops, blocks).
    pub dcfg: Dcfg,
    /// The loop-aligned, spin-filtered slice profile.
    pub profile: SliceProfile,
    /// The chosen clustering of slice BBVs.
    pub clustering: Clustering,
    /// The selected representative regions.
    pub looppoints: Vec<LoopPointRegion>,
}

impl Analysis {
    /// Sum of multiplier-weighted filtered instructions — equals the
    /// whole-program filtered count by construction (a useful invariant).
    pub fn reconstructed_filtered_insts(&self) -> f64 {
        self.looppoints
            .iter()
            .map(|r| r.filtered_insts as f64 * r.multiplier)
            .sum()
    }
}

/// Runs the one-time, up-front application analysis (§III-A through
/// §III-E): records a flow-controlled pinball, replays it twice (DCFG, then
/// loop-aligned spin-filtered BBV slicing), clusters the slice vectors, and
/// selects one representative region per cluster with its Eq. 2 multiplier.
///
/// # Errors
/// Pinball/record failures, or [`LoopPointError::NoSlices`] when the
/// program has no main-image loops to bound slices with.
pub fn analyze(
    program: &Arc<Program>,
    nthreads: usize,
    cfg: &LoopPointConfig,
) -> Result<Analysis, LoopPointError> {
    let obs = &cfg.obs;
    let mut analyze_span = obs.span("analyze", "pipeline");
    analyze_span.arg("nthreads", nthreads);

    cfg.cancel.check()?;
    // 1. Reproducible capture (§III-H).
    let pinball = {
        let mut span = obs.span("analyze.record", "pipeline");
        let pinball = Pinball::record(program, nthreads, cfg.record)?;
        span.arg("instructions", pinball.instructions());
        pinball
    };
    lp_obs::lp_debug!(
        "analyze: recorded pinball of {} instructions",
        pinball.instructions()
    );

    cfg.cancel.check()?;
    // 2. DCFG: identify loops (§III-D).
    let dcfg = {
        let mut span = obs.span("analyze.dcfg", "pipeline");
        let mut dcfg_builder = DcfgBuilder::new(program.clone(), nthreads);
        pinball.replay(program.clone(), &mut [&mut dcfg_builder], cfg.max_steps)?;
        let dcfg = dcfg_builder.finish();
        span.arg("loop_headers", dcfg.main_image_loop_headers().len());
        dcfg
    };
    if dcfg.main_image_loop_headers().is_empty() {
        return Err(LoopPointError::NoSlices {
            reason: "program has no main-image loop headers".to_string(),
        });
    }

    cfg.cancel.check()?;
    // 3. Loop-aligned, spin-filtered slicing + per-thread BBVs (§III-B/C).
    let profile = {
        let mut span = obs.span("analyze.slicing", "pipeline");
        let mut slicer = LoopAlignedSlicer::new(program.clone(), &dcfg, nthreads, cfg.slice_base);
        slicer.set_spin_filter(cfg.filter_spin);
        slicer.set_policy(cfg.slice_policy);
        pinball.replay(program.clone(), &mut [&mut slicer], cfg.max_steps)?;
        let profile = slicer.finish();
        span.arg("slices", profile.slices.len());
        profile
    };
    if profile.slices.is_empty() {
        return Err(LoopPointError::NoSlices {
            reason: "profiling produced no slices".to_string(),
        });
    }
    obs.counter("analyze.slices")
        .add(profile.slices.len() as u64);
    lp_obs::lp_debug!("analyze: {} slices profiled", profile.slices.len());

    cfg.cancel.check()?;
    // 4. Cluster slice BBVs (§III-E) and pick representatives.
    let clustering = {
        let mut span = obs.span("analyze.clustering", "pipeline");
        let vectors: Vec<&[(u64, f64)]> = profile.slices.iter().map(|s| s.bbv.entries()).collect();
        let clustering = cluster(&vectors, &cfg.simpoint);
        span.arg("k", clustering.k);
        clustering
    };
    obs.gauge("analyze.k").set(clustering.k as f64);

    let mut select_span = obs.span("analyze.select", "pipeline");
    let mut looppoints = Vec::with_capacity(clustering.k);
    for (cluster_id, &rep) in clustering.representatives.iter().enumerate() {
        let rep_slice = &profile.slices[rep];
        let cluster_filtered: u64 = clustering
            .members(cluster_id)
            .map(|i| profile.slices[i].filtered_insts)
            .sum();
        let multiplier = if rep_slice.filtered_insts == 0 {
            0.0
        } else {
            cluster_filtered as f64 / rep_slice.filtered_insts as f64
        };
        looppoints.push(LoopPointRegion {
            slice_index: rep,
            cluster: cluster_id,
            start: rep_slice.start,
            end: rep_slice.end,
            multiplier,
            filtered_insts: rep_slice.filtered_insts,
            cluster_filtered_insts: cluster_filtered,
        });
    }
    select_span.arg("looppoints", looppoints.len());
    drop(select_span);
    obs.counter("analyze.looppoints")
        .add(looppoints.len() as u64);
    analyze_span.arg("looppoints", looppoints.len());

    Ok(Analysis {
        pinball,
        dcfg,
        profile,
        clustering,
        looppoints,
    })
}
