//! Live (Pac-Sim-style) online sampling: the execution loop that drives
//! `lp-live`'s streaming slicer and online classifier against the
//! simulator — no recording, no profiling prequel, one pass.
//!
//! # How a live run works
//!
//! The program executes **once**, in fast-forward (functional + warming)
//! mode, with the [`lp_live::StreamingSlicer`] riding the simulator's
//! per-retire hook. At each region boundary the slicer hands back a
//! spin-filtered BBV; the [`lp_live::OnlineClassifier`] matches it against
//! the live centroids and decides:
//!
//! * **simulate in detail** — new cluster, no IPC sample yet, stale, or
//!   low confidence: the region is re-run in detailed mode from a machine
//!   snapshot taken a configurable number of regions earlier (warmup), and
//!   its measured IPC becomes the cluster's prediction source;
//! * **predict** — a confident match: the region's cycles are
//!   extrapolated from the cluster's last detailed IPC, and no detailed
//!   simulation happens at all.
//!
//! Snapshots are cheap in-memory [`lp_isa::MachineState`] clones kept in a
//! short ring (the live analogue of checkpoint-driven warmup), so detailed
//! re-runs never re-execute the program prefix.
//!
//! Every decision is recorded; [`diagnose_live`] maps the outcome onto
//! `lp-diag`'s [`ClusterInput`] so live-mode error decomposes into
//! representativeness / warmup / residual exactly as for two-phase runs.

use crate::config::DEFAULT_MAX_STEPS;
use crate::error::LoopPointError;
use lp_diag::{attribute, ClusterInput, DiagReport, SelfProfile};
use lp_isa::{Machine, MachineState, Marker, Pc, Program};
use lp_live::{Action, Decision, DetailReason, LiveProgress, OnlineClassifier, StreamingSlicer};
use lp_obs::{names, Observer};
use lp_sim::{Mode, SimStats, Simulator, StopCond};
use lp_uarch::SimConfig;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Configuration of a live-mode run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Per-thread region size in spin-filtered instructions (the global
    /// target is `slice_base × nthreads`, as in two-phase profiling).
    pub slice_base: u64,
    /// Online classifier + simulate/predict policy tuning.
    pub online: lp_live::OnlineConfig,
    /// How many regions of fast-forward warmup a detailed re-run gets
    /// (snapshots are kept this many regions back; the live analogue of
    /// the checkpoint `warmup_slices`).
    pub warmup_regions: usize,
    /// Hard step budget for any single simulation segment.
    pub max_steps: u64,
    /// Observability handle the run's spans and `live.*` metrics go to.
    pub obs: Observer,
    /// Cooperative cancellation, checked at every region boundary.
    pub cancel: crate::CancelToken,
    /// Distributed trace context the run's spans parent under.
    pub trace: Option<lp_obs::TraceContext>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            slice_base: 25_000,
            online: lp_live::OnlineConfig::default(),
            warmup_regions: 1,
            max_steps: DEFAULT_MAX_STEPS,
            obs: lp_obs::global(),
            cancel: crate::CancelToken::default(),
            trace: None,
        }
    }
}

impl LiveConfig {
    /// A configuration with a custom per-thread region size.
    pub fn with_slice_base(slice_base: u64) -> Self {
        LiveConfig {
            slice_base,
            ..Default::default()
        }
    }

    /// Routes this run's spans and metrics to `obs` (builder style).
    #[must_use]
    pub fn with_observer(mut self, obs: Observer) -> Self {
        self.obs = obs;
        self
    }

    /// Installs the cancellation token this run honors (builder style).
    #[must_use]
    pub fn with_cancel(mut self, cancel: crate::CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Parents this run's spans under `trace` (builder style).
    #[must_use]
    pub fn with_trace(mut self, trace: Option<lp_obs::TraceContext>) -> Self {
        self.trace = trace;
        self
    }
}

/// Detailed statistics of one region's detailed (re-)simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRepStats {
    /// Region index the stats belong to.
    pub region: usize,
    /// Detailed cycles of the region.
    pub cycles: u64,
    /// Instructions retired in the detailed window.
    pub instructions: u64,
    /// Instructions fast-forwarded before the detailed window (warmup).
    pub ff_instructions: u64,
}

/// One region of a live run: the classification decision plus accounting.
#[derive(Debug, Clone)]
pub struct LiveRegionRecord {
    /// The recorded classification decision (region index, cluster,
    /// spawned, distance, simulate-vs-predict).
    pub decision: Decision,
    /// Spin-filtered instructions in the region.
    pub filtered_insts: u64,
    /// All instructions in the region.
    pub total_insts: u64,
    /// The region's contribution to the running cycle estimate (detailed
    /// cycles when simulated, extrapolated cycles when predicted).
    pub est_cycles: f64,
    /// Detailed stats when the region was simulated in detail.
    pub detailed: Option<LiveRepStats>,
}

/// Per-cluster summary of a finished live run, shaped for diagnostics.
#[derive(Debug, Clone)]
pub struct LiveClusterSummary {
    /// Cluster id (spawn order).
    pub cluster: usize,
    /// Member regions (including the spawner).
    pub members: u64,
    /// Spin-filtered instructions across all member regions.
    pub filtered_insts: u64,
    /// Total estimated cycles across all member regions.
    pub est_cycles: f64,
    /// The cluster's live representative: its last detailed simulation.
    pub rep: LiveRepStats,
    /// Classify-time distance of the representative to the centroid.
    pub rep_distance: f64,
    /// Mean classify-time member distance to the centroid.
    pub mean_member_distance: f64,
    /// The cluster's final IPC sample.
    pub last_ipc: f64,
    /// Final prediction-error EWMA.
    pub err_ewma: f64,
}

/// Everything a finished live run produced.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Per-region records in execution order (the decision log with
    /// accounting attached).
    pub regions: Vec<LiveRegionRecord>,
    /// Per-cluster summaries, by cluster id.
    pub clusters: Vec<LiveClusterSummary>,
    /// Estimated whole-program cycles (detailed + extrapolated).
    pub est_total_cycles: f64,
    /// Regions simulated in detail.
    pub detailed_regions: usize,
    /// Regions predicted.
    pub predicted_regions: usize,
    /// Instructions inside detailed-simulated regions.
    pub detailed_insts: u64,
    /// Whole-program instruction count (all images).
    pub total_insts: u64,
    /// Whole-program spin-filtered instruction count.
    pub total_filtered: u64,
}

impl LiveOutcome {
    /// Fraction of regions simulated in detail (`0..=1`).
    pub fn detailed_fraction(&self) -> f64 {
        if self.regions.is_empty() {
            0.0
        } else {
            self.detailed_regions as f64 / self.regions.len() as f64
        }
    }

    /// Fraction of *instructions* inside detailed-simulated regions.
    pub fn detailed_inst_fraction(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.detailed_insts as f64 / self.total_insts as f64
        }
    }

    /// Estimated whole-program IPC.
    pub fn est_ipc(&self) -> f64 {
        if self.est_total_cycles > 0.0 {
            self.total_insts as f64 / self.est_total_cycles
        } else {
            0.0
        }
    }

    /// The decision log lines, in region order (stable across runs for a
    /// fixed configuration — see the determinism property test).
    pub fn decision_log(&self) -> Vec<String> {
        self.regions.iter().map(|r| r.decision.log_line()).collect()
    }
}

/// A machine snapshot taken at a region start, with the loop-header
/// execution counts at that moment (so a re-run can seed marker watches).
struct LiveCheckpoint {
    /// `None` means program reset (before the first region).
    state: Option<MachineState>,
    /// Warm microarchitectural state at the snapshot instant, so rewound
    /// detailed runs keep the caches and predictors the one live pass has
    /// been warming all along (`None` only for the program-reset entry).
    timing: Option<lp_sim::TimingModel>,
    counts: HashMap<Pc, u64>,
    /// Boundary the snapshot was taken at (`None` = program start).
    at: Option<Marker>,
}

/// Runs the whole program **once** in live mode: streaming slicing, online
/// classification, per-region simulate-or-predict (see module docs).
/// `progress` is called after every region and once more with
/// `done = true`; pass a no-op closure when partial results are not
/// needed.
///
/// # Errors
/// Simulator failures, step-budget exhaustion, or
/// [`LoopPointError::Cancelled`] when the config's token trips.
pub fn analyze_live(
    program: &Arc<Program>,
    nthreads: usize,
    cfg: &LiveConfig,
    simcfg: &SimConfig,
    progress: &mut dyn FnMut(&LiveProgress),
) -> Result<LiveOutcome, LoopPointError> {
    let _trace_guard = cfg.trace.as_ref().map(|t| t.attach());
    let obs = &cfg.obs;
    let mut span = obs.span(names::SPAN_LIVE_RUN, names::CAT_LIVE);
    span.arg("nthreads", nthreads);
    span.arg("slice_base", cfg.slice_base);

    let mut sim = Simulator::new(program.clone(), nthreads, simcfg.clone());
    sim.set_observer(obs.clone());
    let mut slicer = StreamingSlicer::new(program.clone(), nthreads, cfg.slice_base);
    let mut classifier = OnlineClassifier::new(cfg.online);

    // Snapshot ring: starts of the last `warmup_regions + 1` regions; the
    // front entry is where a detailed re-run restores from.
    let mut ring: VecDeque<LiveCheckpoint> = VecDeque::new();
    ring.push_back(LiveCheckpoint {
        state: None,
        timing: None,
        counts: HashMap::new(),
        at: None,
    });

    let mut regions: Vec<LiveRegionRecord> = Vec::new();
    let mut cluster_est_cycles: Vec<f64> = Vec::new();
    let mut cluster_rep: Vec<Option<LiveRepStats>> = Vec::new();
    let mut est_total_cycles = 0.0f64;
    let mut detailed_regions = 0usize;
    let mut predicted_regions = 0usize;
    let mut detailed_insts = 0u64;

    let mut program_done = false;
    while !program_done {
        cfg.cancel.check()?;
        sim.run_with(Mode::FastForward, None, cfg.max_steps, &mut |r| {
            slicer.on_retire(r)
        })?;
        let region = match slicer.take_region() {
            Some(r) => r,
            None => {
                // The program finished: close the trailing partial region.
                program_done = true;
                match slicer.finish_region() {
                    Some(r) => r,
                    None => break,
                }
            }
        };

        let decision = classifier.classify(region.index, &region.bbv, region.filtered_insts);
        let mut detailed: Option<LiveRepStats> = None;
        let est_cycles = match decision.action {
            Action::Detail(reason) => {
                let ckpt = ring.front().expect("snapshot ring is never empty");
                let stats = simulate_region_detailed(
                    &region,
                    ckpt,
                    program,
                    nthreads,
                    simcfg,
                    cfg.max_steps,
                    obs,
                )?;
                classifier.observe_detailed(
                    decision.cluster,
                    region.index,
                    decision.distance,
                    stats.ipc(),
                );
                detailed_regions += 1;
                detailed_insts += region.total_insts;
                obs.counter(names::LIVE_DETAILED).inc();
                if reason != DetailReason::NewCluster && reason != DetailReason::NoSample {
                    obs.counter(names::LIVE_RESIMS).inc();
                }
                detailed = Some(LiveRepStats {
                    region: region.index,
                    cycles: stats.cycles,
                    instructions: stats.instructions,
                    ff_instructions: stats.ff_instructions,
                });
                stats.cycles as f64
            }
            Action::Predict { ipc } => {
                predicted_regions += 1;
                obs.counter(names::LIVE_PREDICTED).inc();
                if ipc > 0.0 {
                    region.total_insts as f64 / ipc
                } else {
                    0.0
                }
            }
        };
        est_total_cycles += est_cycles;
        obs.counter(names::LIVE_REGIONS).inc();

        if decision.cluster >= cluster_est_cycles.len() {
            cluster_est_cycles.push(0.0);
            cluster_rep.push(None);
        }
        cluster_est_cycles[decision.cluster] += est_cycles;
        if let Some(rep) = detailed {
            cluster_rep[decision.cluster] = Some(rep);
        }
        regions.push(LiveRegionRecord {
            decision,
            filtered_insts: region.filtered_insts,
            total_insts: region.total_insts,
            est_cycles,
            detailed,
        });

        // Roll the snapshot ring forward to the next region's start.
        if !program_done {
            while ring.len() > cfg.warmup_regions {
                ring.pop_front();
            }
            ring.push_back(LiveCheckpoint {
                state: Some(sim.machine().snapshot()),
                timing: Some(sim.timing_checkpoint()),
                counts: slicer.header_counts().clone(),
                at: region.end,
            });
        }

        let snapshot = LiveProgress {
            regions: regions.len() as u64,
            clusters: classifier.k() as u64,
            detailed: detailed_regions as u64,
            predicted: predicted_regions as u64,
            detailed_pct: detailed_regions as f64 / regions.len() as f64,
            est_cycles: est_total_cycles,
            est_ipc: if est_total_cycles > 0.0 {
                slicer.total_insts() as f64 / est_total_cycles
            } else {
                0.0
            },
            done: false,
        };
        obs.gauge(names::LIVE_CLUSTERS)
            .set(snapshot.clusters as f64);
        obs.gauge(names::LIVE_DETAILED_PCT)
            .set(snapshot.detailed_pct);
        obs.gauge(names::LIVE_EST_IPC).set(snapshot.est_ipc);
        progress(&snapshot);
    }

    let clusters: Vec<LiveClusterSummary> = classifier
        .clusters()
        .iter()
        .enumerate()
        .map(|(c, cl)| LiveClusterSummary {
            cluster: c,
            members: cl.members,
            filtered_insts: cl.filtered_insts,
            est_cycles: cluster_est_cycles[c],
            rep: cluster_rep[c].expect("every cluster detail-simulates its spawning region"),
            rep_distance: cl.last_detailed_distance,
            mean_member_distance: cl.mean_member_distance(),
            last_ipc: cl.last_ipc.unwrap_or(0.0),
            err_ewma: cl.err_ewma,
        })
        .collect();

    let outcome = LiveOutcome {
        clusters,
        est_total_cycles,
        detailed_regions,
        predicted_regions,
        detailed_insts,
        total_insts: slicer.total_insts(),
        total_filtered: slicer.total_filtered(),
        regions,
    };
    progress(&LiveProgress {
        regions: outcome.regions.len() as u64,
        clusters: outcome.clusters.len() as u64,
        detailed: outcome.detailed_regions as u64,
        predicted: outcome.predicted_regions as u64,
        detailed_pct: outcome.detailed_fraction(),
        est_cycles: outcome.est_total_cycles,
        est_ipc: outcome.est_ipc(),
        done: true,
    });
    span.arg("regions", outcome.regions.len());
    span.arg("clusters", outcome.clusters.len());
    span.arg("detailed", outcome.detailed_regions);
    Ok(outcome)
}

/// Re-runs one region in detailed mode from the snapshot at `ckpt`:
/// fast-forward (warming) from the snapshot to the region's start marker,
/// then detailed to its end marker — binary-driven warmup, exactly like
/// the two-phase checkpoint path.
fn simulate_region_detailed(
    region: &lp_live::LiveRegion,
    ckpt: &LiveCheckpoint,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    max_steps: u64,
    obs: &Observer,
) -> Result<SimStats, LoopPointError> {
    let mut span = obs.span(names::SPAN_LIVE_DETAIL, names::CAT_LIVE);
    span.arg("region", region.index);
    let mut rsim = match (&ckpt.state, &ckpt.timing) {
        (Some(state), Some(timing)) => Simulator::from_machine_warm(
            Machine::from_snapshot(program.clone(), state),
            timing.clone(),
        ),
        _ => Simulator::new(program.clone(), nthreads, simcfg.clone()),
    };
    rsim.set_observer(obs.clone());
    // Warm caches and predictors during the fast-forward leg, exactly as
    // the two-phase checkpoint path does for its warmup slices.
    rsim.set_ff_warming(true);
    for m in [region.start, region.end].into_iter().flatten() {
        rsim.watch_pc_from(m.pc, ckpt.counts.get(&m.pc).copied().unwrap_or(0));
    }
    if region.start != ckpt.at {
        if let Some(s) = region.start {
            rsim.run(Mode::FastForward, Some(StopCond::Marker(s)), max_steps)?;
        }
    }
    let stats = rsim.run(Mode::Detailed, region.end.map(StopCond::Marker), max_steps)?;
    span.arg("cycles", stats.cycles);
    span.arg("instructions", stats.instructions);
    Ok(stats)
}

/// Compact, serializable outcome of one live job (the lp-farm wire format
/// embeds this verbatim, mirroring [`crate::JobSummary`] for two-phase
/// jobs).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSummary {
    /// Regions classified.
    pub regions: usize,
    /// Clusters spawned.
    pub clusters: usize,
    /// Regions simulated in detail.
    pub detailed_regions: usize,
    /// Regions predicted.
    pub predicted_regions: usize,
    /// Fraction of regions simulated in detail (`0..=1`).
    pub detailed_pct: f64,
    /// Estimated whole-program cycles.
    pub est_cycles: f64,
    /// Estimated whole-program IPC.
    pub est_ipc: f64,
    /// Whole-program instruction count.
    pub total_insts: u64,
}

impl LiveSummary {
    /// Builds the summary from a finished outcome.
    pub fn from_outcome(o: &LiveOutcome) -> Self {
        LiveSummary {
            regions: o.regions.len(),
            clusters: o.clusters.len(),
            detailed_regions: o.detailed_regions,
            predicted_regions: o.predicted_regions,
            detailed_pct: o.detailed_fraction(),
            est_cycles: o.est_total_cycles,
            est_ipc: o.est_ipc(),
            total_insts: o.total_insts,
        }
    }

    /// The summary as a JSON object (stable field names).
    pub fn to_value(&self) -> lp_obs::json::Value {
        use lp_obs::json::Value;
        Value::Obj(vec![
            ("mode".to_string(), Value::Str("live".to_string())),
            ("regions".to_string(), Value::Int(self.regions as i128)),
            ("clusters".to_string(), Value::Int(self.clusters as i128)),
            (
                "detailed_regions".to_string(),
                Value::Int(self.detailed_regions as i128),
            ),
            (
                "predicted_regions".to_string(),
                Value::Int(self.predicted_regions as i128),
            ),
            ("detailed_pct".to_string(), Value::Num(self.detailed_pct)),
            ("est_cycles".to_string(), Value::Num(self.est_cycles)),
            ("est_ipc".to_string(), Value::Num(self.est_ipc)),
            (
                "total_insts".to_string(),
                Value::Int(self.total_insts as i128),
            ),
        ])
    }
}

/// Runs one live job end to end and returns its compact summary — the
/// live-mode sibling of [`crate::run_job`], used by the lp-farm backend.
/// `progress` receives the same per-region partials [`analyze_live`]
/// emits.
///
/// # Errors
/// As [`analyze_live`].
pub fn run_live_job(
    program: &Arc<Program>,
    nthreads: usize,
    cfg: &LiveConfig,
    simcfg: &SimConfig,
    progress: &mut dyn FnMut(&LiveProgress),
) -> Result<LiveSummary, LoopPointError> {
    let outcome = analyze_live(program, nthreads, cfg, simcfg, progress)?;
    Ok(LiveSummary::from_outcome(&outcome))
}

/// Builds the accuracy-attribution report for one live run — the live
/// sibling of [`crate::diagnose`]: each live cluster's representative is
/// its *last detailed simulation*, the multiplier is the ratio of the
/// cluster's estimated cycles to that representative's cycles (so
/// predicted contributions sum exactly to the live estimate), and the
/// distances come from classify time. `lp-diag` then decomposes the error
/// into representativeness / warmup / residual exactly as for two-phase
/// runs.
pub fn diagnose_live(
    workload: &str,
    nthreads: usize,
    outcome: &LiveOutcome,
    full: Option<&SimStats>,
    obs: &Observer,
) -> DiagReport {
    let mut span = obs.span(names::SPAN_DIAG_REPORT, names::CAT_DIAG);
    span.arg("workload", workload);
    span.arg("clusters", outcome.clusters.len());
    span.arg("mode", "live");

    let inputs: Vec<ClusterInput> = outcome
        .clusters
        .iter()
        .map(|c| ClusterInput {
            cluster: c.cluster,
            slice_index: c.rep.region,
            multiplier: if c.rep.cycles > 0 {
                c.est_cycles / c.rep.cycles as f64
            } else {
                0.0
            },
            cluster_filtered_insts: c.filtered_insts,
            rep_cycles: c.rep.cycles,
            rep_instructions: c.rep.instructions,
            ff_instructions: c.rep.ff_instructions,
            rep_distance: c.rep_distance,
            mean_member_distance: c.mean_member_distance,
        })
        .collect();

    let actual = full.map_or(outcome.est_total_cycles, |s| s.cycles as f64);
    let attribution = attribute(&inputs, actual);

    obs.counter(names::DIAG_REPORTS).inc();
    if attribution.error_pct.is_finite() {
        obs.gauge(names::DIAG_ERROR_PCT).set(attribution.error_pct);
    }
    obs.gauge(names::DIAG_CLUSTERS)
        .set(attribution.clusters.len() as f64);

    let profile = SelfProfile::from_events(&obs.trace_events());
    DiagReport::new(workload, nthreads as u64, attribution, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_whole;
    use crate::testutil::phased_program;
    use lp_omp::WaitPolicy;

    fn live_cfg() -> LiveConfig {
        LiveConfig {
            obs: Observer::enabled(),
            ..LiveConfig::with_slice_base(2_000)
        }
    }

    #[test]
    fn live_run_skips_detail_for_repeated_phases() {
        let nthreads = 2;
        let program = phased_program(nthreads, WaitPolicy::Passive, 10);
        let simcfg = SimConfig::gainestown(nthreads);
        let mut partials = Vec::new();
        let outcome = analyze_live(&program, nthreads, &live_cfg(), &simcfg, &mut |p| {
            partials.push(p.clone())
        })
        .unwrap();

        assert!(outcome.regions.len() >= 4, "{}", outcome.regions.len());
        assert_eq!(
            outcome.detailed_regions + outcome.predicted_regions,
            outcome.regions.len()
        );
        assert!(
            outcome.predicted_regions > 0,
            "repeated phases must be predicted, not re-simulated"
        );
        assert!(outcome.detailed_fraction() < 1.0);
        assert!(outcome.est_total_cycles > 0.0);
        // Partial results: one per region plus the final done line.
        assert_eq!(partials.len(), outcome.regions.len() + 1);
        assert!(partials.last().unwrap().done);
        assert!(!partials[0].done);
        // The estimate lands near the measured whole-program run.
        let full = simulate_whole(&program, nthreads, &simcfg).unwrap();
        let err = (outcome.est_total_cycles - full.cycles as f64).abs() / full.cycles as f64;
        assert!(
            err < 0.25,
            "live estimate off by {:.1}% (est {}, actual {})",
            err * 100.0,
            outcome.est_total_cycles,
            full.cycles
        );
    }

    #[test]
    fn live_runs_are_deterministic() {
        let nthreads = 2;
        let program = phased_program(nthreads, WaitPolicy::Passive, 6);
        let simcfg = SimConfig::gainestown(nthreads);
        let run = || {
            analyze_live(&program, nthreads, &live_cfg(), &simcfg, &mut |_| {})
                .unwrap()
                .decision_log()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn diagnose_live_errors_sum_exactly() {
        let nthreads = 2;
        let program = phased_program(nthreads, WaitPolicy::Passive, 8);
        let simcfg = SimConfig::gainestown(nthreads);
        let obs = Observer::enabled();
        let cfg = LiveConfig {
            obs: obs.clone(),
            ..LiveConfig::with_slice_base(2_000)
        };
        let outcome = analyze_live(&program, nthreads, &cfg, &simcfg, &mut |_| {}).unwrap();
        let full = simulate_whole(&program, nthreads, &simcfg).unwrap();

        let report = diagnose_live("phased", nthreads, &outcome, Some(&full), &obs);
        assert_eq!(report.clusters.len(), outcome.clusters.len());
        // Σ pred_c equals the live estimate, so attributed errors sum to
        // the end-to-end live error exactly.
        assert!(
            (report.predicted_cycles - outcome.est_total_cycles).abs()
                <= 1e-9 * outcome.est_total_cycles.max(1.0)
        );
        let sum: f64 = report.clusters.iter().map(|c| c.error_cycles).sum();
        assert!(
            (sum - report.error_cycles).abs() <= 1e-9 * report.error_cycles.abs().max(1.0),
            "Σe_c = {sum} vs {}",
            report.error_cycles
        );
    }

    #[test]
    fn cancellation_is_honored_between_regions() {
        let nthreads = 2;
        let program = phased_program(nthreads, WaitPolicy::Passive, 4);
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        let cfg = LiveConfig {
            cancel,
            ..live_cfg()
        };
        let err = analyze_live(
            &program,
            nthreads,
            &cfg,
            &SimConfig::gainestown(nthreads),
            &mut |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, LoopPointError::Cancelled), "{err}");
    }

    #[test]
    fn live_summary_serializes_every_field() {
        let nthreads = 2;
        let program = phased_program(nthreads, WaitPolicy::Passive, 5);
        let summary = run_live_job(
            &program,
            nthreads,
            &live_cfg(),
            &SimConfig::gainestown(nthreads),
            &mut |_| {},
        )
        .unwrap();
        let v = summary.to_value();
        for key in [
            "mode",
            "regions",
            "clusters",
            "detailed_regions",
            "predicted_regions",
            "detailed_pct",
            "est_cycles",
            "est_ipc",
            "total_insts",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(v.get("mode").unwrap().as_str(), Some("live"));
    }
}
