//! Persistence of analysis results through the artifact store.
//!
//! The front half of the pipeline — record, replay, DCFG, slicing,
//! clustering, checkpoint generation — is deterministic in `(program,
//! nthreads, analysis configuration)`. This module derives a 128-bit
//! content key from exactly those inputs ([`analysis_key`]) and persists /
//! restores the four analysis artifacts plus the prepared region
//! checkpoints through an [`lp_store::Store`]:
//!
//! | kind          | payload                                            |
//! |---------------|----------------------------------------------------|
//! | `Pinball`     | canonical pinball bytes (`Pinball::to_bytes`)      |
//! | `Analysis`    | DCFG parts (blocks/edges/routines/loops) + regions |
//! | `BbvMatrix`   | the loop-aligned, spin-filtered slice profile      |
//! | `Clustering`  | assignments, representatives, BIC/SSE scores       |
//! | `Checkpoints` | prepared region states + watch counts              |
//!
//! All encodings are **canonical**: maps are sorted before writing and
//! floats travel as IEEE bit patterns, so a warm load re-encodes to exactly
//! the bytes a cold run would produce — the equivalence CI gate depends on
//! this. Decoders are strict; any shape violation falls back to
//! recomputation (never a panic), the same way a checksum failure does one
//! layer below.

use crate::config::LoopPointConfig;
use crate::error::LoopPointError;
use crate::pipeline::{analyze, Analysis, LoopPointRegion};
use crate::simulate::{prepare_region_checkpoints, PreparedCheckpoints, PreparedRegion};
use lp_bbv::{Slice, SliceProfile, SparseVec};
use lp_dcfg::{BasicBlock, BlockId, Dcfg, Edge, LoopInfo, Routine};
use lp_isa::{MachineState, Marker, Pc, Program};
use lp_pinball::Pinball;
use lp_simpoint::Clustering;
use lp_store::{ArtifactKind, Store, StoreKey, StoreKeyBuilder};
use std::sync::Arc;

/// Bumped whenever any payload encoding below changes shape. Folded into
/// the store key, so old artifacts become unreachable rather than
/// mis-decoded. (v2: clustering carries per-point centroid distances.)
const PERSIST_VERSION: u64 = 2;

// ---------------------------------------------------------------------------
// Store keys
// ---------------------------------------------------------------------------

/// The content key identifying one analysis: the exact program bytes, the
/// thread count, and every [`LoopPointConfig`] field that influences the
/// analysis result.
///
/// Deliberately **excluded**: `max_steps` (a safety budget, not a
/// behaviour), `simpoint.parallel_sweep` (bit-identical by construction),
/// and the observer handle.
pub fn analysis_key(program: &Program, nthreads: usize, cfg: &LoopPointConfig) -> StoreKey {
    let mut kb = StoreKeyBuilder::new("looppoint/analysis");
    kb.field_u64("persist_version", PERSIST_VERSION)
        .field_bytes("program", &program.canonical_bytes())
        .field_u64("nthreads", nthreads as u64)
        .field_u64("slice_base", cfg.slice_base)
        .field_bool("filter_spin", cfg.filter_spin)
        .field_str("slice_policy", &format!("{:?}", cfg.slice_policy))
        .field_u64("record.quantum", cfg.record.quantum)
        .field_u64("record.max_steps", cfg.record.max_steps)
        .field_u64("simpoint.max_k", cfg.simpoint.max_k as u64)
        .field_u64("simpoint.proj_dims", cfg.simpoint.proj_dims as u64)
        .field_u64("simpoint.seed", cfg.simpoint.seed)
        .field_f64("simpoint.bic_threshold", cfg.simpoint.bic_threshold)
        .field_u64("simpoint.max_iters", cfg.simpoint.max_iters as u64);
    kb.finish()
}

/// The content key for prepared region checkpoints: the analysis key plus
/// the warmup window they were generated with.
pub fn checkpoints_key(analysis_key: StoreKey, warmup_slices: usize) -> StoreKey {
    let mut kb = StoreKeyBuilder::new("looppoint/checkpoints");
    kb.field_bytes("analysis_key", &analysis_key.0)
        .field_u64("warmup_slices", warmup_slices as u64);
    kb.finish()
}

// ---------------------------------------------------------------------------
// Canonical byte writer / strict reader
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_f64_slice(out: &mut Vec<u8>, v: &[f64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_f64(out, x);
    }
}

fn put_usize_slice(out: &mut Vec<u8>, v: &[usize]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u64(out, x as u64);
    }
}

fn put_u64_slice(out: &mut Vec<u8>, v: &[u64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u64(out, x);
    }
}

fn put_opt_marker(out: &mut Vec<u8>, m: &Option<Marker>) {
    match m {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_u64(out, m.pc.to_word());
            put_u64(out, m.count);
        }
    }
}

/// Strict little-endian cursor; every read is bounds-checked.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, String>;

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length prefix with a sanity cap (decoders never pre-allocate more
    /// than the payload could possibly hold).
    fn len(&mut self) -> DecodeResult<usize> {
        let n = self.u64()? as usize;
        if n > self.b.len().saturating_sub(self.pos) + 1 {
            return Err(format!("implausible length {n} at byte {}", self.pos));
        }
        Ok(n)
    }

    fn u64_vec(&mut self) -> DecodeResult<Vec<u64>> {
        let n = self.len()?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn f64_vec(&mut self) -> DecodeResult<Vec<f64>> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn usize_vec(&mut self) -> DecodeResult<Vec<usize>> {
        Ok(self.u64_vec()?.into_iter().map(|x| x as usize).collect())
    }

    fn opt_marker(&mut self) -> DecodeResult<Option<Marker>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let pc = Pc::from_word(self.u64()?);
                let count = self.u64()?;
                Ok(Some(Marker::new(pc, count)))
            }
            t => Err(format!("bad Option<Marker> tag {t}")),
        }
    }

    fn finish(self) -> DecodeResult<()> {
        if self.pos != self.b.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.b.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Payload encodings
// ---------------------------------------------------------------------------

/// Encodes the slice profile (the BBV matrix artifact).
pub fn encode_profile(p: &SliceProfile) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, p.slice_target);
    put_u64(&mut out, p.nthreads as u64);
    put_u64(&mut out, p.total_filtered);
    put_u64(&mut out, p.total_insts);
    put_u64(&mut out, p.slices.len() as u64);
    for s in &p.slices {
        put_u64(&mut out, s.index as u64);
        put_opt_marker(&mut out, &s.start);
        put_opt_marker(&mut out, &s.end);
        put_u64(&mut out, s.bbv.entries().len() as u64);
        for &(dim, w) in s.bbv.entries() {
            put_u64(&mut out, dim);
            put_f64(&mut out, w);
        }
        put_u64(&mut out, s.filtered_insts);
        put_u64(&mut out, s.total_insts);
        put_u64_slice(&mut out, &s.per_thread_insts);
    }
    out
}

/// Decodes a slice profile.
pub fn decode_profile(bytes: &[u8]) -> DecodeResult<SliceProfile> {
    let mut r = Rd::new(bytes);
    let slice_target = r.u64()?;
    let nthreads = r.u64()? as usize;
    let total_filtered = r.u64()?;
    let total_insts = r.u64()?;
    let nslices = r.len()?;
    let mut slices = Vec::with_capacity(nslices);
    for _ in 0..nslices {
        let index = r.u64()? as usize;
        let start = r.opt_marker()?;
        let end = r.opt_marker()?;
        let nnz = r.len()?;
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let dim = r.u64()?;
            let w = r.f64()?;
            entries.push((dim, w));
        }
        let bbv = SparseVec::from_entries(entries);
        let filtered_insts = r.u64()?;
        let total = r.u64()?;
        let per_thread_insts = r.u64_vec()?;
        slices.push(Slice {
            index,
            start,
            end,
            bbv,
            filtered_insts,
            total_insts: total,
            per_thread_insts,
        });
    }
    r.finish()?;
    Ok(SliceProfile {
        slices,
        slice_target,
        nthreads,
        total_filtered,
        total_insts,
    })
}

/// Encodes the clustering result.
pub fn encode_clustering(c: &Clustering) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, c.k as u64);
    put_usize_slice(&mut out, &c.assignments);
    put_usize_slice(&mut out, &c.representatives);
    put_usize_slice(&mut out, &c.cluster_sizes);
    put_f64_slice(&mut out, &c.point_distances);
    put_f64(&mut out, c.bic);
    put_f64(&mut out, c.sse);
    out
}

/// Decodes a clustering result.
pub fn decode_clustering(bytes: &[u8]) -> DecodeResult<Clustering> {
    let mut r = Rd::new(bytes);
    let k = r.u64()? as usize;
    let assignments = r.usize_vec()?;
    let representatives = r.usize_vec()?;
    let cluster_sizes = r.usize_vec()?;
    let point_distances = r.f64_vec()?;
    let bic = r.f64()?;
    let sse = r.f64()?;
    r.finish()?;
    if representatives.len() != k || cluster_sizes.len() != k {
        return Err(format!("clustering k={k} disagrees with vector lengths"));
    }
    if point_distances.len() != assignments.len() {
        return Err(format!(
            "clustering point_distances len {} disagrees with {} assignments",
            point_distances.len(),
            assignments.len()
        ));
    }
    Ok(Clustering {
        k,
        assignments,
        representatives,
        cluster_sizes,
        point_distances,
        bic,
        sse,
    })
}

fn put_looppoint(out: &mut Vec<u8>, lp: &LoopPointRegion) {
    put_u64(out, lp.slice_index as u64);
    put_u64(out, lp.cluster as u64);
    put_opt_marker(out, &lp.start);
    put_opt_marker(out, &lp.end);
    put_f64(out, lp.multiplier);
    put_u64(out, lp.filtered_insts);
    put_u64(out, lp.cluster_filtered_insts);
}

fn read_looppoint(r: &mut Rd<'_>) -> DecodeResult<LoopPointRegion> {
    Ok(LoopPointRegion {
        slice_index: r.u64()? as usize,
        cluster: r.u64()? as usize,
        start: r.opt_marker()?,
        end: r.opt_marker()?,
        multiplier: r.f64()?,
        filtered_insts: r.u64()?,
        cluster_filtered_insts: r.u64()?,
    })
}

/// Encodes the analysis metadata artifact: DCFG parts + selected regions.
pub fn encode_analysis_meta(dcfg: &Dcfg, looppoints: &[LoopPointRegion]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, dcfg.blocks().len() as u64);
    for b in dcfg.blocks() {
        put_u64(&mut out, u64::from(b.id.0));
        put_u64(&mut out, b.leader.to_word());
        put_u64(&mut out, u64::from(b.len));
        put_u64(&mut out, b.executions);
    }
    put_u64(&mut out, dcfg.edges().len() as u64);
    for e in dcfg.edges() {
        put_u64(&mut out, e.from.to_word());
        put_u64(&mut out, e.to.to_word());
        put_u64(&mut out, e.total);
        put_u64_slice(&mut out, &e.per_thread);
    }
    put_u64(&mut out, dcfg.routines().len() as u64);
    for rt in dcfg.routines() {
        put_u64(&mut out, rt.entry.to_word());
        put_u64(&mut out, rt.blocks.len() as u64);
        for b in &rt.blocks {
            put_u64(&mut out, u64::from(b.0));
        }
    }
    put_u64(&mut out, dcfg.loops().len() as u64);
    for l in dcfg.loops() {
        put_u64(&mut out, l.header.to_word());
        put_u64(&mut out, u64::from(l.header_block.0));
        put_u64(&mut out, l.blocks.len() as u64);
        for b in &l.blocks {
            put_u64(&mut out, u64::from(b.0));
        }
        put_u64(&mut out, l.back_edge_trips);
        put_u64(&mut out, l.iterations);
    }
    put_u64(&mut out, looppoints.len() as u64);
    for lp in looppoints {
        put_looppoint(&mut out, lp);
    }
    out
}

/// Decodes the analysis metadata artifact, rebuilding the [`Dcfg`] via
/// [`Dcfg::from_raw_parts`] (no replay).
pub fn decode_analysis_meta(
    bytes: &[u8],
    program: &Arc<Program>,
) -> DecodeResult<(Dcfg, Vec<LoopPointRegion>)> {
    let mut r = Rd::new(bytes);
    let nblocks = r.len()?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        blocks.push(BasicBlock {
            id: BlockId(r.u64()? as u32),
            leader: Pc::from_word(r.u64()?),
            len: r.u64()? as u32,
            executions: r.u64()?,
        });
    }
    let nedges = r.len()?;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        edges.push(Edge {
            from: Pc::from_word(r.u64()?),
            to: Pc::from_word(r.u64()?),
            total: r.u64()?,
            per_thread: r.u64_vec()?,
        });
    }
    let nroutines = r.len()?;
    let mut routines = Vec::with_capacity(nroutines);
    for _ in 0..nroutines {
        let entry = Pc::from_word(r.u64()?);
        let nb = r.len()?;
        let mut rblocks = Vec::with_capacity(nb);
        for _ in 0..nb {
            rblocks.push(BlockId(r.u64()? as u32));
        }
        routines.push(Routine {
            entry,
            blocks: rblocks,
        });
    }
    let nloops = r.len()?;
    let mut loops = Vec::with_capacity(nloops);
    for _ in 0..nloops {
        let header = Pc::from_word(r.u64()?);
        let header_block = BlockId(r.u64()? as u32);
        let nb = r.len()?;
        let mut lblocks = Vec::with_capacity(nb);
        for _ in 0..nb {
            lblocks.push(BlockId(r.u64()? as u32));
        }
        let back_edge_trips = r.u64()?;
        let iterations = r.u64()?;
        loops.push(LoopInfo {
            header,
            header_block,
            blocks: lblocks,
            back_edge_trips,
            iterations,
        });
    }
    let nlp = r.len()?;
    let mut looppoints = Vec::with_capacity(nlp);
    for _ in 0..nlp {
        looppoints.push(read_looppoint(&mut r)?);
    }
    r.finish()?;
    for b in &blocks {
        if program.inst(b.leader).is_none() {
            return Err(format!("block leader {:?} outside program", b.leader));
        }
    }
    let dcfg = Dcfg::from_raw_parts(program.clone(), blocks, edges, routines, loops);
    Ok((dcfg, looppoints))
}

/// Encodes prepared region checkpoints. `replay_passes` is *not* stored:
/// a warm load performs zero replays by definition.
pub fn encode_checkpoints(prepared: &PreparedCheckpoints) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, prepared.regions.len() as u64);
    for p in &prepared.regions {
        put_looppoint(&mut out, &p.region);
        match &p.checkpoint {
            None => out.push(0),
            Some((state, counts)) => {
                out.push(1);
                let mut state_bytes = Vec::with_capacity(state.encoded_len());
                state
                    .write_to(&mut state_bytes)
                    .expect("Vec<u8> writes are infallible");
                put_u64(&mut out, state_bytes.len() as u64);
                out.extend_from_slice(&state_bytes);
                put_u64(&mut out, counts.len() as u64);
                for &(pc, count) in counts {
                    put_u64(&mut out, pc.to_word());
                    put_u64(&mut out, count);
                }
            }
        }
    }
    out
}

/// Decodes prepared region checkpoints (with `replay_passes = 0`).
pub fn decode_checkpoints(bytes: &[u8]) -> DecodeResult<PreparedCheckpoints> {
    let mut r = Rd::new(bytes);
    let n = r.len()?;
    let mut regions = Vec::with_capacity(n);
    for _ in 0..n {
        let region = read_looppoint(&mut r)?;
        let checkpoint = match r.u8()? {
            0 => None,
            1 => {
                let len = r.len()?;
                let state_bytes = r.take(len)?;
                let state = MachineState::read_from(&mut &state_bytes[..])
                    .map_err(|e| format!("bad machine state: {e}"))?;
                let ncounts = r.len()?;
                let mut counts = Vec::with_capacity(ncounts);
                for _ in 0..ncounts {
                    let pc = Pc::from_word(r.u64()?);
                    let count = r.u64()?;
                    counts.push((pc, count));
                }
                Some((state, counts))
            }
            t => return Err(format!("bad checkpoint tag {t}")),
        };
        regions.push(PreparedRegion { region, checkpoint });
    }
    r.finish()?;
    Ok(PreparedCheckpoints {
        regions,
        replay_passes: 0,
    })
}

// ---------------------------------------------------------------------------
// Cached pipeline entry points
// ---------------------------------------------------------------------------

fn try_load_analysis(program: &Arc<Program>, key: StoreKey, store: &Store) -> Option<Analysis> {
    let pinball_bytes = store.load(&key, ArtifactKind::Pinball)?;
    let meta_bytes = store.load(&key, ArtifactKind::Analysis)?;
    let profile_bytes = store.load(&key, ArtifactKind::BbvMatrix)?;
    let clustering_bytes = store.load(&key, ArtifactKind::Clustering)?;
    let decoded = (|| -> DecodeResult<Analysis> {
        let pinball =
            Pinball::from_bytes(&pinball_bytes).map_err(|e| format!("bad pinball: {e}"))?;
        pinball
            .check_program(program)
            .map_err(|e| format!("pinball/program mismatch: {e}"))?;
        let (dcfg, looppoints) = decode_analysis_meta(&meta_bytes, program)?;
        let profile = decode_profile(&profile_bytes)?;
        let clustering = decode_clustering(&clustering_bytes)?;
        Ok(Analysis {
            pinball,
            dcfg,
            profile,
            clustering,
            looppoints,
        })
    })();
    match decoded {
        Ok(a) => Some(a),
        Err(e) => {
            // Checksums passed but the payload shape is wrong — a format
            // drift that escaped the versioned key. Recompute.
            lp_obs::lp_warn!("store: cached analysis undecodable ({e}); recomputing");
            None
        }
    }
}

fn save_analysis(analysis: &Analysis, key: StoreKey, store: &Store) {
    let artifacts: [(ArtifactKind, Vec<u8>); 4] = [
        (ArtifactKind::Pinball, analysis.pinball.to_bytes()),
        (
            ArtifactKind::Analysis,
            encode_analysis_meta(&analysis.dcfg, &analysis.looppoints),
        ),
        (ArtifactKind::BbvMatrix, encode_profile(&analysis.profile)),
        (
            ArtifactKind::Clustering,
            encode_clustering(&analysis.clustering),
        ),
    ];
    for (kind, payload) in artifacts {
        if let Err(e) = store.save(&key, kind, &payload) {
            // A full disk or read-only store must never fail the pipeline:
            // caching is an optimization.
            lp_obs::lp_warn!("store: failed to persist {kind} artifact: {e}");
        }
    }
}

/// [`analyze`] with a persistent cache: consults `store` under
/// [`analysis_key`] first, and on a miss runs the full analysis and
/// persists all four artifacts. Returns the analysis and whether it was
/// served from the store.
///
/// A warm hit performs **zero** recording or replay work, and the returned
/// analysis is byte-identical (under this module's canonical encodings) to
/// what the cold path computes.
///
/// # Errors
/// Exactly the failure modes of [`analyze`]; store I/O problems degrade to
/// recomputation or a logged warning, never an error.
pub fn analyze_cached(
    program: &Arc<Program>,
    nthreads: usize,
    cfg: &LoopPointConfig,
    store: &Store,
) -> Result<(Analysis, bool), LoopPointError> {
    let key = analysis_key(program, nthreads, cfg);
    let mut span = cfg.obs.span("analyze.cached", "pipeline");
    span.arg("key", key.hex());
    if let Some(analysis) = try_load_analysis(program, key, store) {
        span.arg("outcome", "hit");
        lp_obs::lp_debug!("analyze: served from store ({key})");
        return Ok((analysis, true));
    }
    span.arg("outcome", "miss");
    let analysis = analyze(program, nthreads, cfg)?;
    save_analysis(&analysis, key, store);
    Ok((analysis, false))
}

/// [`prepare_region_checkpoints`] with a persistent cache, keyed by the
/// analysis key plus `warmup_slices`. On a miss the checkpoints are built
/// (one pinball replay) and persisted. Returns the prepared checkpoints
/// and whether they came from the store; a warm hit has
/// `replay_passes == 0`.
///
/// # Errors
/// Exactly the failure modes of [`prepare_region_checkpoints`].
pub fn prepare_region_checkpoints_cached(
    analysis: &Analysis,
    program: &Arc<Program>,
    nthreads: usize,
    cfg: &LoopPointConfig,
    warmup_slices: usize,
    store: &Store,
) -> Result<(PreparedCheckpoints, bool), LoopPointError> {
    let key = checkpoints_key(analysis_key(program, nthreads, cfg), warmup_slices);
    let mut span = cfg.obs.span("region.checkpoints.cached", "pipeline");
    span.arg("key", key.hex());
    if let Some(bytes) = store.load(&key, ArtifactKind::Checkpoints) {
        match decode_checkpoints(&bytes) {
            Ok(prepared) if prepared.regions.len() == analysis.looppoints.len() => {
                span.arg("outcome", "hit");
                return Ok((prepared, true));
            }
            Ok(_) => {
                lp_obs::lp_warn!("store: cached checkpoints disagree with analysis; recomputing");
            }
            Err(e) => {
                lp_obs::lp_warn!("store: cached checkpoints undecodable ({e}); recomputing");
            }
        }
    }
    span.arg("outcome", "miss");
    let prepared = prepare_region_checkpoints(analysis, program, warmup_slices)?;
    if let Err(e) = store.save(
        &key,
        ArtifactKind::Checkpoints,
        &encode_checkpoints(&prepared),
    ) {
        lp_obs::lp_warn!("store: failed to persist checkpoints artifact: {e}");
    }
    Ok((prepared, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use lp_omp::WaitPolicy;

    fn test_program() -> Arc<Program> {
        testutil::phased_program(2, WaitPolicy::Passive, 6)
    }

    fn fast_config() -> LoopPointConfig {
        LoopPointConfig::with_slice_base(2_000)
    }

    #[test]
    fn key_is_config_sensitive() {
        let program = test_program();
        let base = LoopPointConfig::default();
        let k0 = analysis_key(&program, 2, &base);
        assert_eq!(k0, analysis_key(&program, 2, &base), "deterministic");
        assert_ne!(k0, analysis_key(&program, 3, &base), "nthreads");
        let mut c = base.clone();
        c.slice_base += 1;
        assert_ne!(k0, analysis_key(&program, 2, &c), "slice_base");
        let mut c = base.clone();
        c.filter_spin = false;
        assert_ne!(k0, analysis_key(&program, 2, &c), "filter_spin");
        let mut c = base.clone();
        c.simpoint.seed += 1;
        assert_ne!(k0, analysis_key(&program, 2, &c), "seed");
        // Budget-only knobs do NOT change the key.
        let mut c = base.clone();
        c.max_steps /= 2;
        assert_eq!(
            k0,
            analysis_key(&program, 2, &c),
            "max_steps is budget-only"
        );
        let mut c = base.clone();
        c.simpoint.parallel_sweep = !c.simpoint.parallel_sweep;
        assert_eq!(
            k0,
            analysis_key(&program, 2, &c),
            "parallel_sweep is bit-identical"
        );
    }

    #[test]
    fn checkpoints_key_derives_from_analysis_key() {
        let program = test_program();
        let cfg = LoopPointConfig::default();
        let ak = analysis_key(&program, 2, &cfg);
        assert_ne!(checkpoints_key(ak, 0), checkpoints_key(ak, 1));
        assert_eq!(checkpoints_key(ak, 1), checkpoints_key(ak, 1));
    }

    #[test]
    fn profile_and_clustering_roundtrip() {
        let program = test_program();
        let cfg = fast_config();
        let analysis = analyze(&program, 2, &cfg).unwrap();

        let pb = encode_profile(&analysis.profile);
        let profile = decode_profile(&pb).unwrap();
        assert_eq!(
            encode_profile(&profile),
            pb,
            "profile re-encodes identically"
        );
        assert_eq!(profile.slices.len(), analysis.profile.slices.len());

        let cb = encode_clustering(&analysis.clustering);
        let clustering = decode_clustering(&cb).unwrap();
        assert_eq!(encode_clustering(&clustering), cb);
        assert_eq!(clustering.k, analysis.clustering.k);
        assert_eq!(clustering.assignments, analysis.clustering.assignments);

        let mb = encode_analysis_meta(&analysis.dcfg, &analysis.looppoints);
        let (dcfg, looppoints) = decode_analysis_meta(&mb, &program).unwrap();
        assert_eq!(encode_analysis_meta(&dcfg, &looppoints), mb);
        assert_eq!(
            dcfg.main_image_loop_headers(),
            analysis.dcfg.main_image_loop_headers(),
            "loop-header view survives reconstruction"
        );
        for s in analysis.profile.slices.iter().take(3) {
            if let Some(m) = s.start {
                assert_eq!(dcfg.block_of(m.pc), analysis.dcfg.block_of(m.pc));
            }
        }
    }

    #[test]
    fn truncated_payloads_are_rejected_not_panicking() {
        let program = test_program();
        let cfg = fast_config();
        let analysis = analyze(&program, 2, &cfg).unwrap();
        let encoded = [
            encode_profile(&analysis.profile),
            encode_clustering(&analysis.clustering),
            encode_analysis_meta(&analysis.dcfg, &analysis.looppoints),
        ];
        for bytes in &encoded {
            for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
                let cut_bytes = &bytes[..cut];
                assert!(
                    decode_profile(cut_bytes).is_err()
                        || decode_clustering(cut_bytes).is_err()
                        || decode_analysis_meta(cut_bytes, &program).is_err(),
                    "no decoder may accept a truncation"
                );
            }
        }
        // Each specific decoder rejects its own truncations.
        assert!(decode_profile(&encoded[0][..encoded[0].len() - 1]).is_err());
        assert!(decode_clustering(&encoded[1][..encoded[1].len() - 1]).is_err());
        assert!(decode_analysis_meta(&encoded[2][..encoded[2].len() - 1], &program).is_err());
    }
}
