//! Unified error type for the pipeline.

use lp_pinball::PinballError;
use lp_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors from any stage of the LoopPoint pipeline.
#[derive(Debug)]
pub enum LoopPointError {
    /// Recording or constrained replay failed.
    Pinball(PinballError),
    /// A timing simulation failed.
    Sim(SimError),
    /// The application produced no usable slices (e.g. it contains no
    /// main-image loops, so no legal region boundaries exist).
    NoSlices {
        /// Explanation.
        reason: String,
    },
    /// The run was aborted by a tripped [`crate::CancelToken`] (job
    /// timeout, explicit cancel, or service shutdown).
    Cancelled,
}

impl fmt::Display for LoopPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopPointError::Pinball(e) => write!(f, "pinball stage failed: {e}"),
            LoopPointError::Sim(e) => write!(f, "simulation stage failed: {e}"),
            LoopPointError::NoSlices { reason } => write!(f, "no usable slices: {reason}"),
            LoopPointError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl Error for LoopPointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoopPointError::Pinball(e) => Some(e),
            LoopPointError::Sim(e) => Some(e),
            LoopPointError::NoSlices { .. } => None,
            LoopPointError::Cancelled => None,
        }
    }
}

impl From<PinballError> for LoopPointError {
    fn from(e: PinballError) -> Self {
        LoopPointError::Pinball(e)
    }
}

impl From<SimError> for LoopPointError {
    fn from(e: SimError) -> Self {
        LoopPointError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LoopPointError::NoSlices {
            reason: "no loops".into(),
        };
        assert!(e.to_string().contains("no loops"));
        assert!(e.source().is_none());
        let e: LoopPointError = SimError::StepLimit { limit: 5 }.into();
        assert!(e.source().is_some());
    }
}
