//! Time-based sampling (ESESC-style, §II / Fig. 1).
//!
//! Alternates short detailed intervals with fast-forward phases across the
//! *entire* application and extrapolates each interval's timing over its
//! fast-forwarded neighbourhood. Accurate, but the whole application must
//! still be visited functionally — the property that caps its speedup well
//! below checkpoint-based methods.

use crate::error::LoopPointError;
use lp_isa::Program;
use lp_sim::{Mode, Simulator, StopCond};
use lp_uarch::SimConfig;
use std::sync::Arc;
use std::time::Duration;

/// Result of a time-based-sampling run.
#[derive(Debug, Clone, Copy)]
pub struct TimeSamplingResult {
    /// Extrapolated whole-program runtime in cycles.
    pub predicted_cycles: f64,
    /// Instructions simulated in detail.
    pub detailed_insts: u64,
    /// Instructions fast-forwarded.
    pub ff_insts: u64,
    /// Wall-clock cost of the whole pass.
    pub wall: Duration,
}

impl TimeSamplingResult {
    /// Fraction of the application simulated in detail.
    pub fn detailed_fraction(&self) -> f64 {
        let total = (self.detailed_insts + self.ff_insts) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.detailed_insts as f64 / total
        }
    }
}

/// Runs time-based sampling: every period of `period` global instructions
/// begins with `detail` instructions of detailed simulation, the rest is
/// fast-forwarded; per-interval cycles are scaled to the full period.
///
/// # Errors
/// Simulation failures.
///
/// # Panics
/// Panics if `detail == 0` or `detail > period`.
pub fn time_based_sampling(
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    detail: u64,
    period: u64,
    max_steps: u64,
) -> Result<TimeSamplingResult, LoopPointError> {
    assert!(detail > 0 && detail <= period);
    let wall = std::time::Instant::now();
    let mut sim = Simulator::new(program.clone(), nthreads, simcfg.clone());
    let mut predicted = 0.0f64;
    let mut detailed_insts = 0u64;
    let mut ff_insts = 0u64;
    let mut next_boundary = 0u64;

    while !sim.machine().is_finished() {
        next_boundary += detail;
        let d = sim.run(
            Mode::Detailed,
            Some(StopCond::AtGlobalInst(next_boundary)),
            max_steps,
        )?;
        detailed_insts += d.instructions;
        if sim.machine().is_finished() {
            predicted += d.cycles as f64;
            break;
        }
        next_boundary += period - detail;
        let f = sim.run(
            Mode::FastForward,
            Some(StopCond::AtGlobalInst(next_boundary)),
            max_steps,
        )?;
        ff_insts += f.instructions;
        // Scale the detailed interval's cycles over the whole period.
        let interval_insts = d.instructions + f.instructions;
        if d.instructions > 0 {
            predicted += d.cycles as f64 * interval_insts as f64 / d.instructions as f64;
        }
    }

    Ok(TimeSamplingResult {
        predicted_cycles: predicted,
        detailed_insts,
        ff_insts,
        wall: wall.elapsed(),
    })
}
