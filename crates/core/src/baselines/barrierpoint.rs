//! BarrierPoint: inter-barrier regions as the unit of work.

use crate::error::LoopPointError;
use lp_bbv::SparseVec;
use lp_isa::{Program, Retired};
use lp_pinball::{ExecObserver, Pinball};
use lp_simpoint::{cluster, Clustering, SimpointConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// One inter-barrier region.
#[derive(Debug, Clone)]
pub struct BarrierRegion {
    /// Region index in execution order.
    pub index: usize,
    /// Spin-filtered instructions in the region.
    pub filtered_insts: u64,
    /// All instructions in the region.
    pub total_insts: u64,
    /// Spin-filtered concatenated per-thread BBV.
    pub bbv: SparseVec,
}

/// BarrierPoint analysis results.
#[derive(Debug)]
pub struct BarrierPointAnalysis {
    /// All inter-barrier regions in execution order.
    pub regions: Vec<BarrierRegion>,
    /// Clustering over region BBVs.
    pub clustering: Clustering,
    /// Representative region index per cluster.
    pub representatives: Vec<usize>,
    /// Whole-program spin-filtered instructions.
    pub total_filtered: u64,
    /// Barriers observed.
    pub barriers: u64,
}

impl BarrierPointAnalysis {
    /// Theoretical serial speedup: whole-program filtered work over the
    /// summed size of the representatives.
    pub fn theoretical_serial(&self) -> f64 {
        let sum: u64 = self
            .representatives
            .iter()
            .map(|&i| self.regions[i].filtered_insts)
            .sum();
        if sum == 0 {
            1.0
        } else {
            self.total_filtered as f64 / sum as f64
        }
    }

    /// Theoretical parallel speedup: bounded by the largest representative
    /// (a single huge inter-barrier region caps this at ~1×, the Fig. 9
    /// failure mode).
    pub fn theoretical_parallel(&self) -> f64 {
        let max = self
            .representatives
            .iter()
            .map(|&i| self.regions[i].filtered_insts)
            .max()
            .unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            self.total_filtered as f64 / max as f64
        }
    }

    /// The largest inter-barrier region's filtered size.
    pub fn largest_region(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| r.filtered_insts)
            .max()
            .unwrap_or(0)
    }
}

struct BarrierSlicer {
    program: Arc<Program>,
    bar_gen_addr: lp_isa::Addr,
    dcfg: std::sync::Arc<lp_dcfg::Dcfg>,
    entering_block: Vec<bool>,
    cur_bbv: HashMap<u64, u64>,
    cur_filtered: u64,
    cur_total: u64,
    regions: Vec<BarrierRegion>,
    total_filtered: u64,
    barriers: u64,
}

impl BarrierSlicer {
    fn close(&mut self) {
        let mut bbv_map = HashMap::new();
        std::mem::swap(&mut bbv_map, &mut self.cur_bbv);
        self.regions.push(BarrierRegion {
            index: self.regions.len(),
            filtered_insts: self.cur_filtered,
            total_insts: self.cur_total,
            bbv: SparseVec::from_map(&bbv_map),
        });
        self.cur_filtered = 0;
        self.cur_total = 0;
    }
}

impl ExecObserver for BarrierSlicer {
    fn on_retire(&mut self, r: &Retired) {
        self.cur_total += 1;
        if !self.program.is_library_pc(r.pc) {
            self.cur_filtered += 1;
            if self.entering_block[r.tid] {
                if let Some(b) = self.dcfg.block_of(r.pc) {
                    let block = self.dcfg.block(b);
                    *self
                        .cur_bbv
                        .entry(((r.tid as u64) << 32) | u64::from(b.0))
                        .or_default() += u64::from(block.len);
                }
            }
        }
        self.entering_block[r.tid] = r.ctrl.is_some();
        self.total_filtered += u64::from(!self.program.is_library_pc(r.pc));
        // Barrier completion: the last arriver stores the next generation.
        if let Some(m) = r.mem {
            if m.write && m.addr == self.bar_gen_addr {
                self.barriers += 1;
                self.close();
            }
        }
    }
}

/// Runs the BarrierPoint analysis on a recorded pinball: slices at barrier
/// completions, collects per-region spin-filtered BBVs, and clusters them.
///
/// # Errors
/// Replay failures.
pub fn analyze_barrierpoint(
    pinball: &Pinball,
    program: &Arc<Program>,
    dcfg: std::sync::Arc<lp_dcfg::Dcfg>,
    simpoint: &SimpointConfig,
    max_steps: u64,
) -> Result<BarrierPointAnalysis, LoopPointError> {
    let nthreads = pinball.nthreads();
    let mut slicer = BarrierSlicer {
        program: program.clone(),
        bar_gen_addr: lp_omp::barrier_gen_addr(),
        dcfg,
        entering_block: vec![true; nthreads],
        cur_bbv: HashMap::new(),
        cur_filtered: 0,
        cur_total: 0,
        regions: Vec::new(),
        total_filtered: 0,
        barriers: 0,
    };
    pinball.replay(program.clone(), &mut [&mut slicer], max_steps)?;
    if slicer.cur_total > 0 || slicer.regions.is_empty() {
        slicer.close();
    }

    let vectors: Vec<&[(u64, f64)]> = slicer.regions.iter().map(|r| r.bbv.entries()).collect();
    let clustering = cluster(&vectors, simpoint);
    let representatives = clustering.representatives.clone();

    Ok(BarrierPointAnalysis {
        regions: slicer.regions,
        clustering,
        representatives,
        total_filtered: slicer.total_filtered,
        barriers: slicer.barriers,
    })
}
