//! Baseline sampling methodologies the paper compares against.
//!
//! * [`barrierpoint`] — inter-barrier regions as the unit of work
//!   (Carlson et al., ISPASS 2014). Works well when many small
//!   inter-barrier regions exist; degenerates to one giant region for
//!   applications with few or no barriers (Fig. 9's comparison).
//! * [`simpoint_mt`] — the naive multi-threaded adaptation of SimPoint:
//!   fixed global instruction-count slices, no spin filtering, boundaries
//!   expressed as raw instruction indices (§II's negative result).
//! * [`time_sampling`] — periodic detailed/fast-forward time-based sampling
//!   (ESESC-style); accurate, but must visit the entire application, which
//!   bounds its speedup (§II, Fig. 1).

pub mod barrierpoint;
pub mod simpoint_mt;
pub mod time_sampling;

pub use barrierpoint::{analyze_barrierpoint, BarrierPointAnalysis, BarrierRegion};
pub use simpoint_mt::{
    analyze_naive, extrapolate_naive, simulate_naive_regions, NaiveAnalysis, NaiveRegion,
};
pub use time_sampling::{time_based_sampling, TimeSamplingResult};
