//! The naive multi-threaded SimPoint baseline (§II).
//!
//! Fixed global instruction-count slices with unfiltered BBVs, boundaries
//! expressed as raw global retired-instruction indices. The profile is
//! taken on a constrained replay; the regions are then simulated
//! *unconstrained* at the same instruction indices — but since the target
//! machine interleaves threads differently (and, under the active wait
//! policy, spins a different number of iterations), index N no longer marks
//! the same work, which is exactly why the paper reports errors up to
//! 68.44% for this adaptation.

use crate::error::LoopPointError;
use lp_bbv::{FixedSlice, FixedSlicer};
use lp_dcfg::Dcfg;
use lp_isa::Program;
use lp_pinball::Pinball;
use lp_sim::{Mode, SimStats, Simulator, StopCond};
use lp_simpoint::{cluster, Clustering, SimpointConfig};
use lp_uarch::SimConfig;
use std::sync::Arc;

/// A representative region in instruction-index coordinates.
#[derive(Debug, Clone)]
pub struct NaiveRegion {
    /// Representative slice index.
    pub slice_index: usize,
    /// Global instruction index where the region starts.
    pub start_inst: u64,
    /// Global instruction index where the region ends.
    pub end_inst: u64,
    /// Cluster-size multiplier over unfiltered counts.
    pub multiplier: f64,
}

/// Naive-SimPoint analysis results.
#[derive(Debug)]
pub struct NaiveAnalysis {
    /// All fixed-size slices.
    pub slices: Vec<FixedSlice>,
    /// Clustering over unfiltered BBVs.
    pub clustering: Clustering,
    /// Selected regions.
    pub regions: Vec<NaiveRegion>,
}

/// Profiles fixed-size slices on the pinball replay and clusters them.
///
/// # Errors
/// Replay failures.
pub fn analyze_naive(
    pinball: &Pinball,
    program: &Arc<Program>,
    dcfg: &Dcfg,
    slice_size: u64,
    simpoint: &SimpointConfig,
    max_steps: u64,
) -> Result<NaiveAnalysis, LoopPointError> {
    let nthreads = pinball.nthreads();
    let mut slicer = FixedSlicer::new(dcfg, nthreads, slice_size);
    pinball.replay(program.clone(), &mut [&mut slicer], max_steps)?;
    let slices = slicer.finish();

    let vectors: Vec<&[(u64, f64)]> = slices.iter().map(|s| s.bbv.entries()).collect();
    let clustering = cluster(&vectors, simpoint);

    let mut regions = Vec::with_capacity(clustering.k);
    for (cluster_id, &rep) in clustering.representatives.iter().enumerate() {
        let rep_slice = &slices[rep];
        let cluster_insts: u64 = clustering
            .members(cluster_id)
            .map(|i| slices[i].insts)
            .sum();
        regions.push(NaiveRegion {
            slice_index: rep,
            start_inst: rep_slice.start_inst,
            end_inst: rep_slice.end_inst,
            multiplier: if rep_slice.insts == 0 {
                0.0
            } else {
                cluster_insts as f64 / rep_slice.insts as f64
            },
        });
    }

    Ok(NaiveAnalysis {
        slices,
        clustering,
        regions,
    })
}

/// Simulates the naive regions unconstrained at their recorded instruction
/// indices and returns per-region stats paired with multipliers.
///
/// # Errors
/// Simulation failures.
pub fn simulate_naive_regions(
    analysis: &NaiveAnalysis,
    program: &Arc<Program>,
    nthreads: usize,
    simcfg: &SimConfig,
    max_steps: u64,
) -> Result<Vec<(NaiveRegion, SimStats)>, LoopPointError> {
    analysis
        .regions
        .iter()
        .map(|region| {
            let mut sim = Simulator::new(program.clone(), nthreads, simcfg.clone());
            if region.start_inst > 0 {
                sim.run(
                    Mode::FastForward,
                    Some(StopCond::AtGlobalInst(region.start_inst)),
                    max_steps,
                )?;
            }
            let stats = sim.run(
                Mode::Detailed,
                Some(StopCond::AtGlobalInst(region.end_inst)),
                max_steps,
            )?;
            Ok((region.clone(), stats))
        })
        .collect()
}

/// Eq. 1-style extrapolation over naive regions.
pub fn extrapolate_naive(results: &[(NaiveRegion, SimStats)]) -> f64 {
    results
        .iter()
        .map(|(r, s)| s.cycles as f64 * r.multiplier)
        .sum()
}
