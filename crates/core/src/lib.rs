//! # looppoint — checkpoint-driven sampled simulation for multi-threaded
//! applications
//!
//! A Rust reproduction of **LoopPoint** (Sabu, Patil, Heirman, Carlson —
//! HPCA 2022): a sampling methodology that reduces a multi-threaded
//! application to a handful of representative regions ("looppoints"),
//! simulates only those in detail, and extrapolates whole-program
//! performance — independent of the synchronization primitives the
//! application uses.
//!
//! ## The pipeline
//!
//! ```text
//!  record ──▶ constrained replay ──▶ DCFG ──▶ loop-aligned, spin-filtered
//!  (pinball)  (reproducible)         (loops)  slicing + per-thread BBVs
//!                                                      │
//!       unconstrained simulation  ◀── looppoints ◀── k-means + BIC
//!       of each region (warmup +      (PC,count)      clustering
//!       detailed), in parallel        markers
//!                                                      │
//!                 total runtime = Σ runtimeᵢ × multiplierᵢ   (Eq. 1–2)
//! ```
//!
//! Entry points:
//! * [`analyze`] — the one-time, up-front application analysis (§III-A..E);
//! * [`simulate_representatives`] — binary-driven unconstrained simulation
//!   of every looppoint with fast-forward warmup (§III-F, §V-A);
//! * [`extrapolate`] — Eq. 1/2 runtime and metric reconstruction (§III-G);
//! * [`diagnose`] — per-cluster accuracy attribution of the extrapolation
//!   error (representativeness / warmup / multiplier residual);
//! * [`analyze_live`] — Pac-Sim-style *online* sampling: one pass, no
//!   profiling prequel, per-region simulate-or-predict (with
//!   [`diagnose_live`] for the same error decomposition);
//! * [`speedups`] — theoretical/actual, serial/parallel speedups (§V-B);
//! * [`baselines`] — BarrierPoint, naive multi-threaded SimPoint, and
//!   time-based sampling, for the paper's comparisons;
//! * [`constrained`] — timing simulation on constrained replay, with its
//!   artificial thread stalls (§V-A.1).
//!
//! ## Quick start
//!
//! A complete, runnable pipeline on a miniature two-thread program (a
//! parallel loop of dependent ALU work). `cargo test --doc` executes this
//! end-to-end: record, replay, slice, cluster, simulate, extrapolate.
//!
//! ```
//! use looppoint::{analyze, simulate_representatives, extrapolate, LoopPointConfig};
//! use lp_isa::{AluOp, ProgramBuilder, Reg};
//! use lp_omp::{OmpRuntime, WaitPolicy};
//! use lp_uarch::SimConfig;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), looppoint::LoopPointError> {
//! // Build a miniature OpenMP-style program: 2 threads, 600 iterations
//! // of a statically scheduled parallel loop.
//! let nthreads = 2;
//! let mut pb = ProgramBuilder::new("doc-demo");
//! let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
//! let mut c = pb.main_code();
//! rt.emit_main_init(&mut c);
//! rt.emit_parallel(&mut c, "work", |c, rt| {
//!     rt.emit_static_for(c, "work.loop", 600, |c, _| {
//!         c.alui(AluOp::Mul, Reg::R1, Reg::R16, 13);
//!         c.alui(AluOp::Add, Reg::R2, Reg::R1, 7);
//!         c.alui(AluOp::Xor, Reg::R3, Reg::R2, 0x2a);
//!     });
//! });
//! rt.emit_shutdown(&mut c);
//! c.halt();
//! c.finish();
//! let program = Arc::new(pb.finish());
//!
//! // Analyze (tiny slices so even this miniature program yields several),
//! // simulate the representatives, extrapolate whole-program runtime.
//! let analysis = analyze(&program, nthreads, &LoopPointConfig::with_slice_base(500))?;
//! assert!(!analysis.looppoints.is_empty());
//! let results = simulate_representatives(
//!     &analysis, &program, nthreads, &SimConfig::gainestown(nthreads), false)?;
//! let prediction = extrapolate(&results);
//! assert!(prediction.total_cycles > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod cancel;
mod config;
pub mod constrained;
mod coverage;
mod diagnose;
mod error;
mod extrapolate;
mod job;
mod live;
pub mod persist;
mod pipeline;
mod pool;
pub mod report;
mod simulate;
mod speedup;
#[cfg(test)]
mod testutil;

pub use cancel::CancelToken;
pub use config::{LoopPointConfig, DEFAULT_MAX_STEPS};
pub use coverage::Coverage;
pub use diagnose::diagnose;
pub use error::LoopPointError;
pub use extrapolate::{error_pct, extrapolate, Prediction};
pub use job::{run_job, JobSummary};
pub use live::{
    analyze_live, diagnose_live, run_live_job, LiveClusterSummary, LiveConfig, LiveOutcome,
    LiveRegionRecord, LiveRepStats, LiveSummary,
};
pub use lp_diag::{DiagReport, SelfProfile};
pub use lp_live::{LiveProgress, OnlineConfig};
pub use persist::{
    analysis_key, analyze_cached, checkpoints_key, prepare_region_checkpoints_cached,
};
pub use pipeline::{analyze, Analysis, LoopPointRegion};
pub use simulate::{
    prepare_region_checkpoints, prepare_region_checkpoints_per_region, simulate_prepared,
    simulate_prepared_with_cancel, simulate_representatives, simulate_representatives_checkpointed,
    simulate_representatives_checkpointed_with, simulate_representatives_opts,
    simulate_representatives_with, simulate_whole, PreparedCheckpoints, PreparedRegion,
    RegionResult, SimOptions,
};
pub use speedup::{human_duration, speedups, SimTimeModel, SpeedupReport};
