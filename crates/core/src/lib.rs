//! # looppoint — checkpoint-driven sampled simulation for multi-threaded
//! applications
//!
//! A Rust reproduction of **LoopPoint** (Sabu, Patil, Heirman, Carlson —
//! HPCA 2022): a sampling methodology that reduces a multi-threaded
//! application to a handful of representative regions ("looppoints"),
//! simulates only those in detail, and extrapolates whole-program
//! performance — independent of the synchronization primitives the
//! application uses.
//!
//! ## The pipeline
//!
//! ```text
//!  record ──▶ constrained replay ──▶ DCFG ──▶ loop-aligned, spin-filtered
//!  (pinball)  (reproducible)         (loops)  slicing + per-thread BBVs
//!                                                      │
//!       unconstrained simulation  ◀── looppoints ◀── k-means + BIC
//!       of each region (warmup +      (PC,count)      clustering
//!       detailed), in parallel        markers
//!                                                      │
//!                 total runtime = Σ runtimeᵢ × multiplierᵢ   (Eq. 1–2)
//! ```
//!
//! Entry points:
//! * [`analyze`] — the one-time, up-front application analysis (§III-A..E);
//! * [`simulate_representatives`] — binary-driven unconstrained simulation
//!   of every looppoint with fast-forward warmup (§III-F, §V-A);
//! * [`extrapolate`] — Eq. 1/2 runtime and metric reconstruction (§III-G);
//! * [`speedups`] — theoretical/actual, serial/parallel speedups (§V-B);
//! * [`baselines`] — BarrierPoint, naive multi-threaded SimPoint, and
//!   time-based sampling, for the paper's comparisons;
//! * [`constrained`] — timing simulation on constrained replay, with its
//!   artificial thread stalls (§V-A.1).
//!
//! ## Quick start
//!
//! ```no_run
//! use looppoint::{analyze, simulate_representatives, extrapolate, LoopPointConfig};
//! use lp_uarch::SimConfig;
//! # fn program() -> std::sync::Arc<lp_isa::Program> { unimplemented!() }
//!
//! # fn main() -> Result<(), looppoint::LoopPointError> {
//! let program = program(); // any lp-isa program (see lp-workloads)
//! let nthreads = 8;
//! let analysis = analyze(&program, nthreads, &LoopPointConfig::default())?;
//! let results = simulate_representatives(
//!     &analysis, &program, nthreads, &SimConfig::gainestown(8), true)?;
//! let prediction = extrapolate(&results);
//! println!("predicted runtime: {} cycles", prediction.total_cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod config;
pub mod constrained;
mod coverage;
mod error;
mod extrapolate;
mod pipeline;
mod pool;
pub mod report;
mod simulate;
mod speedup;
#[cfg(test)]
mod testutil;

pub use config::{LoopPointConfig, DEFAULT_MAX_STEPS};
pub use coverage::Coverage;
pub use error::LoopPointError;
pub use extrapolate::{error_pct, extrapolate, Prediction};
pub use pipeline::{analyze, Analysis, LoopPointRegion};
pub use simulate::{
    prepare_region_checkpoints, prepare_region_checkpoints_per_region, simulate_prepared,
    simulate_representatives, simulate_representatives_checkpointed,
    simulate_representatives_checkpointed_with, simulate_representatives_opts,
    simulate_representatives_with, simulate_whole, PreparedCheckpoints, PreparedRegion,
    RegionResult, SimOptions,
};
pub use speedup::{human_duration, speedups, SimTimeModel, SpeedupReport};
