//! Speedup accounting (§V-B) and the Fig. 1 simulation-time model.

use crate::pipeline::Analysis;
use crate::simulate::RegionResult;
use lp_sim::SimStats;
use std::time::Duration;

/// Theoretical and actual, serial and parallel speedups of sampled
/// simulation over full detailed simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpeedupReport {
    /// Reduction in instructions that must be simulated in detail
    /// (spin-filtered), all regions back-to-back.
    pub theoretical_serial: f64,
    /// Same, assuming all regions simulate concurrently (bounded by the
    /// largest region).
    pub theoretical_parallel: f64,
    /// Measured wall-clock reduction, regions back-to-back (including
    /// their fast-forward warmup cost).
    pub actual_serial: f64,
    /// Measured wall-clock reduction with concurrent regions.
    pub actual_parallel: f64,
}

/// Computes the §V-B speedup numbers from an analysis, its region results,
/// and the full-application reference simulation.
pub fn speedups(analysis: &Analysis, results: &[RegionResult], full: &SimStats) -> SpeedupReport {
    let total_filtered = analysis.profile.total_filtered as f64;
    let sum_region: f64 = results.iter().map(|r| r.region.filtered_insts as f64).sum();
    let max_region = results
        .iter()
        .map(|r| r.region.filtered_insts as f64)
        .fold(0.0, f64::max);

    let full_wall = full.wall.as_secs_f64();
    let region_wall = |r: &RegionResult| (r.stats.wall + r.stats.ff_wall).as_secs_f64();
    let sum_wall: f64 = results.iter().map(region_wall).sum();
    let max_wall = results.iter().map(region_wall).fold(0.0, f64::max);

    SpeedupReport {
        theoretical_serial: ratio(total_filtered, sum_region),
        theoretical_parallel: ratio(total_filtered, max_region),
        actual_serial: ratio(full_wall, sum_wall),
        actual_parallel: ratio(full_wall, max_wall),
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The Fig. 1 evaluation-time model: wall-clock estimates for different
/// methodologies assuming a fixed detailed-simulation speed (the paper uses
/// 100 KIPS) and unlimited parallel simulation hosts (the longest single
/// region bounds time-to-result).
#[derive(Debug, Clone, Copy)]
pub struct SimTimeModel {
    /// Detailed simulation speed in instructions per second.
    pub detailed_ips: f64,
    /// Functional fast-forward speed in instructions per second (bounds
    /// time-based sampling, which must visit the whole application).
    pub fast_forward_ips: f64,
}

impl Default for SimTimeModel {
    fn default() -> Self {
        SimTimeModel {
            detailed_ips: 100_000.0, // the paper's 100 KIPS
            fast_forward_ips: 10_000_000.0,
        }
    }
}

impl SimTimeModel {
    /// Time to simulate the whole application in detail.
    pub fn full_detailed(&self, total_insts: u64) -> Duration {
        Duration::from_secs_f64(total_insts as f64 / self.detailed_ips)
    }

    /// Time for time-based sampling: the entire application is visited
    /// functionally, plus a `detailed_fraction` of it in detail.
    pub fn time_based(&self, total_insts: u64, detailed_fraction: f64) -> Duration {
        let t = total_insts as f64;
        Duration::from_secs_f64(
            t / self.fast_forward_ips + t * detailed_fraction / self.detailed_ips,
        )
    }

    /// Time for a checkpoint-based methodology with parallel hosts: the
    /// largest representative region bounds the result.
    pub fn checkpoint_parallel(&self, largest_region_insts: u64) -> Duration {
        Duration::from_secs_f64(largest_region_insts as f64 / self.detailed_ips)
    }

    /// Time for a checkpoint-based methodology run serially.
    pub fn checkpoint_serial(&self, total_region_insts: u64) -> Duration {
        Duration::from_secs_f64(total_region_insts as f64 / self.detailed_ips)
    }
}

/// Formats a duration in human units (seconds → years) for Fig. 1-style
/// tables.
pub fn human_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    const MIN: f64 = 60.0;
    const HOUR: f64 = 3600.0;
    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.25 * DAY;
    if s < MIN {
        format!("{s:.1} s")
    } else if s < HOUR {
        format!("{:.1} min", s / MIN)
    } else if s < DAY {
        format!("{:.1} h", s / HOUR)
    } else if s < YEAR {
        format!("{:.1} days", s / DAY)
    } else {
        format!("{:.2} years", s / YEAR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_model_matches_paper_scale() {
        // Fig. 1's premise: multi-billion-instruction apps at 100 KIPS take
        // months to years.
        let m = SimTimeModel::default();
        let t = m.full_detailed(10_000_000_000_000); // 10T instructions (ref-like)
        assert!(t.as_secs_f64() / 86_400.0 > 365.0, "ref inputs take years");
        let train = m.full_detailed(1_000_000_000_000); // 1T
        assert!(train.as_secs_f64() / 86_400.0 > 30.0, "train takes months");
    }

    #[test]
    fn time_based_is_bounded_by_full_visit() {
        let m = SimTimeModel::default();
        let t = m.time_based(1_000_000_000, 0.0);
        // Even with zero detailed sampling, the functional visit costs time.
        assert!(t.as_secs_f64() >= 100.0);
        let t2 = m.time_based(1_000_000_000, 0.1);
        assert!(t2 > t);
    }

    #[test]
    fn checkpoint_times_scale_with_regions() {
        let m = SimTimeModel::default();
        assert!(m.checkpoint_parallel(200_000) < m.checkpoint_serial(2_000_000));
        assert_eq!(m.checkpoint_parallel(100_000).as_secs_f64(), 1.0);
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_duration(Duration::from_secs_f64(30.0)), "30.0 s");
        assert_eq!(human_duration(Duration::from_secs_f64(120.0)), "2.0 min");
        assert_eq!(human_duration(Duration::from_secs_f64(7200.0)), "2.0 h");
        assert!(human_duration(Duration::from_secs_f64(2.0 * 86_400.0)).contains("days"));
        assert!(human_duration(Duration::from_secs_f64(4.0e8)).contains("years"));
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(6.0, 2.0), 3.0);
    }
}
