//! Job-level pipeline entry point.
//!
//! The driver and the lp-farm service both need "run the whole sampled
//! pipeline for one (program, threads, config) and hand back a compact,
//! serializable summary" — without each reimplementing the
//! analyze → checkpoint → simulate → extrapolate choreography and the
//! store/cancellation plumbing. [`run_job`] is that single entry point:
//! store-aware (cached analysis and checkpoints when a [`Store`] is
//! given), cancellation-aware (the [`crate::CancelToken`] in the config is
//! honored at phase boundaries and between regions), and cheap to call in
//! a loop.

use crate::config::LoopPointConfig;
use crate::error::LoopPointError;
use crate::extrapolate::extrapolate;
use crate::persist::{analyze_cached, prepare_region_checkpoints_cached};
use crate::pipeline::analyze;
use crate::simulate::{prepare_region_checkpoints, simulate_prepared_with_cancel, SimOptions};
use lp_isa::Program;
use lp_store::Store;
use lp_uarch::SimConfig;
use std::sync::Arc;

/// Compact, serializable outcome of one end-to-end pipeline job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Slices profiled by the analysis.
    pub slices: usize,
    /// Clusters chosen (`k`).
    pub clusters: usize,
    /// Looppoint regions simulated.
    pub regions: usize,
    /// Extrapolated whole-program runtime in cycles (Eq. 1/2).
    pub predicted_cycles: f64,
    /// Extrapolated branch MPKI.
    pub predicted_branch_mpki: f64,
    /// Extrapolated L2 MPKI.
    pub predicted_l2_mpki: f64,
    /// Whether the analysis was served from the artifact store.
    pub analysis_from_store: bool,
    /// Whether region checkpoints were served from the artifact store.
    pub checkpoints_from_store: bool,
}

impl JobSummary {
    /// The summary as a JSON object (stable field names — the lp-farm wire
    /// format embeds this verbatim).
    pub fn to_value(&self) -> lp_obs::json::Value {
        use lp_obs::json::Value;
        Value::Obj(vec![
            ("slices".to_string(), Value::Int(self.slices as i128)),
            ("clusters".to_string(), Value::Int(self.clusters as i128)),
            ("regions".to_string(), Value::Int(self.regions as i128)),
            (
                "predicted_cycles".to_string(),
                Value::Num(self.predicted_cycles),
            ),
            (
                "predicted_branch_mpki".to_string(),
                Value::Num(self.predicted_branch_mpki),
            ),
            (
                "predicted_l2_mpki".to_string(),
                Value::Num(self.predicted_l2_mpki),
            ),
            (
                "analysis_from_store".to_string(),
                Value::Bool(self.analysis_from_store),
            ),
            (
                "checkpoints_from_store".to_string(),
                Value::Bool(self.checkpoints_from_store),
            ),
        ])
    }
}

/// Runs the full sampled pipeline for one program: analysis (cached when
/// `store` is given), single-pass checkpoint generation (ditto), region
/// simulation honoring `cfg.cancel`, and Eq. 1/2 extrapolation.
///
/// `warmup_slices` is the checkpoint warmup window (the paper's default
/// deployment uses 2).
///
/// # Errors
/// Any stage failure, or [`LoopPointError::Cancelled`] when the config's
/// token is tripped.
pub fn run_job(
    program: &Arc<Program>,
    nthreads: usize,
    cfg: &LoopPointConfig,
    simcfg: &SimConfig,
    sim_opts: &SimOptions,
    warmup_slices: usize,
    store: Option<&Store>,
) -> Result<JobSummary, LoopPointError> {
    // Attach the caller's trace context (if any) for the whole run, so the
    // job.run span and everything under it carry the caller's trace id.
    let _trace_guard = cfg.trace.as_ref().map(|t| t.attach());
    let mut span = cfg.obs.span("job.run", "pipeline");
    span.arg("nthreads", nthreads);

    let (analysis, analysis_from_store) = match store {
        Some(store) => analyze_cached(program, nthreads, cfg, store)?,
        None => (analyze(program, nthreads, cfg)?, false),
    };
    cfg.cancel.check()?;

    let (prepared, checkpoints_from_store) = match store {
        Some(store) => prepare_region_checkpoints_cached(
            &analysis,
            program,
            nthreads,
            cfg,
            warmup_slices,
            store,
        )?,
        None => (
            prepare_region_checkpoints(&analysis, program, warmup_slices)?,
            false,
        ),
    };
    cfg.cancel.check()?;

    let results =
        simulate_prepared_with_cancel(&prepared, program, nthreads, simcfg, sim_opts, &cfg.cancel)?;
    let prediction = extrapolate(&results);

    span.arg("regions", results.len());
    span.arg("analysis_from_store", u64::from(analysis_from_store));
    Ok(JobSummary {
        slices: analysis.profile.slices.len(),
        clusters: analysis.clustering.k,
        regions: results.len(),
        predicted_cycles: prediction.total_cycles,
        predicted_branch_mpki: prediction.branch_mpki,
        predicted_l2_mpki: prediction.l2_mpki,
        analysis_from_store,
        checkpoints_from_store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::phased_program;
    use crate::CancelToken;

    #[test]
    fn run_job_produces_a_summary() {
        let nthreads = 2;
        let program = phased_program(nthreads, lp_omp::WaitPolicy::Passive, 3);
        let cfg = LoopPointConfig::with_slice_base(500);
        let simcfg = SimConfig::gainestown(nthreads);
        let summary = run_job(
            &program,
            nthreads,
            &cfg,
            &simcfg,
            &SimOptions::default(),
            2,
            None,
        )
        .unwrap();
        assert!(summary.regions > 0);
        assert!(summary.predicted_cycles > 0.0);
        assert!(!summary.analysis_from_store);
        // JSON embeds every field.
        let v = summary.to_value();
        for key in [
            "slices",
            "clusters",
            "regions",
            "predicted_cycles",
            "analysis_from_store",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn pre_tripped_token_cancels_before_any_work() {
        let nthreads = 2;
        let program = phased_program(nthreads, lp_omp::WaitPolicy::Passive, 3);
        let cancel = CancelToken::new();
        cancel.cancel();
        let cfg = LoopPointConfig::with_slice_base(500).with_cancel(cancel);
        let simcfg = SimConfig::gainestown(nthreads);
        let err = run_job(
            &program,
            nthreads,
            &cfg,
            &simcfg,
            &SimOptions::default(),
            2,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, LoopPointError::Cancelled), "{err}");
    }

    #[test]
    fn store_backed_second_run_hits() {
        let nthreads = 2;
        let program = phased_program(nthreads, lp_omp::WaitPolicy::Passive, 3);
        let cfg = LoopPointConfig::with_slice_base(500);
        let simcfg = SimConfig::gainestown(nthreads);
        let dir = std::env::temp_dir().join(format!(
            "lp-job-store-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let store = Store::open(&dir, lp_obs::Observer::disabled()).unwrap();
        let opts = SimOptions::default();
        let cold = run_job(&program, nthreads, &cfg, &simcfg, &opts, 2, Some(&store)).unwrap();
        assert!(!cold.analysis_from_store);
        let warm = run_job(&program, nthreads, &cfg, &simcfg, &opts, 2, Some(&store)).unwrap();
        assert!(warm.analysis_from_store && warm.checkpoints_from_store);
        assert_eq!(cold.predicted_cycles, warm.predicted_cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
