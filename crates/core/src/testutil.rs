//! Small synthetic programs for unit tests (the full suites live in
//! `lp-workloads`).

use lp_isa::{AluOp, Program, ProgramBuilder, Reg};
use lp_omp::{LockId, OmpRuntime, WaitPolicy, APP_BASE};
use std::sync::Arc;

/// A lock/atomic-contended parallel program (used to exercise constrained
/// replay's artificial stalls).
pub fn contended_program(nthreads: usize) -> Arc<Program> {
    let mut pb = ProgramBuilder::new("contended");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    rt.emit_parallel(&mut c, "work", |c, rt| {
        rt.emit_static_for(c, "work.loop", 512, |c, rt| {
            c.li(Reg::R1, APP_BASE as i64);
            c.li(Reg::R2, 1);
            c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
            rt.emit_critical(c, LockId(0), |c, _| {
                c.load(Reg::R4, Reg::R1, 8);
                c.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
                c.store(Reg::R4, Reg::R1, 8);
            });
        });
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}

/// A two-phase parallel program: a compute-bound phase then a
/// memory-streaming phase, repeated `rounds` times — enough phase structure
/// for clustering to find.
pub fn phased_program(nthreads: usize, policy: WaitPolicy, rounds: u64) -> Arc<Program> {
    let mut pb = ProgramBuilder::new("phased");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    c.li(Reg::R10, rounds as i64);
    c.counted_loop_reg("rounds", Reg::R10, |c| {
        // R10 is clobber-protected: parallel bodies use r1..r15 on worker
        // threads only; on the main thread the runtime preserves r10
        // because bodies here avoid it.
        rt.emit_parallel(c, "compute", |c, rt| {
            rt.emit_static_for(c, "compute.loop", 2048, |c, _| {
                c.alui(AluOp::Mul, Reg::R1, Reg::R16, 17);
                c.alui(AluOp::Add, Reg::R1, Reg::R1, 3);
                c.alui(AluOp::Xor, Reg::R2, Reg::R1, 0x55);
                c.alui(AluOp::Mul, Reg::R3, Reg::R2, 31);
            });
        });
        rt.emit_parallel(c, "stream", |c, rt| {
            rt.emit_static_for(c, "stream.loop", 2048, |c, _| {
                c.li(Reg::R1, (APP_BASE + 0x10000) as i64);
                c.alui(AluOp::Shl, Reg::R2, Reg::R16, 6); // 64B stride
                c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
                c.load(Reg::R3, Reg::R1, 0);
                c.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
                c.store(Reg::R3, Reg::R1, 0);
            });
        });
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}
