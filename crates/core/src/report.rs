//! Human-readable analysis reports (the console output of the artifact's
//! driver script).

use crate::pipeline::Analysis;
use lp_isa::Program;
use std::fmt::Write;

/// Renders a multi-line report of an [`Analysis`]: profile shape, spin
/// filtering, cluster assignment per slice, and the selected looppoints
/// with symbolized `(PC, count)` markers.
pub fn analysis_report(program: &Program, analysis: &Analysis) -> String {
    let mut out = String::new();
    let p = &analysis.profile;
    let _ = writeln!(out, "program: {}", program.name());
    let _ = writeln!(
        out,
        "profile: {} instructions total, {} after spin filtering ({:.1}% filtered out)",
        p.total_insts,
        p.total_filtered,
        p.filter_ratio() * 100.0
    );
    let _ = writeln!(
        out,
        "slices: {} of ~{} filtered instructions each ({} threads)",
        p.slices.len(),
        p.slice_target,
        p.nthreads
    );
    let _ = writeln!(
        out,
        "clustering: k = {} (BIC {:.1}, sse {:.3})",
        analysis.clustering.k, analysis.clustering.bic, analysis.clustering.sse
    );
    let cov = analysis.coverage();
    let _ = writeln!(
        out,
        "coverage: largest cluster {:.1}% of filtered work; {} looppoints reach 90%; \
         detailed fraction {:.2}%",
        cov.largest_cluster_share * 100.0,
        cov.looppoints_for_90pct,
        cov.detailed_fraction * 100.0
    );

    let _ = writeln!(out, "\nslice  cluster  filtered  boundary (end)");
    for s in &p.slices {
        let boundary = match s.end {
            Some(m) => format!("{} @ {}", program.symbolize(m.pc), m.count),
            None => "(program end)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>5}  {:>7}  {:>8}  {}",
            s.index, analysis.clustering.assignments[s.index], s.filtered_insts, boundary
        );
    }

    let _ = writeln!(out, "\nlooppoints ({}):", analysis.looppoints.len());
    for lp in &analysis.looppoints {
        let fmt_marker = |m: Option<lp_isa::Marker>| match m {
            Some(m) => format!("{} @ {}", program.symbolize(m.pc), m.count),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  slice {:>3}  cluster {:>2}  multiplier {:>8.3}  start {:<24} end {}",
            lp.slice_index,
            lp.cluster,
            lp.multiplier,
            fmt_marker(lp.start),
            fmt_marker(lp.end),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, LoopPointConfig};
    use lp_omp::WaitPolicy;

    #[test]
    fn report_contains_key_sections() {
        let program = crate::testutil::phased_program(2, WaitPolicy::Passive, 6);
        let analysis = analyze(&program, 2, &LoopPointConfig::with_slice_base(2_000)).unwrap();
        let report = analysis_report(&program, &analysis);
        assert!(report.contains("program: phased"));
        assert!(report.contains("clustering: k ="));
        assert!(report.contains("looppoints ("));
        assert!(report.contains("multiplier"));
        // Symbolized markers use exported loop names.
        assert!(
            report.contains("compute.loop") || report.contains("stream.loop"),
            "{report}"
        );
        // One line per slice.
        let slice_lines = report
            .lines()
            .filter(|l| {
                l.trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            })
            .count();
        assert!(slice_lines >= analysis.profile.slices.len());
    }
}
