//! Integration tests for the persistent artifact store: cold/warm
//! equivalence, corruption recovery, and byte-budget eviction, exercised
//! through the public `analyze_cached` / `prepare_region_checkpoints_cached`
//! entry points.

use looppoint::persist::{
    encode_analysis_meta, encode_checkpoints, encode_clustering, encode_profile,
};
use looppoint::{
    analysis_key, analyze, analyze_cached, prepare_region_checkpoints_cached, LoopPointConfig,
};
use lp_obs::Observer;
use lp_omp::WaitPolicy;
use lp_store::{ArtifactKind, Store, StoreConfig};
use lp_workloads::{build, InputClass};
use std::path::PathBuf;
use std::sync::Arc;

const NTHREADS: usize = 2;

fn workload() -> Arc<lp_isa::Program> {
    let spec = lp_workloads::find("619.lbm_s.1").unwrap();
    build(&spec, InputClass::Test, NTHREADS, WaitPolicy::Passive)
}

fn small_cfg() -> LoopPointConfig {
    LoopPointConfig::with_slice_base(4_000)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lp-core-store-test-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn cold_then_warm_is_byte_identical() {
    let program = workload();
    let cfg = small_cfg();
    let dir = tmpdir("equiv");
    let store = Store::open(&dir, Observer::disabled()).unwrap();

    let (cold, from_store) = analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();
    assert!(!from_store, "first run must miss");
    assert!(store.stats().misses >= 1);

    let (warm, from_store) = analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();
    assert!(from_store, "second run must hit");
    assert!(store.stats().hits >= 4, "all four artifacts served");

    // The warm analysis re-encodes to exactly the cold bytes: the two are
    // the same analysis for every downstream purpose.
    assert_eq!(cold.pinball.to_bytes(), warm.pinball.to_bytes());
    assert_eq!(encode_profile(&cold.profile), encode_profile(&warm.profile));
    assert_eq!(
        encode_clustering(&cold.clustering),
        encode_clustering(&warm.clustering)
    );
    assert_eq!(
        encode_analysis_meta(&cold.dcfg, &cold.looppoints),
        encode_analysis_meta(&warm.dcfg, &warm.looppoints)
    );

    // An uncached analysis agrees too (determinism, not just persistence).
    let fresh = analyze(&program, NTHREADS, &cfg).unwrap();
    assert_eq!(
        encode_profile(&fresh.profile),
        encode_profile(&warm.profile)
    );

    // Checkpoints: cold builds (≥0 replay passes), warm replays nothing.
    let (ck_cold, hit) =
        prepare_region_checkpoints_cached(&cold, &program, NTHREADS, &cfg, 1, &store).unwrap();
    assert!(!hit);
    let (ck_warm, hit) =
        prepare_region_checkpoints_cached(&warm, &program, NTHREADS, &cfg, 1, &store).unwrap();
    assert!(hit);
    assert_eq!(ck_warm.replay_passes, 0, "warm path replays nothing");
    assert_eq!(encode_checkpoints(&ck_cold), encode_checkpoints(&ck_warm));
    assert_eq!(ck_cold.regions.len(), cold.looppoints.len());
}

#[test]
fn corrupt_artifact_is_detected_and_recomputed() {
    let program = workload();
    let cfg = small_cfg();
    let dir = tmpdir("corrupt");
    let store = Store::open(&dir, Observer::disabled()).unwrap();

    let (cold, _) = analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();

    // Flip one byte in the middle of the clustering artifact on disk.
    let key = analysis_key(&program, NTHREADS, &cfg);
    let path = dir.join(Store::file_name(&key, ArtifactKind::Clustering));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    // The warm path must notice (checksum), quarantine, and recompute.
    let (recovered, from_store) = analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();
    assert!(!from_store, "corrupted cache must not serve a hit");
    assert!(store.stats().corruptions >= 1, "corruption counted");
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
        .collect();
    assert_eq!(quarantined.len(), 1, "quarantined for post-mortem");

    // Recomputation equals the original, and the store healed itself.
    assert_eq!(
        encode_clustering(&recovered.clustering),
        encode_clustering(&cold.clustering)
    );
    let (_, from_store) = analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();
    assert!(from_store, "store healed after recompute");
}

#[test]
fn byte_budget_evicts_old_analyses() {
    let program = workload();
    let dir = tmpdir("evict");
    // Budget big enough for roughly one analysis' artifacts (~7 KB each at
    // this scale), not three.
    const BUDGET: u64 = 12 * 1024;
    let store = Store::open_with(
        &dir,
        StoreConfig {
            max_bytes: Some(BUDGET),
        },
        Observer::disabled(),
    )
    .unwrap();

    for slice_base in [3_000u64, 4_000, 5_000] {
        let mut cfg = small_cfg();
        cfg.slice_base = slice_base;
        analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();
    }
    let stats = store.stats();
    assert!(stats.evictions >= 1, "budget forced evictions");
    assert!(
        stats.bytes_stored <= BUDGET || store.len() == 1,
        "stored bytes within budget (or a single over-budget artifact): {} bytes, {} artifacts",
        stats.bytes_stored,
        store.len()
    );

    // The most recent analysis should still be warm.
    let mut cfg = small_cfg();
    cfg.slice_base = 5_000;
    let before = store.stats().hits;
    let (_, _from) = analyze_cached(&program, NTHREADS, &cfg, &store).unwrap();
    assert!(
        store.stats().hits > before,
        "most-recently-used artifacts survive eviction"
    );
}
