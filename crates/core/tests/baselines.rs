//! Baseline methodologies behave as the paper describes: BarrierPoint
//! degenerates without barriers, naive SimPoint errs under the active wait
//! policy, time-based sampling is accurate but visit-bound.

use looppoint::baselines::{
    analyze_barrierpoint, analyze_naive, extrapolate_naive, simulate_naive_regions,
    time_based_sampling,
};
use looppoint::{analyze, error_pct, simulate_whole, LoopPointConfig};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};
use std::sync::Arc;

const BUDGET: u64 = 2_000_000_000;

fn setup(name: &str, policy: WaitPolicy) -> (Arc<lp_isa::Program>, usize, looppoint::Analysis) {
    let spec = lp_workloads::find(name).unwrap();
    let n = spec.effective_threads(4);
    let p = build(&spec, InputClass::Train, 4, policy);
    let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(8_000)).unwrap();
    (p, n, analysis)
}

#[test]
fn barrierpoint_works_on_barrier_rich_apps() {
    // npb-bt uses explicit barriers every round: many inter-barrier
    // regions, good theoretical speedup.
    let (p, _n, analysis) = setup("npb-bt", WaitPolicy::Passive);
    let dcfg = std::sync::Arc::new(analysis.dcfg);
    let bp =
        analyze_barrierpoint(&analysis.pinball, &p, dcfg, &Default::default(), BUDGET).unwrap();
    assert!(bp.barriers > 10, "barrier-rich app, got {}", bp.barriers);
    assert!(bp.regions.len() > 10);
    assert!(
        bp.theoretical_serial() > 1.5,
        "usable speedup: {}",
        bp.theoretical_serial()
    );
}

#[test]
fn barrierpoint_degenerates_without_barriers() {
    // 657.xz_s.2 has no barriers (only region joins): few, huge
    // inter-barrier regions — the Fig. 9 failure case.
    let (p_xz, _, a_xz) = setup("657.xz_s.2", WaitPolicy::Passive);
    let bp_xz = analyze_barrierpoint(
        &a_xz.pinball,
        &p_xz,
        std::sync::Arc::new(a_xz.dcfg),
        &Default::default(),
        BUDGET,
    )
    .unwrap();

    let (p_bt, _, a_bt) = setup("npb-bt", WaitPolicy::Passive);
    let bp_bt = analyze_barrierpoint(
        &a_bt.pinball,
        &p_bt,
        std::sync::Arc::new(a_bt.dcfg),
        &Default::default(),
        BUDGET,
    )
    .unwrap();

    // xz's largest inter-barrier region is a far bigger fraction of the
    // app than bt's.
    let frac_xz = bp_xz.largest_region() as f64 / bp_xz.total_filtered as f64;
    let frac_bt = bp_bt.largest_region() as f64 / bp_bt.total_filtered as f64;
    assert!(
        frac_xz > 2.0 * frac_bt,
        "xz largest-region fraction {frac_xz:.3} vs bt {frac_bt:.3}"
    );
    assert!(
        bp_xz.theoretical_parallel() < bp_bt.theoretical_parallel(),
        "xz parallel speedup {} should trail bt {}",
        bp_xz.theoretical_parallel(),
        bp_bt.theoretical_parallel()
    );
}

#[test]
fn naive_simpoint_errs_more_under_active_policy() {
    // §II: instruction-count boundaries are unstable when threads spin.
    let cfg = SimConfig::gainestown(4);
    let mut errors = std::collections::HashMap::new();
    for policy in [WaitPolicy::Passive, WaitPolicy::Active] {
        let (p, n, analysis) = setup("627.cam4_s.1", policy);
        let slice_size = 8_000 * n as u64;
        let naive = analyze_naive(
            &analysis.pinball,
            &p,
            &analysis.dcfg,
            slice_size,
            &Default::default(),
            BUDGET,
        )
        .unwrap();
        let results = simulate_naive_regions(&naive, &p, n, &cfg, BUDGET).unwrap();
        let predicted = extrapolate_naive(&results);
        let full = simulate_whole(&p, n, &cfg).unwrap();
        errors.insert(policy.name(), error_pct(predicted, full.cycles as f64));
    }
    let active = errors["active"];
    let passive = errors["passive"];
    assert!(
        active > passive,
        "active error ({active:.1}%) should exceed passive ({passive:.1}%)"
    );
    assert!(
        active > 5.0,
        "active-policy naive sampling should err notably, got {active:.1}%"
    );
}

#[test]
fn time_based_sampling_is_accurate_but_visits_everything() {
    let (p, n, _) = setup("619.lbm_s.1", WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(4);
    let full = simulate_whole(&p, n, &cfg).unwrap();
    let ts = time_based_sampling(&p, n, &cfg, 2_000, 20_000, BUDGET).unwrap();

    let err = error_pct(ts.predicted_cycles, full.cycles as f64);
    assert!(err < 15.0, "time-based sampling error {err:.1}%");
    // It visited the whole program (totals differ by a handful of futex
    // retries, since mode switches perturb the interleaving slightly)...
    let visited = ts.detailed_insts + ts.ff_insts;
    let dv = (visited as f64 - full.instructions as f64).abs() / full.instructions as f64;
    assert!(dv < 1e-3, "visited {visited} vs full {}", full.instructions);
    // ...simulating only ~10% in detail.
    let frac = ts.detailed_fraction();
    assert!(frac > 0.05 && frac < 0.2, "detailed fraction {frac:.3}");
}
