//! Property tests for the live (online) sampling subsystem.
//!
//! Two bridges between the one-pass world and the two-phase pipeline:
//! the online clusterer must not *merge* structure the batch clusterer
//! found (feeding it the recorded BBVs of a two-phase profile with a
//! tight threshold yields at least the batch cluster count), and the
//! simulate/predict decision log must be a pure function of its inputs
//! (replaying the same pseudo-random region stream reproduces the log
//! line for line).

use looppoint::{analyze, LoopPointConfig};
use lp_bbv::SparseVec;
use lp_live::{Action, OnlineClassifier, OnlineConfig};
use lp_omp::WaitPolicy;
use lp_workloads::{build, matrix_demo, InputClass};
use proptest::prelude::*;
use std::sync::OnceLock;

const NTHREADS: usize = 4;

/// The two-phase profile is expensive (record + replays) and read-only
/// here, so every proptest case shares one.
fn batch_profile() -> &'static (Vec<SparseVec>, Vec<u64>, usize) {
    static PROFILE: OnceLock<(Vec<SparseVec>, Vec<u64>, usize)> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let spec = matrix_demo(1);
        let n = spec.effective_threads(NTHREADS);
        let p = build(&spec, InputClass::Test, NTHREADS, WaitPolicy::Passive);
        let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(4_000)).unwrap();
        let bbvs: Vec<SparseVec> = analysis
            .profile
            .slices
            .iter()
            .map(|s| s.bbv.clone())
            .collect();
        let weights: Vec<u64> = analysis
            .profile
            .slices
            .iter()
            .map(|s| s.filtered_insts)
            .collect();
        (bbvs, weights, analysis.clustering.k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Feeding the recorded two-phase BBVs to the online clusterer with
    /// a tight distance threshold spawns at least as many clusters as
    /// batch k-means chose: one pass may over-segment (it cannot see
    /// the future), but it must never collapse phases the offline
    /// clustering told apart.
    #[test]
    fn tight_online_clustering_reproduces_at_least_batch_k(threshold in 0.01f64..0.10) {
        let (bbvs, weights, batch_k) = batch_profile();
        let mut clf = OnlineClassifier::new(OnlineConfig {
            threshold,
            ..OnlineConfig::default()
        });
        for (i, bbv) in bbvs.iter().enumerate() {
            let d = clf.classify(i, bbv, weights[i]);
            // Give every detailed decision a sample so the classifier
            // exercises its full predict path too.
            if matches!(d.action, Action::Detail(_)) {
                clf.observe_detailed(d.cluster, i, d.distance, 1.0);
            }
        }
        prop_assert!(
            clf.k() >= *batch_k,
            "online k {} < batch k {batch_k} at threshold {threshold}",
            clf.k()
        );
        prop_assert_eq!(clf.decisions().len(), bbvs.len());
    }

    /// The simulate/predict decision log is a pure function of the
    /// region stream: replaying the same seeded pseudo-random stream of
    /// BBVs and detailed-sample IPCs reproduces it line for line.
    #[test]
    fn decision_log_is_deterministic_for_a_fixed_seed(seed in any::<u64>(), regions in 8usize..64) {
        let run = |seed: u64| -> Vec<String> {
            // Tiny xorshift stream — the test needs reproducible variety,
            // not statistical quality.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut clf = OnlineClassifier::new(OnlineConfig::default());
            for i in 0..regions {
                let mut map = std::collections::HashMap::new();
                for _ in 0..4 {
                    *map.entry(next() % 16).or_insert(0u64) += next() % 100 + 1;
                }
                let bbv = SparseVec::from_map(&map);
                let d = clf.classify(i, &bbv, 1_000);
                if matches!(d.action, Action::Detail(_)) {
                    let ipc = 0.5 + (next() % 40) as f64 / 10.0;
                    clf.observe_detailed(d.cluster, i, d.distance, ipc);
                }
            }
            clf.decisions().iter().map(|d| d.log_line()).collect()
        };
        let first = run(seed);
        let second = run(seed);
        prop_assert_eq!(&first, &second, "decision log must be deterministic");
        prop_assert_eq!(first.len(), regions);
    }
}
