//! Diagnostic harness (ignored by default): compares in-situ cycles between
//! two markers inside a full detailed run against the same region simulated
//! with fast-forward warmup — the check that caught the cold-I-cache bug.
//! Run with:
//! `cargo test -p looppoint --test debug_insitu -- --ignored --nocapture`

use looppoint::*;
use lp_omp::WaitPolicy;
use lp_sim::{Mode, Simulator, StopCond};
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};

#[test]
#[ignore]
fn insitu_vs_region() {
    let spec = lp_workloads::find("619.lbm_s.1").unwrap();
    let n = spec.effective_threads(4);
    let p = build(&spec, InputClass::Train, 4, WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(n);
    let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(8000)).unwrap();
    // Pick the biggest-multiplier region with both markers.
    let r = analysis
        .looppoints
        .iter()
        .filter(|r| r.start.is_some() && r.end.is_some())
        .max_by(|a, b| a.multiplier.partial_cmp(&b.multiplier).unwrap())
        .unwrap();
    let (s, e) = (r.region_start(), r.region_end());
    println!("region start={s} end={e}");
    // In-situ: detailed all the way, split at markers.
    let mut sim = Simulator::new(p.clone(), n, cfg.clone());
    sim.watch_pc(s.pc);
    sim.watch_pc(e.pc);
    let pre = sim
        .run(Mode::Detailed, Some(StopCond::Marker(s)), u64::MAX)
        .unwrap();
    let insitu = sim
        .run(Mode::Detailed, Some(StopCond::Marker(e)), u64::MAX)
        .unwrap();
    println!(
        "insitu: insts={} cycles={} ipc={:.2} (pre insts={})",
        insitu.instructions,
        insitu.cycles,
        insitu.instructions as f64 / insitu.cycles as f64,
        pre.instructions
    );
    // Region sim: FF to start, detailed to end.
    let mut sim2 = Simulator::new(p.clone(), n, cfg.clone());
    sim2.watch_pc(s.pc);
    sim2.watch_pc(e.pc);
    let ff = sim2
        .run(Mode::FastForward, Some(StopCond::Marker(s)), u64::MAX)
        .unwrap();
    let reg = sim2
        .run(Mode::Detailed, Some(StopCond::Marker(e)), u64::MAX)
        .unwrap();
    println!(
        "region: insts={} cycles={} ipc={:.2} (ff insts={})",
        reg.instructions,
        reg.cycles,
        reg.instructions as f64 / reg.cycles as f64,
        ff.instructions
    );
}
