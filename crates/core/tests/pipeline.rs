//! End-to-end LoopPoint pipeline tests: analysis, simulation,
//! extrapolation accuracy, and speedup accounting, on the synthetic
//! workload suite.

use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives, simulate_whole, speedups,
    LoopPointConfig,
};
use lp_isa::{AluOp, ProgramBuilder, Reg};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};
use std::sync::Arc;

const NTHREADS: usize = 4;

fn workload(name: &str, policy: WaitPolicy) -> (Arc<lp_isa::Program>, usize) {
    let spec = lp_workloads::find(name).unwrap();
    let n = spec.effective_threads(NTHREADS);
    (build(&spec, InputClass::Train, NTHREADS, policy), n)
}

fn small_cfg() -> LoopPointConfig {
    LoopPointConfig::with_slice_base(8_000)
}

/// Runs the full pipeline and returns (prediction error %, analysis size
/// facts) for one workload/policy.
fn end_to_end(name: &str, policy: WaitPolicy, simcfg: &SimConfig) -> f64 {
    let (p, n) = workload(name, policy);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let results = simulate_representatives(&analysis, &p, n, simcfg, false).unwrap();
    let prediction = extrapolate(&results);
    let full = simulate_whole(&p, n, simcfg).unwrap();
    error_pct(prediction.total_cycles, full.cycles as f64)
}

#[test]
fn analysis_invariants() {
    let (p, n) = workload("619.lbm_s.1", WaitPolicy::Passive);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();

    assert!(
        analysis.profile.slices.len() >= 6,
        "enough slices to cluster"
    );
    assert!(
        analysis.looppoints.len() < analysis.profile.slices.len(),
        "sampling must reduce the workload: {} looppoints for {} slices",
        analysis.looppoints.len(),
        analysis.profile.slices.len()
    );

    // Eq. 2 invariant: multiplier-weighted representative sizes reconstruct
    // the whole-program filtered instruction count exactly.
    let reconstructed = analysis.reconstructed_filtered_insts();
    let actual = analysis.profile.total_filtered as f64;
    assert!(
        (reconstructed - actual).abs() / actual < 1e-9,
        "Eq. 2 exactness: {reconstructed} vs {actual}"
    );

    // Region boundaries are main-image loop headers.
    for lp in &analysis.looppoints {
        for m in [lp.start, lp.end].into_iter().flatten() {
            assert!(!p.is_library_pc(m.pc), "boundary {} in main image", m);
        }
    }
}

#[test]
fn runtime_prediction_is_accurate_passive() {
    let cfg = SimConfig::gainestown(NTHREADS);
    for name in ["619.lbm_s.1", "603.bwaves_s.1"] {
        let err = end_to_end(name, WaitPolicy::Passive, &cfg);
        assert!(err < 8.0, "{name} passive runtime error {err:.2}%");
    }
}

#[test]
fn runtime_prediction_is_accurate_active() {
    // The difficult case: spin loops inflate instruction counts, but the
    // spin filter keeps markers and multipliers stable.
    let cfg = SimConfig::gainestown(NTHREADS);
    let err = end_to_end("619.lbm_s.1", WaitPolicy::Active, &cfg);
    assert!(err < 8.0, "active runtime error {err:.2}%");
}

#[test]
fn looppoints_are_portable_across_microarchitectures() {
    // Fig. 5b: the same analysis (markers chosen once) predicts an
    // *in-order* machine too — no re-analysis.
    let (p, n) = workload("603.bwaves_s.1", WaitPolicy::Passive);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let cfg = SimConfig::gainestown_inorder(NTHREADS);
    let results = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let prediction = extrapolate(&results);
    let full = simulate_whole(&p, n, &cfg).unwrap();
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    assert!(err < 8.0, "in-order prediction error {err:.2}%");
}

#[test]
fn metric_extrapolation_tracks_full_run() {
    let (p, n) = workload("619.lbm_s.1", WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(NTHREADS);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let results = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let prediction = extrapolate(&results);
    let full = simulate_whole(&p, n, &cfg).unwrap();

    // Absolute-difference comparisons, as the paper presents Fig. 7b/7c.
    assert!(
        (prediction.l2_mpki - full.l2_mpki()).abs() < 2.0,
        "L2 MPKI: predicted {} vs {}",
        prediction.l2_mpki,
        full.l2_mpki()
    );
    assert!(
        (prediction.branch_mpki - full.branch_mpki()).abs() < 2.0,
        "branch MPKI: predicted {} vs {}",
        prediction.branch_mpki,
        full.branch_mpki()
    );
    assert!(error_pct(prediction.total_instructions, full.instructions as f64) < 8.0);
}

#[test]
fn speedup_report_shape() {
    let (p, n) = workload("649.fotonik3d_s.1", WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(NTHREADS);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let results = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let full = simulate_whole(&p, n, &cfg).unwrap();
    let sp = speedups(&analysis, &results, &full);

    assert!(
        sp.theoretical_serial > 1.5,
        "sampling reduces detailed work: {}x",
        sp.theoretical_serial
    );
    assert!(
        sp.theoretical_parallel >= sp.theoretical_serial,
        "parallel ({}) ≥ serial ({})",
        sp.theoretical_parallel,
        sp.theoretical_serial
    );
}

#[test]
fn parallel_and_serial_region_simulation_agree() {
    let (p, n) = workload("619.lbm_s.1", WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(NTHREADS);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let serial = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let parallel = simulate_representatives(&analysis, &p, n, &cfg, true).unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (s, par) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.stats.cycles, par.stats.cycles,
            "simulation is deterministic"
        );
        assert_eq!(s.stats.instructions, par.stats.instructions);
    }
}

#[test]
fn single_threaded_application_works() {
    // 657.xz_s.1 runs single-threaded in the paper.
    let (p, n) = workload("657.xz_s.1", WaitPolicy::Passive);
    assert_eq!(n, 1);
    let cfg = SimConfig::gainestown(1);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let results = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let prediction = extrapolate(&results);
    let full = simulate_whole(&p, n, &cfg).unwrap();
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    assert!(err < 8.0, "single-threaded error {err:.2}%");
}

#[test]
fn heterogeneous_application_works() {
    // 657.xz_s.2: 4 threads, imbalanced — the concatenated per-thread BBVs
    // must still produce accurate representatives.
    let (p, n) = workload("657.xz_s.2", WaitPolicy::Passive);
    assert_eq!(n, 4);
    let cfg = SimConfig::gainestown(4);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let results = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let prediction = extrapolate(&results);
    let full = simulate_whole(&p, n, &cfg).unwrap();
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    assert!(err < 15.0, "heterogeneous error {err:.2}%");
}

#[test]
fn program_without_loops_reports_no_slices() {
    let mut pb = ProgramBuilder::new("flat");
    let mut c = pb.main_code();
    for _ in 0..50 {
        c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    }
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());
    let err = analyze(&p, 1, &LoopPointConfig::default()).unwrap_err();
    assert!(matches!(err, looppoint::LoopPointError::NoSlices { .. }));
}

#[test]
fn checkpoint_driven_simulation_matches_binary_driven() {
    // The checkpoint-driven mode (restore + short warmup) must agree with
    // binary-driven (fast-forward from program start) on extrapolated
    // runtime to within warmup noise, while doing far less warmup work.
    let (p, n) = workload("619.lbm_s.1", WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(NTHREADS);
    let analysis = analyze(&p, n, &small_cfg()).unwrap();
    let binary = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let ckpt =
        looppoint::simulate_representatives_checkpointed(&analysis, &p, n, &cfg, 2, false).unwrap();

    let pred_b = extrapolate(&binary).total_cycles;
    let pred_c = extrapolate(&ckpt).total_cycles;
    let diff = (pred_b - pred_c).abs() / pred_b;
    assert!(
        diff < 0.10,
        "modes agree: binary {pred_b:.0} vs checkpointed {pred_c:.0}"
    );

    // And the checkpoint-driven mode skips most fast-forward work.
    let ff_b: u64 = binary.iter().map(|r| r.stats.ff_instructions).sum();
    let ff_c: u64 = ckpt.iter().map(|r| r.stats.ff_instructions).sum();
    assert!(
        ff_c * 4 < ff_b,
        "checkpointed warmup ({ff_c}) ≪ binary-driven fast-forward ({ff_b})"
    );

    // Accuracy against the full run holds too.
    let full = simulate_whole(&p, n, &cfg).unwrap();
    let err = error_pct(pred_c, full.cycles as f64);
    assert!(err < 10.0, "checkpoint-driven error {err:.2}%");
}
