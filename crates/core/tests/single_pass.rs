//! Single-pass checkpoint generation: equivalence with the legacy
//! per-region path, the one-replay guarantee, and serial/pooled simulation
//! determinism.

use looppoint::{
    analyze, prepare_region_checkpoints, prepare_region_checkpoints_per_region, simulate_prepared,
    simulate_representatives_checkpointed, simulate_representatives_checkpointed_with,
    LoopPointConfig, SimOptions,
};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, matrix_demo, InputClass};
use std::sync::Arc;

const NTHREADS: usize = 4;
const WARMUP_SLICES: usize = 2;

fn demo_analysis() -> (Arc<lp_isa::Program>, usize, looppoint::Analysis) {
    let spec = matrix_demo(1);
    let n = spec.effective_threads(NTHREADS);
    let p = build(&spec, InputClass::Test, NTHREADS, WaitPolicy::Passive);
    let cfg = LoopPointConfig::with_slice_base(4_000);
    let analysis = analyze(&p, n, &cfg).unwrap();
    (p, n, analysis)
}

fn state_bytes(s: &lp_isa::MachineState) -> Vec<u8> {
    let mut buf = Vec::new();
    s.write_to(&mut buf).unwrap();
    buf
}

/// Asserts the deterministic parts of two [`lp_sim::SimStats`] are equal
/// (wall-clock fields are excluded by construction).
fn assert_stats_eq(a: &lp_sim::SimStats, b: &lp_sim::SimStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(
        a.filtered_instructions, b.filtered_instructions,
        "{what}: filtered instructions"
    );
    assert_eq!(
        a.per_thread_instructions, b.per_thread_instructions,
        "{what}: per-thread instructions"
    );
    assert_eq!(
        a.ff_instructions, b.ff_instructions,
        "{what}: warmup instructions"
    );
    assert_eq!(a.branch, b.branch, "{what}: branch stats");
    assert_eq!(a.mem, b.mem, "{what}: memory stats");
}

#[test]
fn single_pass_prepares_identical_checkpoints_in_one_replay() {
    let (p, _, analysis) = demo_analysis();
    assert!(
        analysis.looppoints.len() >= 2,
        "need multiple regions to make the one-pass guarantee interesting"
    );

    let single = prepare_region_checkpoints(&analysis, &p, WARMUP_SLICES).unwrap();
    let legacy = prepare_region_checkpoints_per_region(&analysis, &p, WARMUP_SLICES).unwrap();

    // The headline property: one replay pass regardless of region count.
    assert_eq!(
        single.replay_passes, 1,
        "single-pass generation must replay the pinball exactly once"
    );
    assert_eq!(
        legacy.replay_passes,
        legacy
            .regions
            .iter()
            .filter(|r| r.checkpoint.is_some())
            .count() as u64,
        "legacy path replays once per checkpointed region"
    );
    assert!(legacy.replay_passes >= 1);

    // Byte-identical payloads, region by region.
    assert_eq!(single.regions.len(), legacy.regions.len());
    for (a, b) in single.regions.iter().zip(&legacy.regions) {
        assert_eq!(a.region.slice_index, b.region.slice_index);
        match (&a.checkpoint, &b.checkpoint) {
            (None, None) => {}
            (Some((sa, ca)), Some((sb, cb))) => {
                assert_eq!(
                    state_bytes(sa),
                    state_bytes(sb),
                    "snapshot for slice {} must be byte-identical",
                    a.region.slice_index
                );
                let mut ca = ca.clone();
                let mut cb = cb.clone();
                ca.sort_unstable();
                cb.sort_unstable();
                assert_eq!(ca, cb, "watch counts for slice {}", a.region.slice_index);
            }
            _ => panic!(
                "checkpoint presence differs for slice {}",
                a.region.slice_index
            ),
        }
    }
}

#[test]
fn checkpointed_simulation_unchanged_by_single_pass_and_pool() {
    let (p, n, analysis) = demo_analysis();
    let simcfg = SimConfig::gainestown(n);

    // Serial, via the classic entry point (single-pass prepare inside).
    let serial =
        simulate_representatives_checkpointed(&analysis, &p, n, &simcfg, WARMUP_SLICES, false)
            .unwrap();

    // Legacy prepare + serial simulate: the pre-PR result.
    let legacy_prep = prepare_region_checkpoints_per_region(&analysis, &p, WARMUP_SLICES).unwrap();
    let legacy = simulate_prepared(&legacy_prep, &p, n, &simcfg, &SimOptions::default()).unwrap();

    // Bounded-pool parallel run.
    let pooled = simulate_representatives_checkpointed_with(
        &analysis,
        &p,
        n,
        &simcfg,
        WARMUP_SLICES,
        &SimOptions {
            parallel: true,
            pool_size: Some(3),
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(serial.len(), legacy.len());
    assert_eq!(serial.len(), pooled.len());
    for ((s, l), q) in serial.iter().zip(&legacy).zip(&pooled) {
        assert_eq!(s.region.slice_index, l.region.slice_index);
        assert_eq!(s.region.slice_index, q.region.slice_index);
        assert_stats_eq(&s.stats, &l.stats, "single-pass vs legacy prepare");
        assert_stats_eq(&s.stats, &q.stats, "serial vs pooled simulation");
    }
}
