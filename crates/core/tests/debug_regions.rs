//! Diagnostic harness (ignored by default): dumps per-slice and per-region
//! data for one workload. Run with:
//! `APP=<name> cargo test -p looppoint --test debug_regions -- --ignored --nocapture`

use looppoint::*;
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};

#[test]
#[ignore]
fn dump_regions() {
    let name = std::env::var("APP").unwrap_or_else(|_| "619.lbm_s.1".into());
    let spec = lp_workloads::find(&name).unwrap();
    let n = spec.effective_threads(4);
    let p = build(&spec, InputClass::Train, 4, WaitPolicy::Passive);
    let cfg = SimConfig::gainestown(n);
    let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(8000)).unwrap();
    println!(
        "slices={} k={}",
        analysis.profile.slices.len(),
        analysis.looppoints.len()
    );
    for s in &analysis.profile.slices {
        println!(
            "slice {:3} filt={:7} tot={:7} cluster={}",
            s.index, s.filtered_insts, s.total_insts, analysis.clustering.assignments[s.index]
        );
    }
    let results = simulate_representatives(&analysis, &p, n, &cfg, false).unwrap();
    let mut pred_cycles = 0.0;
    for r in &results {
        let ipc = r.stats.instructions as f64 / r.stats.cycles.max(1) as f64;
        println!(
            "rep slice={:3} mult={:7.3} insts={:7} cycles={:8} ipc={:.2} contrib={:.0}",
            r.region.slice_index,
            r.region.multiplier,
            r.stats.instructions,
            r.stats.cycles,
            ipc,
            r.stats.cycles as f64 * r.region.multiplier
        );
        pred_cycles += r.stats.cycles as f64 * r.region.multiplier;
    }
    let full = simulate_whole(&p, n, &cfg).unwrap();
    println!(
        "full: insts={} cycles={} ipc={:.2}",
        full.instructions,
        full.cycles,
        full.ipc()
    );
    println!(
        "pred cycles={} err={:.2}%",
        pred_cycles,
        error_pct(pred_cycles, full.cycles as f64)
    );
}
