//! The artifact's `run-looppoint.py` driver, reimplemented for this
//! reproduction: runs the end-to-end methodology for one or more programs
//! and prints error and speedup numbers on the console.
//!
//! ```text
//! run-looppoint -p demo-matrix-1 -n 8
//! run-looppoint -p demo-matrix-2,demo-matrix-3 -w active -i test
//! run-looppoint -p 627.cam4_s.1 -i train -w active
//! run-looppoint -p 619.lbm_s.1 --native
//! ```

use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives_checkpointed, simulate_whole,
    speedups, LoopPointConfig,
};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, matrix_demo, InputClass, WorkloadSpec};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    programs: Vec<String>,
    ncores: usize,
    input: InputClass,
    policy: WaitPolicy,
    native: bool,
    verbose: bool,
    slice_base: u64,
}

const USAGE: &str = "\
run-looppoint — end-to-end LoopPoint sampling for one or more programs

USAGE:
    run-looppoint [OPTIONS]

OPTIONS:
    -p, --program <names>      comma-separated programs (demo-matrix-1..3,
                               any SPEC-like app e.g. 627.cam4_s.1, or any
                               NPB-like kernel e.g. npb-cg)
                               [default: demo-matrix-1]
    -n, --ncores <n>           number of threads [default: 8]
    -i, --input-class <class>  test | train | ref | C [default: test]
    -w, --wait-policy <p>      passive | active [default: passive]
        --slice-base <n>       per-thread slice size in filtered
                               instructions [default: 8000]
        --native               run the program natively (functional only)
    -v, --verbose              print the full analysis report (slices,
                               clusters, symbolized markers)
        --force                start a new end-to-end run (accepted for
                               artifact-script compatibility; runs are
                               always fresh here)
    -h, --help                 print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        programs: vec!["demo-matrix-1".to_string()],
        ncores: 8,
        input: InputClass::Test,
        policy: WaitPolicy::Passive,
        native: false,
        verbose: false,
        slice_base: 8_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "-p" | "--program" => {
                args.programs = value("-p")?.split(',').map(|s| s.trim().to_string()).collect();
            }
            "-n" | "--ncores" => {
                args.ncores = value("-n")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "-i" | "--input-class" => {
                args.input = match value("-i")?.as_str() {
                    "test" => InputClass::Test,
                    "train" => InputClass::Train,
                    "ref" => InputClass::Ref,
                    "C" | "c" => InputClass::NpbC,
                    other => return Err(format!("unknown input class '{other}'")),
                };
            }
            "-w" | "--wait-policy" => {
                args.policy = match value("-w")?.as_str() {
                    "passive" => WaitPolicy::Passive,
                    "active" => WaitPolicy::Active,
                    other => return Err(format!("unknown wait policy '{other}'")),
                };
            }
            "--slice-base" => {
                args.slice_base = value("--slice-base")?
                    .parse()
                    .map_err(|e| format!("bad slice base: {e}"))?;
            }
            "--native" => args.native = true,
            "-v" | "--verbose" => args.verbose = true,
            "--force" | "--reuse-profile" | "--reuse-fullsim" => {
                // Artifact-script compatibility: accepted, nothing to reuse.
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn resolve(name: &str) -> Option<WorkloadSpec> {
    match name {
        "demo-matrix-1" => Some(matrix_demo(1)),
        "demo-matrix-2" => Some(matrix_demo(2)),
        "demo-matrix-3" => Some(matrix_demo(3)),
        other => lp_workloads::find(other),
    }
}

fn run_one(spec: &WorkloadSpec, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let nthreads = spec.effective_threads(args.ncores);
    let program = build(spec, args.input, args.ncores, args.policy);
    println!(
        "\n=== {} | input {} | {} threads | {} wait policy ===",
        spec.name,
        args.input.name(),
        nthreads,
        args.policy
    );

    if args.native {
        let start = std::time::Instant::now();
        let mut m = lp_isa::Machine::new(program, nthreads);
        m.run_to_completion(u64::MAX)?;
        println!(
            "native run: {} instructions in {:.2?} ({:.1} Minst/s)",
            m.global_retired(),
            start.elapsed(),
            m.global_retired() as f64 / start.elapsed().as_secs_f64() / 1e6
        );
        return Ok(());
    }

    let simcfg = SimConfig::gainestown(nthreads.max(args.ncores));
    let cfg = LoopPointConfig::with_slice_base(args.slice_base);

    println!("[1/4] profiling (record + constrained replays) ...");
    let analysis = analyze(&program, nthreads, &cfg)?;
    println!(
        "      {} slices, {} clusters -> {} looppoints; spin filter removed {:.1}% of instructions",
        analysis.profile.slices.len(),
        analysis.clustering.k,
        analysis.looppoints.len(),
        analysis.profile.filter_ratio() * 100.0
    );

    if args.verbose {
        println!("\n{}", looppoint::report::analysis_report(&program, &analysis));
    }
    println!("[2/4] simulating {} regions (checkpoint-driven, 2-slice warmup) ...", analysis.looppoints.len());
    let results =
        simulate_representatives_checkpointed(&analysis, &program, nthreads, &simcfg, 2, false)?;

    println!("[3/4] extrapolating whole-program performance ...");
    let prediction = extrapolate(&results);

    if args.input == InputClass::Ref {
        // As in the paper, no full detailed reference at ref scale.
        let total = analysis.profile.total_filtered;
        let sum: u64 = analysis.looppoints.iter().map(|r| r.filtered_insts).sum();
        let max = analysis.looppoints.iter().map(|r| r.filtered_insts).max().unwrap_or(1);
        println!("[4/4] ref inputs: skipping full-application reference (impractical, as in the paper)");
        println!("      predicted runtime: {:.0} cycles", prediction.total_cycles);
        println!(
            "      theoretical speedup: serial {:.1}x, parallel {:.1}x",
            total as f64 / sum.max(1) as f64,
            total as f64 / max as f64
        );
        return Ok(());
    }

    println!("[4/4] full-application reference simulation ...");
    let full = simulate_whole(&program, nthreads, &simcfg)?;
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    let sp = speedups(&analysis, &results, &full);

    println!("\nresults:");
    println!("  predicted runtime : {:>12.0} cycles", prediction.total_cycles);
    println!("  measured runtime  : {:>12} cycles", full.cycles);
    println!("  runtime error     : {err:.2}%");
    println!(
        "  branch MPKI       : predicted {:.3}, measured {:.3}",
        prediction.branch_mpki,
        full.branch_mpki()
    );
    println!(
        "  L2 MPKI           : predicted {:.3}, measured {:.3}",
        prediction.l2_mpki,
        full.l2_mpki()
    );
    println!(
        "  speedup           : theoretical serial {:.1}x / parallel {:.1}x, actual serial {:.1}x / parallel {:.1}x",
        sp.theoretical_serial, sp.theoretical_parallel, sp.actual_serial, sp.actual_parallel
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for name in &args.programs {
        let Some(spec) = resolve(name) else {
            eprintln!("error: unknown program '{name}' (see --help)");
            return ExitCode::FAILURE;
        };
        if let Err(e) = run_one(&spec, &args) {
            eprintln!("error: {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
