//! The artifact's `run-looppoint.py` driver, reimplemented for this
//! reproduction: runs the end-to-end methodology for one or more programs
//! and prints error and speedup numbers on the console.
//!
//! ```text
//! run-looppoint -p demo-matrix-1 -n 8
//! run-looppoint -p demo-matrix-2,demo-matrix-3 -w active -i test
//! run-looppoint -p 627.cam4_s.1 -i train -w active
//! run-looppoint -p 619.lbm_s.1 --native
//! run-looppoint -p demo-matrix-1 --trace-out lp.trace.json --metrics-out lp.metrics.json
//!
//! run-looppoint serve --farm-listen 127.0.0.1:0 --workers 2
//! run-looppoint submit --farm 127.0.0.1:9190 -p demo-matrix-1,demo-matrix-1 --wait
//! run-looppoint status --farm 127.0.0.1:9190 [--job 3]
//! run-looppoint shutdown --farm 127.0.0.1:9190 --mode drain
//! ```
//!
//! Exit codes: `0` success; `1` pipeline/service error (a run failed, a
//! job failed, the farm rejected work); `2` configuration or usage error
//! (bad flags, unknown program name, unopenable store, unbindable
//! address). A killed process dies by signal and reports no exit code.

use looppoint::{
    analyze, analyze_cached, diagnose, error_pct, extrapolate, prepare_region_checkpoints_cached,
    simulate_prepared, simulate_representatives_checkpointed_with, simulate_whole, speedups,
    DiagReport, LoopPointConfig, SimOptions, DEFAULT_MAX_STEPS,
};
use lp_farm::{Farm, FarmConfig, FarmServer, PipelineBackend, ShutdownMode};
use lp_farm_proto::FarmClient;
use lp_obs::{
    lp_debug, lp_info, lp_warn, FlushTargets, LogLevel, Observer, PeriodicFlusher, TelemetryServer,
};
use lp_omp::WaitPolicy;
use lp_store::{Store, StoreConfig};
use lp_uarch::SimConfig;
use lp_workloads::{build, matrix_demo, InputClass, WorkloadSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exit code for pipeline/service failures.
const EXIT_PIPELINE: u8 = 1;
/// Exit code for configuration/usage errors.
const EXIT_CONFIG: u8 = 2;

fn config_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(EXIT_CONFIG)
}

#[derive(Debug)]
struct Args {
    programs: Vec<String>,
    ncores: usize,
    input: InputClass,
    policy: WaitPolicy,
    native: bool,
    verbose: bool,
    slice_base: u64,
    max_steps: u64,
    pool_size: usize,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    diag_report: Option<String>,
    serve_metrics: Option<String>,
    serve_linger_ms: u64,
    flush_interval_ms: u64,
    log_level: LogLevel,
    store_dir: Option<String>,
    store_max_bytes: Option<u64>,
    no_store: bool,
}

const USAGE: &str = "\
run-looppoint — end-to-end LoopPoint sampling for one or more programs

USAGE:
    run-looppoint [OPTIONS]                 one-shot pipeline run
    run-looppoint live [OPTIONS]            one-shot Pac-Sim-style online
                                            sampling: no profiling prequel,
                                            regions classified as the
                                            program runs, compared against
                                            a full-detail reference (one
                                            JSON summary line per program)
    run-looppoint serve [SERVE OPTIONS]     lp-farm analysis daemon
    run-looppoint submit --farm <addr> ...  submit jobs to a daemon
    run-looppoint status --farm <addr>      queue or per-job status
    run-looppoint trace <job-id> --farm <addr>  print a job's span tree
                                            (a 32-hex trace id instead of a
                                            job id fetches the merged
                                            cross-node cluster trace)
    run-looppoint top --farm <addr>         live cluster dashboard: per-node
                                            jobs/s, queue depth, dedup %,
                                            queue-wait quantiles, sparklines
    run-looppoint shutdown --farm <addr>    drain or stop a daemon
    run-looppoint farm-load --farm <addr>   concurrent keep-alive load burst

EXIT CODES:
    0  success
    1  pipeline/service error (a run or job failed, work was rejected)
    2  configuration or usage error (bad flags, unknown program,
       unopenable store, unbindable address)

SERVE OPTIONS (see also --store-dir/--store-max-bytes/--log-level below):
        --farm-listen <addr>   bind address [default: 127.0.0.1:0 —
                               ephemeral port, printed on startup]
        --workers <n>          worker pool width [default: 2]
        --queue-capacity <n>   bounded queue size; submissions past it
                               are rejected with Retry-After [default: 64]
        --max-attempts <n>     attempts before a job fails permanently
                               [default: 3]
        --job-timeout-ms <n>   default per-job deadline; 0 = none
                               [default: 0]
        --farm-dir <path>      queue journal directory: queued and
                               running jobs survive restarts
        --journal-flush-ms <n> journal group-commit window: transitions
                               landing within it share one fsync
                               [default: 1]
        --journal-compact-factor <n>
                               compact the transition log back into the
                               snapshot once it exceeds this multiple of
                               the snapshot size [default: 4]
        --trace-capacity <n>   finished job traces retained in the
                               in-memory flight recorder; oldest are
                               evicted past this [default: 256]
        --history-interval-ms <n>
                               metrics time-series sampling period for
                               GET /metrics/history; 0 disables sampling
                               [default: 1000]
        --history-capacity <n> history ring size: samples retained per
                               series before the oldest are overwritten
                               [default: 512]

CLUSTER SERVE OPTIONS (multi-node farm; all require --node-addr):
        --node-addr <addr>     this node's advertised host:port — peers
                               dial it, and it becomes the bind address
                               unless --farm-listen says otherwise
        --cluster-peer <addr[=dir]>
                               a static cluster member (repeatable);
                               '=dir' names that peer's --farm-dir so
                               the agreed survivor can adopt its
                               journaled queue after a crash
        --join <addr>          learn the member list from a running node
                               and announce this one to the cluster
        --vnodes <n>           virtual nodes per member on the
                               consistent-hash ring [default: 64]
        --heartbeat-ms <n>     peer liveness probe period [default: 500]
        --failure-threshold <n>
                               consecutive failed probes before a peer
                               is declared dead [default: 3]
        --rpc-timeout-ms <n>   forward/fetch/probe timeout
                               [default: 5000]

SUBMIT/STATUS/SHUTDOWN OPTIONS:
        --farm <addr>          daemon address (required)
        --wait                 submit: poll until every job is terminal
        --live                 submit/farm-load: run jobs in live mode
                               (online sampling, streaming LiveProgress
                               partials over GET /jobs/{id})
        --job <id>             status: one job instead of the queue;
                               trace: alternative to the positional id
        --follow               status: with --job, poll the job's NDJSON
                               stream and render LiveProgress lines in
                               place until the job is terminal
        --mode <drain|now>     shutdown: finish everything (drain) or
                               interrupt and requeue (now) [default: drain]
        --priority <n>         submit: scheduling priority (higher first)
        --timeout-ms <n>       submit: per-job deadline override
        --clients <n>          farm-load: concurrent keep-alive clients
                               [default: 4]
        --jobs <n>             farm-load: total jobs across all clients,
                               sent as a mix of batch and single POSTs
                               [default: 48]

TOP OPTIONS:
        --farm <addr>          any cluster member (required); single
                               farms work too (one-row dashboard)
        --interval-ms <n>      refresh period [default: 1000]
        --iterations <n>       render n frames then exit; 0 = refresh
                               until Ctrl-C [default: 0]

OPTIONS:
    -p, --program <names>      comma-separated programs (demo-matrix-1..3,
                               any SPEC-like app e.g. 627.cam4_s.1, or any
                               NPB-like kernel e.g. npb-cg)
                               [default: demo-matrix-1]
    -n, --ncores <n>           number of threads [default: 8]
    -i, --input-class <class>  test | train | ref | C [default: test]
    -w, --wait-policy <p>      passive | active [default: passive]
        --slice-base <n>       per-thread slice size in filtered
                               instructions [default: 8000]
        --max-steps <n>        hard step budget for any single simulation
                               or replay [default: 4000000000]
        --pool-size <n>        simulate regions concurrently on a bounded
                               worker pool of n threads; 0 = serial
                               [default: 0]
        --native               run the program natively (functional only)
        --trace-out <path>     write a Chrome trace_event JSON of every
                               pipeline phase, region simulation, and IPC
                               heartbeat (open in chrome://tracing or
                               https://ui.perfetto.dev)
        --metrics-out <path>   write a flat JSON metrics report (counters,
                               gauges, log2-bucketed histograms)
        --diag-report <path>   write accuracy-attribution reports (one JSON
                               array element per program): per-cluster
                               signed error split into representativeness,
                               warmup, and extrapolation causes, plus a
                               self-profile of the pipeline's own time
        --serve-metrics <addr> live telemetry endpoint while the run is in
                               flight (e.g. 127.0.0.1:9184; port 0 picks an
                               ephemeral one, printed on startup):
                               GET /metrics (Prometheus text), /healthz
                               (phase + heartbeat JSON), /report (latest
                               accuracy report)
        --serve-linger-ms <n>  keep the telemetry endpoint alive n ms after
                               the runs finish (lets scrapers catch the
                               final state) [default: 0]
        --flush-interval-ms <n> rewrite --trace-out/--metrics-out atomically
                               every n ms, so a killed run still leaves
                               valid telemetry at most one interval stale
                               [default: 5000]
        --store-dir <path>     persistent artifact store: cache pinballs,
                               analyses, BBV matrices, clusterings, and
                               region checkpoints keyed by (program,
                               threads, config); re-runs skip recording,
                               replay, slicing, clustering, and checkpoint
                               generation
        --store-max-bytes <n>  on-disk byte budget for the store; least
                               recently used artifacts are evicted
                               [default: unbounded]
        --no-store             ignore --store-dir (one-off fresh run)
        --log-level <level>    quiet | info | debug [default: info]
    -v, --verbose              print the full analysis report (slices,
                               clusters, symbolized markers)
        --force                start a new end-to-end run (accepted for
                               artifact-script compatibility; runs are
                               always fresh here)
    -h, --help                 print this help
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        programs: vec!["demo-matrix-1".to_string()],
        ncores: 8,
        input: InputClass::Test,
        policy: WaitPolicy::Passive,
        native: false,
        verbose: false,
        slice_base: 8_000,
        max_steps: DEFAULT_MAX_STEPS,
        pool_size: 0,
        trace_out: None,
        metrics_out: None,
        diag_report: None,
        serve_metrics: None,
        serve_linger_ms: 0,
        flush_interval_ms: 5_000,
        log_level: LogLevel::Info,
        store_dir: None,
        store_max_bytes: None,
        no_store: false,
    };
    let mut it = argv.iter().cloned();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "-p" | "--program" => {
                args.programs = value("-p")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "-n" | "--ncores" => {
                args.ncores = value("-n")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "-i" | "--input-class" => {
                args.input = match value("-i")?.as_str() {
                    "test" => InputClass::Test,
                    "train" => InputClass::Train,
                    "ref" => InputClass::Ref,
                    "C" | "c" => InputClass::NpbC,
                    other => return Err(format!("unknown input class '{other}'")),
                };
            }
            "-w" | "--wait-policy" => {
                args.policy = match value("-w")?.as_str() {
                    "passive" => WaitPolicy::Passive,
                    "active" => WaitPolicy::Active,
                    other => return Err(format!("unknown wait policy '{other}'")),
                };
            }
            "--slice-base" => {
                args.slice_base = value("--slice-base")?
                    .parse()
                    .map_err(|e| format!("bad slice base: {e}"))?;
            }
            "--max-steps" => {
                args.max_steps = value("--max-steps")?
                    .parse()
                    .map_err(|e| format!("bad step budget: {e}"))?;
                if args.max_steps == 0 {
                    return Err("--max-steps must be positive".to_string());
                }
            }
            "--pool-size" => {
                args.pool_size = value("--pool-size")?
                    .parse()
                    .map_err(|e| format!("bad pool size: {e}"))?;
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--diag-report" => args.diag_report = Some(value("--diag-report")?),
            "--serve-metrics" => args.serve_metrics = Some(value("--serve-metrics")?),
            "--serve-linger-ms" => {
                args.serve_linger_ms = value("--serve-linger-ms")?
                    .parse()
                    .map_err(|e| format!("bad linger interval: {e}"))?;
            }
            "--flush-interval-ms" => {
                args.flush_interval_ms = value("--flush-interval-ms")?
                    .parse()
                    .map_err(|e| format!("bad flush interval: {e}"))?;
                if args.flush_interval_ms == 0 {
                    return Err("--flush-interval-ms must be positive".to_string());
                }
            }
            "--store-dir" => args.store_dir = Some(value("--store-dir")?),
            "--store-max-bytes" => {
                let n: u64 = value("--store-max-bytes")?
                    .parse()
                    .map_err(|e| format!("bad store byte budget: {e}"))?;
                if n == 0 {
                    return Err("--store-max-bytes must be positive".to_string());
                }
                args.store_max_bytes = Some(n);
            }
            "--no-store" => args.no_store = true,
            "--log-level" => {
                args.log_level = value("--log-level")?.parse()?;
            }
            "--native" => args.native = true,
            "-v" | "--verbose" => args.verbose = true,
            "--force" | "--reuse-profile" | "--reuse-fullsim" => {
                // Artifact-script compatibility: accepted, nothing to reuse.
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn resolve(name: &str) -> Option<WorkloadSpec> {
    match name {
        "demo-matrix-1" => Some(matrix_demo(1)),
        "demo-matrix-2" => Some(matrix_demo(2)),
        "demo-matrix-3" => Some(matrix_demo(3)),
        other => lp_workloads::find(other),
    }
}

fn run_one(
    spec: &WorkloadSpec,
    args: &Args,
    obs: &Observer,
    store: Option<&Store>,
) -> Result<Option<DiagReport>, Box<dyn std::error::Error>> {
    let want_diag = args.diag_report.is_some() || args.serve_metrics.is_some();
    let nthreads = spec.effective_threads(args.ncores);
    let program = build(spec, args.input, args.ncores, args.policy);
    let mut run_span = obs.span(&format!("run.{}", spec.name), "driver");
    run_span.arg("nthreads", nthreads);
    run_span.arg("input", args.input.name());
    lp_info!(
        "\n=== {} | input {} | {} threads | {} wait policy ===",
        spec.name,
        args.input.name(),
        nthreads,
        args.policy
    );

    if args.native {
        obs.set_phase(&format!("native:{}", spec.name));
        let start = std::time::Instant::now();
        let mut m = lp_isa::Machine::new(program, nthreads);
        m.run_to_completion(u64::MAX)?;
        lp_info!(
            "native run: {} instructions in {:.2?} ({:.1} Minst/s)",
            m.global_retired(),
            start.elapsed(),
            m.global_retired() as f64 / start.elapsed().as_secs_f64() / 1e6
        );
        return Ok(None);
    }

    let simcfg = SimConfig::gainestown(nthreads.max(args.ncores));
    let mut cfg = LoopPointConfig::with_slice_base(args.slice_base).with_observer(obs.clone());
    cfg.max_steps = args.max_steps;

    obs.set_phase(&format!("analyze:{}", spec.name));
    lp_info!("[1/4] profiling (record + constrained replays) ...");
    let (analysis, from_store) = match store {
        Some(store) => analyze_cached(&program, nthreads, &cfg, store)?,
        None => (analyze(&program, nthreads, &cfg)?, false),
    };
    if from_store {
        lp_info!("      analysis served from the artifact store (no recording or replay)");
    }
    lp_info!(
        "      {} slices, {} clusters -> {} looppoints; spin filter removed {:.1}% of instructions",
        analysis.profile.slices.len(),
        analysis.clustering.k,
        analysis.looppoints.len(),
        analysis.profile.filter_ratio() * 100.0
    );
    lp_debug!(
        "      clustering: bic={:.2} sse={:.2} sizes={:?}",
        analysis.clustering.bic,
        analysis.clustering.sse,
        analysis.clustering.cluster_sizes
    );

    if args.verbose {
        lp_info!(
            "\n{}",
            looppoint::report::analysis_report(&program, &analysis)
        );
    }
    obs.set_phase(&format!("simulate-regions:{}", spec.name));
    lp_info!(
        "[2/4] simulating {} regions (checkpoint-driven, 2-slice warmup{}) ...",
        analysis.looppoints.len(),
        if args.pool_size > 0 {
            format!(", {}-wide pool", args.pool_size)
        } else {
            String::new()
        }
    );
    let sim_opts = SimOptions {
        max_steps: args.max_steps,
        parallel: args.pool_size > 0,
        pool_size: (args.pool_size > 0).then_some(args.pool_size),
        ..Default::default()
    };
    let results = match store {
        Some(store) => {
            let (prepared, ck_hit) =
                prepare_region_checkpoints_cached(&analysis, &program, nthreads, &cfg, 2, store)?;
            if ck_hit {
                lp_info!("      region checkpoints served from the artifact store");
            }
            simulate_prepared(&prepared, &program, nthreads, &simcfg, &sim_opts)?
        }
        None => simulate_representatives_checkpointed_with(
            &analysis, &program, nthreads, &simcfg, 2, &sim_opts,
        )?,
    };

    obs.set_phase(&format!("extrapolate:{}", spec.name));
    lp_info!("[3/4] extrapolating whole-program performance ...");
    let prediction = extrapolate(&results);

    if args.input == InputClass::Ref {
        // As in the paper, no full detailed reference at ref scale.
        let total = analysis.profile.total_filtered;
        let sum: u64 = analysis.looppoints.iter().map(|r| r.filtered_insts).sum();
        let max = analysis
            .looppoints
            .iter()
            .map(|r| r.filtered_insts)
            .max()
            .unwrap_or(1);
        lp_info!(
            "[4/4] ref inputs: skipping full-application reference (impractical, as in the paper)"
        );
        lp_info!(
            "      predicted runtime: {:.0} cycles",
            prediction.total_cycles
        );
        lp_info!(
            "      theoretical speedup: serial {:.1}x, parallel {:.1}x",
            total as f64 / sum.max(1) as f64,
            total as f64 / max as f64
        );
        // No reference at ref scale: the report still carries weights,
        // distances, and the self-profile (errors attribute to zero).
        return Ok(want_diag.then(|| diagnose(spec.name, nthreads, &analysis, &results, None, obs)));
    }

    obs.set_phase(&format!("reference-sim:{}", spec.name));
    lp_info!("[4/4] full-application reference simulation ...");
    let full = simulate_whole(&program, nthreads, &simcfg)?;
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    let sp = speedups(&analysis, &results, &full);
    obs.gauge("driver.runtime_error_pct").set(err);

    lp_info!("\nresults:");
    lp_info!(
        "  predicted runtime : {:>12.0} cycles",
        prediction.total_cycles
    );
    lp_info!("  measured runtime  : {:>12} cycles", full.cycles);
    lp_info!("  runtime error     : {err:.2}%");
    lp_info!(
        "  branch MPKI       : predicted {:.3}, measured {:.3}",
        prediction.branch_mpki,
        full.branch_mpki()
    );
    lp_info!(
        "  L2 MPKI           : predicted {:.3}, measured {:.3}",
        prediction.l2_mpki,
        full.l2_mpki()
    );
    lp_info!(
        "  speedup           : theoretical serial {:.1}x / parallel {:.1}x, actual serial {:.1}x / parallel {:.1}x",
        sp.theoretical_serial, sp.theoretical_parallel, sp.actual_serial, sp.actual_parallel
    );

    if !want_diag {
        return Ok(None);
    }
    obs.set_phase(&format!("diagnose:{}", spec.name));
    let report = diagnose(spec.name, nthreads, &analysis, &results, Some(&full), obs);
    if args.diag_report.is_some() {
        lp_info!("\n{}", report.render_table());
    }
    Ok(Some(report))
}

/// `run-looppoint live`: Pac-Sim-style one-shot online sampling — no
/// profiling prequel. Classifies regions as the program runs, streams
/// per-region progress, then compares the live estimate against a
/// full-detail reference run. One machine-parseable JSON summary line
/// per program on stdout (what ci's live-smoke gate reads).
fn live_run(argv: &[String]) -> ExitCode {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => return config_error(&e),
    };
    lp_obs::set_log_level(args.log_level);
    for name in &args.programs {
        if resolve(name).is_none() {
            return config_error(&format!("unknown program '{name}' (see --help)"));
        }
    }
    let obs = Observer::enabled();
    let mut reports: Vec<lp_obs::json::Value> = Vec::new();
    for name in &args.programs {
        let spec = resolve(name).expect("names were validated above");
        let nthreads = spec.effective_threads(args.ncores);
        let program = build(&spec, args.input, args.ncores, args.policy);
        let simcfg = SimConfig::gainestown(nthreads.max(args.ncores));
        let mut cfg =
            looppoint::LiveConfig::with_slice_base(args.slice_base).with_observer(obs.clone());
        cfg.max_steps = args.max_steps;
        lp_info!(
            "\n=== {} | live (online sampling) | input {} | {} threads ===",
            spec.name,
            args.input.name(),
            nthreads
        );
        let outcome = match looppoint::analyze_live(&program, nthreads, &cfg, &simcfg, &mut |p| {
            lp_info!("      {}", p.render());
        }) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: live run for {}: {e}", spec.name);
                return ExitCode::from(EXIT_PIPELINE);
            }
        };
        let full = match simulate_whole(&program, nthreads, &simcfg) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: full-detail reference for {}: {e}", spec.name);
                return ExitCode::from(EXIT_PIPELINE);
            }
        };
        let err = error_pct(outcome.est_total_cycles, full.cycles as f64);
        lp_info!(
            "  live estimate    : {:.0} cycles (IPC {:.3})",
            outcome.est_total_cycles,
            outcome.est_ipc()
        );
        lp_info!(
            "  full detail      : {} cycles (IPC {:.3})",
            full.cycles,
            full.ipc()
        );
        lp_info!("  cycles error     : {err:.2}%");
        lp_info!(
            "  detailed regions : {}/{} ({:.1}%), {} clusters",
            outcome.detailed_regions,
            outcome.regions.len(),
            outcome.detailed_fraction() * 100.0,
            outcome.clusters.len()
        );
        if args.verbose {
            for line in outcome.decision_log() {
                lp_info!("      {line}");
            }
        }
        if args.diag_report.is_some() {
            let report = looppoint::diagnose_live(spec.name, nthreads, &outcome, Some(&full), &obs);
            lp_info!("\n{}", report.render_table());
            reports.push(report.to_value());
        }
        let mut summary = match looppoint::LiveSummary::from_outcome(&outcome).to_value() {
            lp_obs::json::Value::Obj(members) => members,
            _ => unreachable!("LiveSummary::to_value returns an object"),
        };
        summary.insert(
            0,
            (
                "program".to_string(),
                lp_obs::json::Value::Str(spec.name.to_string()),
            ),
        );
        summary.push((
            "full_cycles".to_string(),
            lp_obs::json::Value::Int(full.cycles as i128),
        ));
        summary.push(("full_ipc".to_string(), lp_obs::json::Value::Num(full.ipc())));
        summary.push(("err_pct".to_string(), lp_obs::json::Value::Num(err)));
        println!("{}", lp_obs::json::Value::Obj(summary));
    }
    if let Some(path) = &args.diag_report {
        let doc = lp_obs::json::Value::Arr(reports).to_string();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(EXIT_PIPELINE);
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return farm_serve(&argv[1..]),
        Some("submit") => return farm_submit(&argv[1..]),
        Some("status") => return farm_status(&argv[1..]),
        Some("trace") => return farm_trace(&argv[1..]),
        Some("top") => return farm_top(&argv[1..]),
        Some("shutdown") => return farm_shutdown(&argv[1..]),
        Some("farm-load") => return farm_load(&argv[1..]),
        Some("live") => return live_run(&argv[1..]),
        _ => {}
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            return config_error(&e);
        }
    };
    lp_obs::set_log_level(args.log_level);

    // Unknown program names are a usage error, caught before any work
    // (or telemetry files) happen, so they exit with the config code.
    for name in &args.programs {
        if resolve(name).is_none() {
            return config_error(&format!("unknown program '{name}' (see --help)"));
        }
    }

    // One enabled observer per process when any export is requested (or at
    // debug verbosity, so spans are available for inspection); installed
    // globally so every layer — including the Copy-config crates
    // lp-pinball and lp-simpoint — records into the same sink.
    let want_obs = args.trace_out.is_some()
        || args.metrics_out.is_some()
        || args.diag_report.is_some()
        || args.serve_metrics.is_some()
        || args.log_level >= LogLevel::Debug;
    let obs = if want_obs {
        Observer::enabled()
    } else {
        Observer::disabled()
    };
    if want_obs && lp_obs::set_global(obs.clone()).is_err() {
        lp_warn!("global observer already installed; exports may be incomplete");
    }

    let store = match (&args.store_dir, args.no_store) {
        (Some(dir), false) => {
            let config = StoreConfig {
                max_bytes: args.store_max_bytes,
            };
            match Store::open_with(dir, config, obs.clone()) {
                Ok(s) => Some(s),
                Err(e) => {
                    return config_error(&format!("opening artifact store at {dir}: {e}"));
                }
            }
        }
        _ => None,
    };

    // Crash-safe telemetry: the background flusher atomically rewrites the
    // export files every interval, so a panic or `kill` still leaves valid
    // JSON at most one interval stale. The final (authoritative) write
    // happens in `finalize`, on success and failure paths alike.
    let targets = FlushTargets {
        trace_out: args.trace_out.as_ref().map(PathBuf::from),
        metrics_out: args.metrics_out.as_ref().map(PathBuf::from),
    };
    let flusher = PeriodicFlusher::start(
        obs.clone(),
        targets,
        Duration::from_millis(args.flush_interval_ms),
    );

    let server = match &args.serve_metrics {
        Some(addr) => match TelemetryServer::start(addr.as_str(), obs.clone()) {
            Ok(server) => {
                // Plain println (not lp_info): scripts parse this line for
                // the bound port, independent of --log-level.
                println!(
                    "telemetry: listening on {} (GET /metrics, /healthz, /report)",
                    server.local_addr()
                );
                Some(server)
            }
            Err(e) => {
                return config_error(&format!("binding telemetry endpoint {addr}: {e}"));
            }
        },
        None => None,
    };

    let (reports, run_result) = run_all(&args, &obs, store.as_ref(), server.as_ref());
    finalize(
        &args,
        &obs,
        store.as_ref(),
        flusher,
        server,
        &reports,
        run_result,
    )
}

fn run_all(
    args: &Args,
    obs: &Observer,
    store: Option<&Store>,
    server: Option<&TelemetryServer>,
) -> (Vec<DiagReport>, Result<(), String>) {
    let mut reports = Vec::new();
    for name in &args.programs {
        let Some(spec) = resolve(name) else {
            return (
                reports,
                Err(format!("unknown program '{name}' (see --help)")),
            );
        };
        match run_one(&spec, args, obs, store) {
            Ok(Some(report)) => {
                if let Some(server) = server {
                    server.set_report(report.to_json());
                }
                reports.push(report);
            }
            Ok(None) => {}
            Err(e) => return (reports, Err(format!("{name}: {e}"))),
        }
    }
    (reports, Ok(()))
}

/// The single exit path: every run — clean, failed, or partial — routes
/// through here so telemetry exports, accuracy reports, and the live
/// endpoint are finalized consistently.
fn finalize(
    args: &Args,
    obs: &Observer,
    store: Option<&Store>,
    flusher: PeriodicFlusher,
    server: Option<TelemetryServer>,
    reports: &[DiagReport],
    run_result: Result<(), String>,
) -> ExitCode {
    obs.set_phase("finalize");
    let mut failed = false;
    if let Err(e) = &run_result {
        eprintln!("error: {e}");
        failed = true;
    }

    if let Some(store) = store {
        let s = store.stats();
        lp_info!(
            "\nstore: {} hits, {} misses, {} evictions, {} corruptions; {} artifacts on disk \
             ({} B stored, {} B raw, {:.2}x compression)",
            s.hits,
            s.misses,
            s.evictions,
            s.corruptions,
            store.len(),
            s.bytes_stored,
            s.bytes_raw,
            if s.bytes_stored > 0 {
                s.bytes_raw as f64 / s.bytes_stored as f64
            } else {
                1.0
            }
        );
    }

    // Accuracy reports: written even when a later workload failed, so
    // completed reports survive partial runs. Always a JSON array, one
    // element per diagnosed program.
    if let Some(path) = &args.diag_report {
        let doc = lp_obs::json::Value::Arr(reports.iter().map(DiagReport::to_value).collect());
        match lp_obs::write_atomic(std::path::Path::new(path), doc.to_string().as_bytes()) {
            Ok(()) => lp_info!("diag: {} report(s) -> {path}", reports.len()),
            Err(e) => {
                eprintln!("error: writing diag report to {path}: {e}");
                failed = true;
            }
        }
    }

    obs.set_phase("done");
    let had_targets = args.trace_out.is_some() || args.metrics_out.is_some();
    match flusher.stop() {
        Ok(()) => {
            if had_targets {
                if let Some(path) = &args.trace_out {
                    lp_info!(
                        "trace: {} events -> {path} (open in chrome://tracing or ui.perfetto.dev)",
                        obs.trace_events().len()
                    );
                }
                if let Some(path) = &args.metrics_out {
                    lp_info!("metrics: report -> {path}");
                }
            }
        }
        Err(e) => {
            eprintln!("error: writing telemetry exports: {e}");
            failed = true;
        }
    }

    if let Some(server) = server {
        if args.serve_linger_ms > 0 {
            lp_info!(
                "telemetry: lingering {} ms before endpoint shutdown",
                args.serve_linger_ms
            );
            std::thread::sleep(Duration::from_millis(args.serve_linger_ms));
        }
        server.stop();
    }

    if failed {
        ExitCode::from(EXIT_PIPELINE)
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// lp-farm service mode
// ---------------------------------------------------------------------------

/// `run-looppoint serve`: the lp-farm analysis daemon.
fn farm_serve(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut cfg = FarmConfig::default();
    let mut store_dir: Option<String> = None;
    let mut store_max_bytes: Option<u64> = None;
    let mut log_level = LogLevel::Info;
    let mut node_addr: Option<String> = None;
    let mut cluster_peers: Vec<lp_cluster::NodeSpec> = Vec::new();
    let mut join_seed: Option<String> = None;
    let mut ccfg = lp_cluster::ClusterConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--farm-listen" => listen = Some(value("--farm-listen")?),
                "--node-addr" => node_addr = Some(value("--node-addr")?),
                "--cluster-peer" => {
                    cluster_peers.push(lp_cluster::NodeSpec::parse(&value("--cluster-peer")?)?);
                }
                "--join" => join_seed = Some(value("--join")?),
                "--vnodes" => {
                    ccfg.vnodes = value("--vnodes")?
                        .parse()
                        .map_err(|e| format!("bad vnode count: {e}"))?;
                    if ccfg.vnodes == 0 {
                        return Err("--vnodes must be positive".to_string());
                    }
                }
                "--heartbeat-ms" => {
                    ccfg.heartbeat_ms = value("--heartbeat-ms")?
                        .parse()
                        .map_err(|e| format!("bad heartbeat period: {e}"))?;
                    if ccfg.heartbeat_ms == 0 {
                        return Err("--heartbeat-ms must be positive".to_string());
                    }
                }
                "--failure-threshold" => {
                    ccfg.failure_threshold = value("--failure-threshold")?
                        .parse()
                        .map_err(|e| format!("bad failure threshold: {e}"))?;
                    if ccfg.failure_threshold == 0 {
                        return Err("--failure-threshold must be positive".to_string());
                    }
                }
                "--rpc-timeout-ms" => {
                    ccfg.rpc_timeout_ms = value("--rpc-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("bad rpc timeout: {e}"))?;
                }
                "--workers" => {
                    cfg.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad worker count: {e}"))?;
                    if cfg.workers == 0 {
                        return Err("--workers must be positive".to_string());
                    }
                }
                "--queue-capacity" => {
                    cfg.queue_capacity = value("--queue-capacity")?
                        .parse()
                        .map_err(|e| format!("bad queue capacity: {e}"))?;
                    if cfg.queue_capacity == 0 {
                        return Err("--queue-capacity must be positive".to_string());
                    }
                }
                "--max-attempts" => {
                    cfg.max_attempts = value("--max-attempts")?
                        .parse()
                        .map_err(|e| format!("bad attempt count: {e}"))?;
                    if cfg.max_attempts == 0 {
                        return Err("--max-attempts must be positive".to_string());
                    }
                }
                "--job-timeout-ms" => {
                    cfg.default_timeout_ms = value("--job-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("bad timeout: {e}"))?;
                }
                "--farm-dir" => cfg.dir = Some(PathBuf::from(value("--farm-dir")?)),
                "--journal-flush-ms" => {
                    cfg.journal_flush_ms = value("--journal-flush-ms")?
                        .parse()
                        .map_err(|e| format!("bad flush window: {e}"))?;
                }
                "--journal-compact-factor" => {
                    cfg.journal_compact_factor = value("--journal-compact-factor")?
                        .parse()
                        .map_err(|e| format!("bad compact factor: {e}"))?;
                    if cfg.journal_compact_factor == 0 {
                        return Err("--journal-compact-factor must be positive".to_string());
                    }
                }
                "--trace-capacity" => {
                    cfg.trace_capacity = value("--trace-capacity")?
                        .parse()
                        .map_err(|e| format!("bad trace capacity: {e}"))?;
                    if cfg.trace_capacity == 0 {
                        return Err("--trace-capacity must be positive".to_string());
                    }
                }
                "--history-interval-ms" => {
                    cfg.history_interval_ms = value("--history-interval-ms")?
                        .parse()
                        .map_err(|e| format!("bad history interval: {e}"))?;
                }
                "--history-capacity" => {
                    cfg.history_capacity = value("--history-capacity")?
                        .parse()
                        .map_err(|e| format!("bad history capacity: {e}"))?;
                    if cfg.history_capacity == 0 {
                        return Err("--history-capacity must be positive".to_string());
                    }
                }
                "--store-dir" => store_dir = Some(value("--store-dir")?),
                "--store-max-bytes" => {
                    store_max_bytes = Some(
                        value("--store-max-bytes")?
                            .parse()
                            .map_err(|e| format!("bad store byte budget: {e}"))?,
                    );
                }
                "--log-level" => log_level = value("--log-level")?.parse()?,
                "-h" | "--help" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown serve argument '{other}'")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            return config_error(&e);
        }
    }
    lp_obs::set_log_level(log_level);

    // The daemon always records: /metrics is part of its contract.
    let obs = Observer::enabled();
    if lp_obs::set_global(obs.clone()).is_err() {
        lp_warn!("global observer already installed; farm metrics may be incomplete");
    }
    let store = match &store_dir {
        Some(dir) => {
            let config = StoreConfig {
                max_bytes: store_max_bytes,
            };
            match Store::open_with(dir, config, obs.clone()) {
                Ok(s) => Some(Arc::new(s)),
                Err(e) => return config_error(&format!("opening artifact store at {dir}: {e}")),
            }
        }
        None => None,
    };
    let backend = Arc::new(PipelineBackend::new(store.clone(), obs.clone()));

    if node_addr.is_none() && (!cluster_peers.is_empty() || join_seed.is_some()) {
        return config_error("--cluster-peer/--join require --node-addr (see --help)");
    }

    // Cluster mode: the farm runs behind a ClusterNode — consistent-hash
    // forwarding, artifact exchange, heartbeat liveness, failover
    // adoption — and binds the advertised address unless told otherwise.
    if let Some(node_addr) = node_addr {
        let listen = listen.unwrap_or_else(|| node_addr.clone());
        let me = lp_cluster::NodeSpec {
            addr: node_addr.clone(),
            dir: cfg.dir.clone(),
        };
        if let Some(seed) = &join_seed {
            match lp_cluster::ClusterNode::join_via(seed, &me) {
                Ok(learned) => {
                    for peer in learned {
                        if !cluster_peers.iter().any(|p| p.addr == peer.addr) {
                            cluster_peers.push(peer);
                        }
                    }
                }
                Err(e) => return config_error(&format!("joining cluster via {seed}: {e}")),
            }
        }
        cluster_peers.push(me);
        ccfg.self_addr = node_addr.clone();
        ccfg.peers = cluster_peers;
        let running = match lp_cluster::spawn_node(&listen, ccfg, cfg, backend, store, obs) {
            Ok(r) => r,
            Err(e) => return config_error(&format!("starting cluster node at {listen}: {e}")),
        };
        // Plain println (not lp_info): scripts parse these lines.
        println!(
            "farm: listening on {} (POST /jobs, GET /jobs/{{id}}, GET /queue, GET /metrics, POST /shutdown)",
            running.server.local_addr()
        );
        let members = running
            .node
            .healthz_value()
            .get("ring_nodes")
            .and_then(lp_obs::json::Value::as_u64)
            .unwrap_or(1);
        println!(
            "cluster: node {node_addr} in a {members}-member ring (GET /cluster/healthz, /cluster/peers)"
        );

        let mode = running.server.wait_shutdown();
        lp_info!(
            "farm: shutdown requested (mode {})",
            match mode {
                ShutdownMode::Drain => "drain",
                ShutdownMode::Now => "now",
            }
        );
        let farm = running.farm.clone();
        running.shutdown(mode);
        let snap = farm.queue_snapshot();
        println!(
            "farm: stopped ({} done, {} failed, {} cancelled, {} requeued to journal)",
            snap.done,
            snap.failed,
            snap.cancelled,
            snap.queued + snap.running
        );
        return ExitCode::SUCCESS;
    }

    let listen = listen.unwrap_or_else(|| "127.0.0.1:0".to_string());
    let farm = match Farm::start(cfg, backend, obs) {
        Ok(f) => f,
        Err(e) => return config_error(&format!("starting farm: {e}")),
    };
    let server = match FarmServer::start(listen.as_str(), farm.clone()) {
        Ok(s) => s,
        Err(e) => return config_error(&format!("binding farm endpoint {listen}: {e}")),
    };
    // Plain println (not lp_info): scripts parse this line for the port.
    println!(
        "farm: listening on {} (POST /jobs, GET /jobs/{{id}}, GET /queue, GET /metrics, POST /shutdown)",
        server.local_addr()
    );

    let mode = server.wait_shutdown();
    lp_info!(
        "farm: shutdown requested (mode {})",
        match mode {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Now => "now",
        }
    );
    farm.shutdown(mode);
    farm.join();
    let snap = farm.queue_snapshot();
    server.stop();
    println!(
        "farm: stopped ({} done, {} failed, {} cancelled, {} requeued to journal)",
        snap.done,
        snap.failed,
        snap.cancelled,
        snap.queued + snap.running
    );
    ExitCode::SUCCESS
}

/// Shared client-flag parsing for submit/status/shutdown.
struct ClientArgs {
    farm: Option<String>,
    programs: Vec<String>,
    ncores: usize,
    input: String,
    wait_policy: String,
    slice_base: u64,
    max_steps: u64,
    priority: i64,
    timeout_ms: u64,
    wait: bool,
    job: Option<u64>,
    mode: String,
    live: bool,
    follow: bool,
    clients: usize,
    jobs: usize,
}

fn parse_client_args(args: &[String]) -> Result<ClientArgs, String> {
    let mut c = ClientArgs {
        farm: None,
        programs: vec!["demo-matrix-1".to_string()],
        ncores: 2,
        input: "test".to_string(),
        wait_policy: "passive".to_string(),
        slice_base: 8_000,
        max_steps: DEFAULT_MAX_STEPS,
        priority: 0,
        timeout_ms: 0,
        wait: false,
        job: None,
        mode: "drain".to_string(),
        live: false,
        follow: false,
        clients: 4,
        jobs: 48,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--farm" => c.farm = Some(value("--farm")?),
            "-p" | "--program" => {
                c.programs = value("-p")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "-n" | "--ncores" => {
                c.ncores = value("-n")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "-i" | "--input-class" => c.input = value("-i")?,
            "-w" | "--wait-policy" => c.wait_policy = value("-w")?,
            "--slice-base" => {
                c.slice_base = value("--slice-base")?
                    .parse()
                    .map_err(|e| format!("bad slice base: {e}"))?;
            }
            "--max-steps" => {
                c.max_steps = value("--max-steps")?
                    .parse()
                    .map_err(|e| format!("bad step budget: {e}"))?;
            }
            "--priority" => {
                c.priority = value("--priority")?
                    .parse()
                    .map_err(|e| format!("bad priority: {e}"))?;
            }
            "--timeout-ms" => {
                c.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad timeout: {e}"))?;
            }
            "--wait" => c.wait = true,
            "--job" => {
                c.job = Some(
                    value("--job")?
                        .parse()
                        .map_err(|e| format!("bad job id: {e}"))?,
                );
            }
            "--mode" => c.mode = value("--mode")?,
            "--live" => c.live = true,
            "--follow" => c.follow = true,
            "--clients" => {
                c.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("bad client count: {e}"))?;
                if c.clients == 0 {
                    return Err("--clients must be positive".to_string());
                }
            }
            "--jobs" => {
                c.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
                if c.jobs == 0 {
                    return Err("--jobs must be positive".to_string());
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(c)
}

fn require_farm(c: &ClientArgs) -> Result<String, String> {
    c.farm
        .clone()
        .ok_or_else(|| "--farm <addr> is required (see --help)".to_string())
}

/// `run-looppoint submit`: POST jobs, optionally poll to completion.
fn farm_submit(args: &[String]) -> ExitCode {
    let c = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return config_error(&e),
    };
    let addr = match require_farm(&c) {
        Ok(a) => a,
        Err(e) => return config_error(&e),
    };
    let specs: Vec<lp_farm::JobSpec> = c
        .programs
        .iter()
        .map(|program| lp_farm::JobSpec {
            program: program.clone(),
            ncores: c.ncores,
            input: c.input.clone(),
            wait_policy: c.wait_policy.clone(),
            slice_base: c.slice_base,
            max_steps: c.max_steps,
            priority: c.priority,
            timeout_ms: c.timeout_ms,
            mode: if c.live { "live" } else { "pipeline" }.to_string(),
        })
        .collect();
    // One version-negotiated keep-alive connection for the submit AND
    // every poll below: dozens of round trips, one TCP handshake.
    let mut client = FarmClient::connect(addr.clone());
    let (status, outcomes) = match client.submit(&specs, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: submitting to {addr}: {e}");
            return ExitCode::from(EXIT_PIPELINE);
        }
    };
    for outcome in &outcomes {
        println!("{}", outcome.to_value());
    }
    match status {
        202 => {}
        400 => return config_error("farm rejected the job spec (see response above)"),
        503 => {
            eprintln!("error: farm is overloaded or draining (see retry_after_ms above)");
            return ExitCode::from(EXIT_PIPELINE);
        }
        other => {
            eprintln!("error: unexpected status {other} from farm");
            return ExitCode::from(EXIT_PIPELINE);
        }
    }
    if !c.wait {
        return ExitCode::SUCCESS;
    }
    // Poll every accepted id until terminal. A forwarded submission's
    // record lives on the owner node, so polls follow `forwarded_to`.
    let targets: Vec<(u64, Option<String>)> = outcomes
        .iter()
        .filter_map(|o| match o {
            lp_farm_proto::SubmitOutcome::Accepted {
                id, forwarded_to, ..
            } => Some((*id, forwarded_to.clone())),
            lp_farm_proto::SubmitOutcome::Rejected { .. } => None,
        })
        .collect();
    let mut owner_clients: std::collections::HashMap<String, FarmClient> =
        std::collections::HashMap::new();
    let mut ok = true;
    for (id, owner) in targets {
        let poll_client: &mut FarmClient = match &owner {
            Some(owner_addr) => owner_clients
                .entry(owner_addr.clone())
                .or_insert_with(|| FarmClient::connect(owner_addr.clone())),
            None => &mut client,
        };
        loop {
            // `since=MAX` skips the streamed partials: a plain poll only
            // needs the record line.
            let (status, body) = match poll_client.http().request(
                "GET",
                &format!("/jobs/{id}?since={}", usize::MAX),
                "",
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: polling job {id}: {e}");
                    return ExitCode::from(EXIT_PIPELINE);
                }
            };
            if status != 200 {
                eprintln!("error: job {id} vanished (status {status})");
                ok = false;
                break;
            }
            // NDJSON body: any streamed partials, then the record as the
            // last line (the only line a plain poll cares about).
            let record = body
                .lines()
                .rev()
                .find(|l| !l.trim().is_empty())
                .unwrap_or_default()
                .to_string();
            let state = lp_obs::json::parse(&record)
                .ok()
                .and_then(|v| v.get("state").and_then(|s| s.as_str().map(String::from)))
                .unwrap_or_default();
            match state.as_str() {
                "done" => {
                    println!("{record}");
                    break;
                }
                "failed" | "cancelled" => {
                    println!("{record}");
                    ok = false;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(200)),
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_PIPELINE)
    }
}

/// `run-looppoint farm-load`: concurrent keep-alive burst against one
/// farm — `--clients` threads each hold one persistent connection and
/// push their share of `--jobs` submissions, half as a single NDJSON
/// batch POST and half as individual POSTs, then the main thread polls
/// /queue until the farm drains. Prints one parseable summary line and
/// exits non-zero on any dropped request or a failed drain, so ci can
/// gate on it directly.
fn farm_load(args: &[String]) -> ExitCode {
    let c = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return config_error(&e),
    };
    let addr = match require_farm(&c) {
        Ok(a) => a,
        Err(e) => return config_error(&e),
    };
    let spec_line = |program: &str| {
        lp_farm::JobSpec {
            program: program.to_string(),
            ncores: c.ncores,
            input: c.input.clone(),
            wait_policy: c.wait_policy.clone(),
            slice_base: c.slice_base,
            max_steps: c.max_steps,
            priority: c.priority,
            timeout_ms: c.timeout_ms,
            mode: if c.live { "live" } else { "pipeline" }.to_string(),
        }
        .to_value()
        .to_string()
    };
    // Deal jobs round-robin so every client gets within one of an even
    // share, cycling programs across the whole burst.
    let mut shares: Vec<Vec<String>> = vec![Vec::new(); c.clients];
    for i in 0..c.jobs {
        shares[i % c.clients].push(spec_line(&c.programs[i % c.programs.len()]));
    }
    let started = Instant::now();
    let threads: Vec<_> = shares
        .into_iter()
        .map(|share| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // (accepted, dropped, batch, single, reuses) for this
                // client — raw NDJSON over the proto-negotiated channel.
                let mut client = FarmClient::connect(addr);
                let client = client.http();
                let (mut accepted, mut dropped) = (0usize, 0usize);
                let batch_n = share.len() / 2;
                let mut tally = |sent: usize, result: std::io::Result<(u16, String)>| match result {
                    Ok((status, body)) if status == 202 || status == 503 || status == 400 => {
                        for line in body.lines().filter(|l| !l.trim().is_empty()) {
                            let ok = lp_obs::json::parse(line)
                                .ok()
                                .is_some_and(|v| v.get("id").is_some());
                            if ok {
                                accepted += 1;
                            } else {
                                dropped += 1;
                            }
                        }
                    }
                    _ => dropped += sent,
                };
                if batch_n > 0 {
                    let mut body = share[..batch_n].join("\n");
                    body.push('\n');
                    tally(batch_n, client.request("POST", "/jobs", &body));
                }
                for line in &share[batch_n..] {
                    tally(1, client.request("POST", "/jobs", &format!("{line}\n")));
                }
                (
                    accepted,
                    dropped,
                    batch_n,
                    share.len() - batch_n,
                    client.reuses(),
                )
            })
        })
        .collect();
    let (mut accepted, mut dropped, mut batch, mut single, mut reuses) = (0, 0, 0, 0, 0u64);
    for t in threads {
        let (a, d, b, s, r) = t.join().expect("load client panicked");
        accepted += a;
        dropped += d;
        batch += b;
        single += s;
        reuses += r;
    }
    // Drain: the farm is healthy when the whole burst reaches a terminal
    // state. Cached/deduped submissions settle instantly; cold ones take
    // one pipeline run each.
    let mut poll = FarmClient::connect(addr.clone());
    let poll = poll.http();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut drained = false;
    while Instant::now() < deadline {
        if let Ok((200, body)) = poll.request("GET", "/queue", "") {
            let idle = lp_obs::json::parse(&body).ok().is_some_and(|v| {
                let n = |k: &str| v.get(k).and_then(lp_obs::json::Value::as_u64);
                n("queued") == Some(0) && n("running") == Some(0)
            });
            if idle {
                drained = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    reuses += poll.reuses();
    println!(
        "farm-load: jobs={} accepted={accepted} dropped={dropped} batch={batch} \
         single={single} reuses={reuses} drained={drained} elapsed_ms={}",
        c.jobs,
        started.elapsed().as_millis()
    );
    if dropped == 0 && accepted == c.jobs && drained {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: farm-load burst was not fully accepted and drained");
        ExitCode::from(EXIT_PIPELINE)
    }
}

/// `run-looppoint status`: GET /queue or GET /jobs/{id}; with
/// `--follow` and a job id, polls `?since=N` and renders the job's
/// streamed `LiveProgress` lines in place until the job is terminal
/// (a plain wait loop for jobs that stream nothing, e.g. pipeline mode).
fn farm_status(args: &[String]) -> ExitCode {
    let c = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return config_error(&e),
    };
    let addr = match require_farm(&c) {
        Ok(a) => a,
        Err(e) => return config_error(&e),
    };
    if c.follow {
        let Some(id) = c.job else {
            return config_error("--follow needs --job <id>");
        };
        return follow_job(&addr, id);
    }
    let path = match c.job {
        Some(id) => format!("/jobs/{id}"),
        None => "/queue".to_string(),
    };
    let mut client = FarmClient::connect(addr.clone());
    match client.http().request("GET", &path, "") {
        Ok((200, body)) => {
            println!("{body}");
            ExitCode::SUCCESS
        }
        Ok((status, body)) => {
            eprintln!("error: status {status}: {body}");
            ExitCode::from(EXIT_PIPELINE)
        }
        Err(e) => {
            eprintln!("error: querying {addr}: {e}");
            ExitCode::from(EXIT_PIPELINE)
        }
    }
}

/// The `status --follow` loop: one keep-alive connection, incremental
/// `GET /jobs/{id}?since=N` polls. Each streamed `LiveProgress` line
/// redraws a single terminal line (carriage return, no newline) so a
/// live job reads as a ticking dashboard; lines that are not progress
/// documents print verbatim. Exits 0 on `done`, 1 on any other terminal
/// state.
fn follow_job(addr: &str, id: u64) -> ExitCode {
    use std::io::Write as _;
    let mut client = FarmClient::connect(addr.to_string());
    let mut since = 0usize;
    let mut in_place = false;
    loop {
        let (status, body) =
            match client
                .http()
                .request("GET", &format!("/jobs/{id}?since={since}"), "")
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: following job {id}: {e}");
                    return ExitCode::from(EXIT_PIPELINE);
                }
            };
        if status != 200 {
            eprintln!("error: job {id}: status {status}: {body}");
            return ExitCode::from(EXIT_PIPELINE);
        }
        let mut lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
        let Some(record_line) = lines.pop() else {
            eprintln!("error: empty response for job {id}");
            return ExitCode::from(EXIT_PIPELINE);
        };
        for line in &lines {
            match lp_obs::json::parse(line)
                .ok()
                .and_then(|v| looppoint::LiveProgress::from_value(&v))
            {
                Some(p) => {
                    print!("\r{}", p.render());
                    let _ = std::io::stdout().flush();
                    in_place = true;
                }
                None => {
                    if in_place {
                        println!();
                        in_place = false;
                    }
                    println!("{line}");
                }
            }
        }
        since += lines.len();
        let state = lp_obs::json::parse(record_line)
            .ok()
            .and_then(|v| v.get("state").and_then(|s| s.as_str().map(String::from)))
            .unwrap_or_default();
        match state.as_str() {
            "done" | "failed" | "cancelled" => {
                if in_place {
                    println!();
                }
                println!("{record_line}");
                return if state == "done" {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(EXIT_PIPELINE)
                };
            }
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}

/// `run-looppoint trace`: pretty-print a span tree with per-hop
/// latencies. A numeric id fetches `GET /jobs/{id}/trace` (any cluster
/// member answers — non-owners proxy to the id's home node); a 32-hex
/// trace id fetches the merged cross-node `GET /cluster/trace/{id}`.
fn farm_trace(args: &[String]) -> ExitCode {
    // The id is positional (`trace 3 --farm ...`) or via --job.
    enum Target {
        Job(u64),
        Trace(String),
    }
    let (positional, rest): (Option<Target>, &[String]) = match args.first() {
        Some(first) if !first.starts_with('-') => {
            if let Ok(id) = first.parse::<u64>() {
                (Some(Target::Job(id)), &args[1..])
            } else if first.len() == 32 && first.chars().all(|c| c.is_ascii_hexdigit()) {
                (Some(Target::Trace(first.to_lowercase())), &args[1..])
            } else {
                return config_error(&format!("bad job or trace id '{first}'"));
            }
        }
        _ => (None, args),
    };
    let c = match parse_client_args(rest) {
        Ok(c) => c,
        Err(e) => return config_error(&e),
    };
    let Some(target) = positional.or(c.job.map(Target::Job)) else {
        return config_error(
            "trace needs a job id or 32-hex trace id: run-looppoint trace <id> --farm <addr>",
        );
    };
    let addr = match require_farm(&c) {
        Ok(a) => a,
        Err(e) => return config_error(&e),
    };
    let (path, title) = match &target {
        Target::Job(id) => (format!("/jobs/{id}/trace"), format!("job {id}")),
        Target::Trace(hex) => (format!("/cluster/trace/{hex}"), format!("trace {hex}")),
    };
    let mut client = FarmClient::connect(addr.clone());
    match client.http().request("GET", &path, "") {
        Ok((200, body)) => match render_trace_tree(&title, &body) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: rendering trace for {title}: {e}");
                ExitCode::from(EXIT_PIPELINE)
            }
        },
        Ok((status, body)) => {
            eprintln!("error: status {status}: {body}");
            ExitCode::from(EXIT_PIPELINE)
        }
        Err(e) => {
            eprintln!("error: querying {addr}: {e}");
            ExitCode::from(EXIT_PIPELINE)
        }
    }
}

/// `run-looppoint top`: a polling ASCII dashboard over the cluster's
/// federated metrics (`GET /cluster/metrics`) and each node's
/// time-series history (`GET /metrics/history?since=`) — per-node
/// jobs/s, queue depth, dedup %, queue-wait p50/p99, and a jobs/s
/// sparkline. Refreshes in place on a TTY until Ctrl-C (or for
/// `--iterations` frames). A plain single farm renders as a one-row
/// dashboard via its own `/metrics.json`.
fn farm_top(args: &[String]) -> ExitCode {
    let mut farm_addr: Option<String> = None;
    let mut interval_ms: u64 = 1_000;
    let mut iterations: u64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--farm" => farm_addr = Some(value("--farm")?),
                "--interval-ms" => {
                    interval_ms = value("--interval-ms")?
                        .parse()
                        .map_err(|e| format!("bad refresh interval: {e}"))?;
                    if interval_ms == 0 {
                        return Err("--interval-ms must be positive".to_string());
                    }
                }
                "--iterations" => {
                    iterations = value("--iterations")?
                        .parse()
                        .map_err(|e| format!("bad iteration count: {e}"))?;
                }
                "-h" | "--help" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown top argument '{other}'")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            return config_error(&e);
        }
    }
    let Some(addr) = farm_addr else {
        return config_error("--farm <addr> is required (see --help)");
    };

    /// Live per-node poll state: a keep-alive history client, the last
    /// sample sequence consumed, and a bounded jobs/s ring for the
    /// sparkline.
    struct NodeView {
        client: FarmClient,
        since: u64,
        rates: std::collections::VecDeque<f64>,
        latest: std::collections::HashMap<String, f64>,
    }
    const SPARK_WIDTH: usize = 24;

    let is_tty = {
        use std::io::IsTerminal;
        std::io::stdout().is_terminal()
    };
    let mut entry = FarmClient::connect(addr.clone());
    let mut views: std::collections::HashMap<String, NodeView> = std::collections::HashMap::new();
    let mut frame: u64 = 0;
    loop {
        frame += 1;
        // Federated view; a plain (non-cluster) farm 404s the cluster
        // route, so fall back to its own snapshot as a one-node list.
        let (nodes, errors): (Vec<(String, i128, lp_obs::json::Value)>, usize) = match entry
            .cluster_metrics()
        {
            Ok(doc) => {
                let nodes = doc
                    .get("nodes")
                    .and_then(lp_obs::json::Value::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .filter_map(|n| {
                                Some((
                                    n.get("node")?.as_str()?.to_string(),
                                    n.get("ordinal").and_then(|o| o.as_u64()).unwrap_or(0) as i128,
                                    n.get("metrics")?.clone(),
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let errors = doc
                    .get("errors")
                    .and_then(lp_obs::json::Value::as_arr)
                    .map_or(0, |e| e.len());
                (nodes, errors)
            }
            Err(_) => match entry.metrics_json() {
                Ok(doc) => (vec![(addr.clone(), 0, doc)], 0),
                Err(e) => {
                    eprintln!("error: polling {addr}: {e}");
                    return ExitCode::from(EXIT_PIPELINE);
                }
            },
        };

        // Pull each node's fresh history samples over its own keep-alive
        // connection, resuming from the last consumed sequence.
        for (node, _, _) in &nodes {
            let view = views.entry(node.clone()).or_insert_with(|| NodeView {
                client: FarmClient::connect(node.clone()),
                since: 0,
                rates: std::collections::VecDeque::new(),
                latest: std::collections::HashMap::new(),
            });
            let Ok(ndjson) = view.client.metrics_history(view.since) else {
                continue;
            };
            for line in ndjson.lines().filter(|l| !l.trim().is_empty()) {
                let Ok(sample) = lp_obs::json::parse(line) else {
                    continue;
                };
                if let Some(seq) = sample.get("seq").and_then(|s| s.as_u64()) {
                    view.since = view.since.max(seq);
                }
                if let Some(values) = sample.get("values") {
                    if let lp_obs::json::Value::Obj(members) = values {
                        for (k, v) in members {
                            if let Some(f) = v.as_f64() {
                                view.latest.insert(k.clone(), f);
                            }
                        }
                    }
                    if let Some(rate) = values.get("farm.done.rate").and_then(|v| v.as_f64()) {
                        while view.rates.len() >= SPARK_WIDTH {
                            view.rates.pop_front();
                        }
                        view.rates.push_back(rate);
                    }
                }
            }
        }

        let mut out = String::new();
        let counter = |m: &lp_obs::json::Value, name: &str| {
            m.get("counters")
                .and_then(|c| c.get(name))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        let gauge = |m: &lp_obs::json::Value, name: &str| {
            m.get("gauges")
                .and_then(|g| g.get(name))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        let (mut submitted, mut done, mut queued, mut running) = (0.0, 0.0, 0.0, 0.0);
        for (_, _, m) in &nodes {
            submitted += counter(m, "farm.submitted");
            done += counter(m, "farm.done");
            queued += gauge(m, "farm.queue.depth");
            running += gauge(m, "farm.running");
        }
        out.push_str(&format!(
            "lp-farm top — {} node{} via {addr} — frame {frame}{}\n",
            nodes.len(),
            if nodes.len() == 1 { "" } else { "s" },
            if errors > 0 {
                format!(" — {errors} unreachable")
            } else {
                String::new()
            },
        ));
        out.push_str(&format!(
            "cluster: {submitted:.0} submitted, {done:.0} done, {queued:.0} queued, {running:.0} running\n\n",
        ));
        out.push_str(&format!(
            "{:<21} {:>3} {:>7} {:>5} {:>4} {:>6} {:>8} {:>8}  {}\n",
            "NODE", "ORD", "JOBS/S", "QUEUE", "RUN", "DEDUP%", "P50MS", "P99MS", "JOBS/S HISTORY"
        ));
        for (node, ordinal, m) in &nodes {
            let (rate, p50, p99, spark) = match views.get_mut(node) {
                Some(v) => (
                    v.latest.get("farm.done.rate").copied().unwrap_or(0.0),
                    v.latest
                        .get("farm.queue.wait_us.p50")
                        .copied()
                        .unwrap_or(0.0)
                        / 1_000.0,
                    v.latest
                        .get("farm.queue.wait_us.p99")
                        .copied()
                        .unwrap_or(0.0)
                        / 1_000.0,
                    sparkline(v.rates.make_contiguous(), SPARK_WIDTH),
                ),
                None => (0.0, 0.0, 0.0, String::new()),
            };
            let sub = counter(m, "farm.submitted");
            let dedup = if sub > 0.0 {
                100.0 * counter(m, "farm.dedup.hits") / sub
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<21} {:>3} {:>7.1} {:>5.0} {:>4.0} {:>6.1} {:>8.2} {:>8.2}  {}\n",
                node,
                ordinal,
                rate,
                gauge(m, "farm.queue.depth"),
                gauge(m, "farm.running"),
                dedup,
                p50,
                p99,
                spark,
            ));
        }
        if is_tty {
            // Clear + home, then the frame: flicker-free in-place refresh.
            print!("\x1b[2J\x1b[H{out}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        } else {
            println!("{out}");
        }
        if iterations > 0 && frame >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// An ASCII sparkline of `values` scaled to their max, right-aligned in
/// a `width`-char field (recent samples rightmost).
fn sparkline(values: &[f64], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#@";
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    let mut out = String::with_capacity(width);
    for _ in values.len()..width {
        out.push(' ');
    }
    for v in values.iter().rev().take(width).rev() {
        let idx = if max > 0.0 {
            ((v / max) * (RAMP.len() - 1) as f64).round() as usize
        } else {
            0
        };
        out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
    }
    out
}

/// Rebuilds the span tree of a Chrome `trace_event` document (using the
/// `span_id`/`parent_span_id` args the exporter embeds) and renders it
/// as indented text: one line per span with offset-from-root and
/// duration, instant markers inlined under the span they belong to.
fn render_trace_tree(title: &str, body: &str) -> Result<String, String> {
    use lp_obs::json::Value;
    use std::collections::HashMap;

    struct Ev {
        name: String,
        ts: u64,
        dur: u64,
        span: String,
        parent: String,
        instant: bool,
        detail: String,
    }

    let doc = lp_obs::json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let raw = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("document has no traceEvents array")?;
    let mut events = Vec::with_capacity(raw.len());
    for e in raw {
        let sget = |key: &str| {
            e.get("args")
                .and_then(|a| a.get(key))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string()
        };
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph == "M" {
            continue; // viewer metadata (process_name lanes), not a span
        }
        // The dedup marker's payload is worth surfacing inline.
        let detail = match (sget("detail"), sget("primary_trace_id")) {
            (d, _) if !d.is_empty() => d,
            (_, p) if !p.is_empty() => format!(
                "primary job {} trace {p}",
                e.get("args")
                    .and_then(|a| a.get("primary"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
            ),
            _ => String::new(),
        };
        events.push(Ev {
            name: e
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            ts: e.get("ts").and_then(Value::as_u64).unwrap_or(0),
            dur: e.get("dur").and_then(Value::as_u64).unwrap_or(0),
            span: sget("span_id"),
            parent: sget("parent_span_id"),
            instant: ph == "i" || ph == "I",
            detail,
        });
    }
    if events.is_empty() {
        return Err("trace has no events".to_string());
    }

    // Tree nodes are the Complete spans, keyed by span id; instants hang
    // off the span they ran inside (their own span id when it names a
    // span, else their parent's).
    let mut span_of: HashMap<&str, usize> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if !ev.instant && !ev.span.is_empty() {
            span_of.entry(ev.span.as_str()).or_insert(i);
        }
    }
    let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut roots = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let home = if ev.instant {
            span_of
                .get(ev.span.as_str())
                .or_else(|| span_of.get(ev.parent.as_str()))
                .copied()
        } else {
            span_of.get(ev.parent.as_str()).copied().filter(|&p| p != i)
        };
        match home {
            Some(p) => children.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|&i| (events[i].ts, events[i].instant));
    }
    roots.sort_by_key(|&i| events[i].ts);

    let base = roots.iter().map(|&i| events[i].ts).min().unwrap_or(0);
    let ms = |us: u64| us as f64 / 1_000.0;
    let mut out = format!("trace for {title} ({} events)\n", events.len());
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let ev = &events[i];
        let indent = "  ".repeat(depth);
        if ev.instant {
            let detail = if ev.detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", ev.detail)
            };
            out.push_str(&format!(
                "{indent}@ {:<28} +{:.3} ms{detail}\n",
                ev.name,
                ms(ev.ts.saturating_sub(base)),
            ));
        } else {
            out.push_str(&format!(
                "{indent}{:<30} +{:.3} ms  {:.3} ms\n",
                ev.name,
                ms(ev.ts.saturating_sub(base)),
                ms(ev.dur),
            ));
            if let Some(kids) = children.get(&i) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    Ok(out)
}

/// `run-looppoint shutdown`: POST /shutdown?mode=...
fn farm_shutdown(args: &[String]) -> ExitCode {
    let c = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return config_error(&e),
    };
    let addr = match require_farm(&c) {
        Ok(a) => a,
        Err(e) => return config_error(&e),
    };
    if c.mode != "drain" && c.mode != "now" {
        return config_error(&format!("unknown shutdown mode '{}'", c.mode));
    }
    let mut client = FarmClient::connect(addr.clone());
    match client
        .http()
        .request("POST", &format!("/shutdown?mode={}", c.mode), "")
    {
        Ok((200, body)) => {
            println!("{body}");
            ExitCode::SUCCESS
        }
        Ok((status, body)) => {
            eprintln!("error: status {status}: {body}");
            ExitCode::from(EXIT_PIPELINE)
        }
        Err(e) => {
            eprintln!("error: contacting {addr}: {e}");
            ExitCode::from(EXIT_PIPELINE)
        }
    }
}
