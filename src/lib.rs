//! # looppoint-repro — facade for the LoopPoint reproduction workspace
//!
//! Re-exports every crate of the reproduction of *LoopPoint:
//! Checkpoint-driven Sampled Simulation for Multi-threaded Applications*
//! (HPCA 2022) under one roof, for the examples and cross-crate
//! integration tests that live in this root package.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`isa`] | `lp-isa` | abstract ISA, program builder, functional VM |
//! | [`omp`] | `lp-omp` | OpenMP-like runtime (library image, spin/futex waiting) |
//! | [`uarch`] | `lp-uarch` | caches, coherence, branch predictors, Table I configs |
//! | [`sim`] | `lp-sim` | multicore timing simulator (unconstrained) |
//! | [`pinball`] | `lp-pinball` | record / constrained replay checkpoints |
//! | [`dcfg`] | `lp-dcfg` | dynamic CFG, dominators, natural loops |
//! | [`bbv`] | `lp-bbv` | loop-aligned spin-filtered slicing + BBVs |
//! | [`simpoint`] | `lp-simpoint` | random projection + k-means + BIC |
//! | [`looppoint`] | `looppoint` | the methodology itself + baselines |
//! | [`workloads`] | `lp-workloads` | SPEC-like / NPB-like synthetic suites |
//! | [`obs`] | `lp-obs` | span tracing, metrics registry, Chrome-trace export, live telemetry endpoint |
//! | [`diag`] | `lp-diag` | accuracy attribution, error decomposition, self-profiles |
//!
//! See the `examples/` directory for runnable end-to-end demonstrations
//! (start with `cargo run --release --example quickstart`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use looppoint;
pub use lp_bbv as bbv;
pub use lp_dcfg as dcfg;
pub use lp_diag as diag;
pub use lp_isa as isa;
pub use lp_obs as obs;
pub use lp_omp as omp;
pub use lp_pinball as pinball;
pub use lp_sim as sim;
pub use lp_simpoint as simpoint;
pub use lp_uarch as uarch;
pub use lp_workloads as workloads;
