//! End-to-end observability smoke test: runs the demo-matrix-1 pipeline
//! with an enabled observer, then checks that
//!
//! * both exports (Chrome trace + metrics report) are valid JSON,
//! * every complete (`"X"`) event is balanced — i.e. carries a duration,
//!   and only complete events do,
//! * every pipeline phase recorded a span,
//! * `SimStats` round-trips exactly through the metrics registry
//!   (instructions, cycles, filtered_instructions).

use looppoint_repro::looppoint::{analyze, simulate_representatives_checkpointed, LoopPointConfig};
use looppoint_repro::obs::{self, json, Observer, TraceArg};
use looppoint_repro::omp::WaitPolicy;
use looppoint_repro::sim::{Mode, Simulator};
use looppoint_repro::uarch::SimConfig;
use looppoint_repro::workloads::{build, matrix_demo, InputClass};

#[test]
fn end_to_end_pipeline_exports_valid_trace_and_metrics() {
    let observer = Observer::enabled();
    // Install globally so the Copy-config layers (lp-pinball, lp-simpoint)
    // and the region simulators all record into the same sink. Only this
    // test installs a global in this binary (OnceLock: one per process).
    obs::set_global(observer.clone()).expect("no other global observer in this binary");

    let spec = matrix_demo(1);
    let nthreads = spec.effective_threads(4);
    let program = build(&spec, InputClass::Test, 4, WaitPolicy::Passive);
    let cfg = LoopPointConfig::with_slice_base(8_000).with_observer(observer.clone());
    let analysis = analyze(&program, nthreads, &cfg).expect("analysis succeeds");
    let simcfg = SimConfig::gainestown(4);
    let results =
        simulate_representatives_checkpointed(&analysis, &program, nthreads, &simcfg, 2, false)
            .expect("region simulation succeeds");
    assert!(!results.is_empty());

    // Every pipeline layer left a span.
    let events = observer.trace_events();
    for phase in [
        "analyze",
        "analyze.record",
        "analyze.dcfg",
        "analyze.slicing",
        "analyze.clustering",
        "analyze.select",
        "pinball.record",
        "pinball.replay",
        "simpoint.cluster",
        "simpoint.kmeans",
        "region.checkpoints",
        "region.sim",
        "sim.detailed",
    ] {
        assert!(
            events.iter().any(|e| e.name == phase),
            "missing span '{phase}'"
        );
    }
    let region_spans = events.iter().filter(|e| e.name == "region.sim").count();
    assert!(
        region_spans >= analysis.looppoints.len(),
        "one region.sim span per looppoint"
    );

    // Chrome export: valid JSON, balanced complete events (dur iff "X").
    let doc = json::parse(&observer.chrome_trace_json()).expect("trace is valid JSON");
    let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(evs.len() >= events.len());
    for e in evs {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        assert!(e.get("ts").and_then(|v| v.as_u64()).is_some(), "ts present");
        assert_eq!(
            ph == "X",
            e.get("dur").is_some(),
            "complete events and only they carry durations"
        );
    }

    // Metrics export: valid JSON with the pipeline's counters.
    let report = json::parse(&observer.metrics_json()).expect("metrics are valid JSON");
    let counters = report.get("counters").unwrap();
    let slices = counters.get("analyze.slices").unwrap().as_u64().unwrap();
    assert_eq!(slices, analysis.profile.slices.len() as u64);
    assert!(
        counters
            .get("pinball.recorded_instructions")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    // File round-trip, as the driver's --trace-out/--metrics-out write them.
    let dir = std::env::temp_dir().join(format!("lp-obs-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tpath = dir.join("trace.json");
    let mpath = dir.join("metrics.json");
    observer.write_chrome_trace(&tpath).unwrap();
    observer.write_metrics(&mpath).unwrap();
    json::parse(&std::fs::read_to_string(&tpath).unwrap()).unwrap();
    json::parse(&std::fs::read_to_string(&mpath).unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simstats_round_trip_through_metrics_is_exact() {
    // A fresh, private observer: nothing else records into it, so counter
    // equality is exact.
    let observer = Observer::enabled();
    let spec = matrix_demo(1);
    let nthreads = spec.effective_threads(4);
    let program = build(&spec, InputClass::Test, 4, WaitPolicy::Passive);
    let mut sim = Simulator::new(program, nthreads, SimConfig::gainestown(4));
    sim.set_observer(observer.clone());
    sim.set_ipc_sampling(1_000);
    let stats = sim
        .run(Mode::Detailed, None, 4_000_000_000)
        .expect("run succeeds");

    let snap = observer.snapshot();
    assert_eq!(
        snap.counters["sim.detailed.instructions"],
        stats.instructions
    );
    assert_eq!(snap.counters["sim.detailed.cycles"], stats.cycles);
    assert_eq!(
        snap.counters["sim.detailed.filtered_instructions"],
        stats.filtered_instructions
    );
    assert_eq!(snap.counters["sim.detailed.segments"], 1);

    // The detailed span carries the same numbers as args.
    let events = observer.trace_events();
    let span = events.iter().find(|e| e.name == "sim.detailed").unwrap();
    let arg = |k: &str| {
        span.args
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(arg("instructions"), Some(TraceArg::U64(stats.instructions)));
    assert_eq!(arg("cycles"), Some(TraceArg::U64(stats.cycles)));

    // IPC heartbeats became counter ("C") events, one per trace sample.
    let heartbeats = events.iter().filter(|e| e.name == "sim.ipc").count();
    assert_eq!(heartbeats, stats.ipc_trace.len());
    assert!(heartbeats > 0, "sampling produced heartbeats");
}
