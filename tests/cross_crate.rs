//! Cross-crate integration tests: properties that only hold when the whole
//! stack (ISA → runtime → pinball → DCFG → BBV → clustering → simulation)
//! cooperates.

use looppoint_repro::isa::Machine;
use looppoint_repro::looppoint::{analyze, LoopPointConfig};
use looppoint_repro::omp::WaitPolicy;
use looppoint_repro::pinball::{Pinball, RecordConfig};
use looppoint_repro::sim::{Mode, Simulator, StopCond};
use looppoint_repro::uarch::SimConfig;
use looppoint_repro::workloads::{build, InputClass};

fn workload(name: &str) -> (std::sync::Arc<looppoint_repro::isa::Program>, usize) {
    let spec = looppoint_repro::workloads::find(name).unwrap();
    let n = spec.effective_threads(4);
    (build(&spec, InputClass::Test, 4, WaitPolicy::Passive), n)
}

/// The paper's central invariance claim (§III-C): `(PC, count)` markers at
/// main-image loop headers denote the same amount of work no matter how
/// threads interleave. We check the *total* header counts across three
/// completely different execution regimes.
#[test]
fn marker_counts_are_interleaving_invariant() {
    let (p, n) = workload("627.cam4_s.1");
    let cfg = LoopPointConfig::with_slice_base(2_000);
    let analysis = analyze(&p, n, &cfg).unwrap();
    let headers = analysis.dcfg.main_image_loop_headers();
    assert!(!headers.is_empty());

    type PcSink<'a> = &'a mut dyn FnMut(looppoint_repro::isa::Pc);
    let count_with = |count: &dyn Fn(PcSink)| {
        let mut map = std::collections::HashMap::new();
        let mut cb = |pc: looppoint_repro::isa::Pc| {
            *map.entry(pc).or_insert(0u64) += 1;
        };
        count(&mut cb);
        headers
            .iter()
            .map(|h| map.get(h).copied().unwrap_or(0))
            .collect::<Vec<u64>>()
    };

    // Regime 1: round-robin functional execution.
    let rr = count_with(&|cb| {
        let mut m = Machine::new(p.clone(), n);
        let mut tid = 0;
        while !m.is_finished() {
            while m.thread_state(tid) != looppoint_repro::isa::ThreadState::Running {
                tid = (tid + 1) % n;
            }
            if let looppoint_repro::isa::StepResult::Retired(r) = m.step(tid).unwrap() {
                cb(r.pc);
            }
            tid = (tid + 1) % n;
        }
    });

    // Regime 2: constrained replay of a recorded pinball.
    let rep = count_with(&|cb| {
        let pb = Pinball::record(
            &p,
            n,
            RecordConfig {
                quantum: 193,
                ..Default::default()
            },
        )
        .unwrap();
        let mut r = pb.replayer(p.clone());
        while let Some(ret) = r.step().unwrap() {
            cb(ret.pc);
        }
    });

    // Regime 3: timing-driven unconstrained simulation.
    let timed = count_with(&|cb| {
        let mut sim = Simulator::new(p.clone(), n, SimConfig::gainestown(n));
        for h in &headers {
            sim.watch_pc(*h);
        }
        sim.run(Mode::Detailed, None, u64::MAX).unwrap();
        for h in &headers {
            for _ in 0..sim.watch_count(*h) {
                cb(*h);
            }
        }
    });

    assert_eq!(rr, rep, "round-robin vs constrained replay");
    assert_eq!(rr, timed, "round-robin vs timing-driven simulation");
}

/// Analysis markers found on the *constrained* replay must be reachable in
/// *unconstrained* simulation — the bridge LoopPoint depends on.
#[test]
fn analysis_markers_are_simulatable() {
    let (p, n) = workload("644.nab_s.1");
    let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(2_000)).unwrap();
    let simcfg = SimConfig::gainestown(n);
    for lp in &analysis.looppoints {
        let Some(end) = lp.end else { continue };
        let mut sim = Simulator::new(p.clone(), n, simcfg.clone());
        sim.watch_pc(end.pc);
        sim.run(Mode::FastForward, Some(StopCond::Marker(end)), u64::MAX)
            .unwrap_or_else(|e| panic!("marker {end} unreachable: {e}"));
        assert_eq!(sim.watch_count(end.pc), end.count);
    }
}

/// A region checkpoint taken mid-replay must agree with the slicer's
/// instruction accounting: replaying start→end markers covers exactly the
/// slice the profiler measured.
#[test]
fn checkpoints_bracket_profiled_slices() {
    let (p, n) = workload("619.lbm_s.1");
    let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(2_000)).unwrap();
    let pinball = &analysis.pinball;

    let region = analysis
        .looppoints
        .iter()
        .find(|r| r.start.is_some() && r.end.is_some())
        .expect("an interior region exists");
    let (start, end) = (region.start.unwrap(), region.end.unwrap());
    let slice = &analysis.profile.slices[region.slice_index];

    let ck_start = pinball.checkpoint_at(p.clone(), start).unwrap();
    let ck_end = pinball.checkpoint_at(p.clone(), end).unwrap();
    let replayed = ck_end.instructions_before() - ck_start.instructions_before();
    assert_eq!(
        replayed, slice.total_insts,
        "marker-bracketed replay length equals the profiled slice length"
    );
}

/// Wait-policy independence of the analysis: active and passive builds of
/// the same app select the same *number* of region boundaries at the same
/// marker PCs (counts may shift by runtime-code differences).
#[test]
fn spin_filter_makes_analysis_policy_independent() {
    let spec = looppoint_repro::workloads::find("627.cam4_s.1").unwrap();
    let n = spec.effective_threads(4);
    let cfg = LoopPointConfig::with_slice_base(2_000);
    let pa = build(&spec, InputClass::Test, 4, WaitPolicy::Active);
    let pp = build(&spec, InputClass::Test, 4, WaitPolicy::Passive);
    let aa = analyze(&pa, n, &cfg).unwrap();
    let ap = analyze(&pp, n, &cfg).unwrap();
    assert_eq!(
        aa.profile.slices.len(),
        ap.profile.slices.len(),
        "slice counts match across wait policies"
    );
    // Filtered totals are nearly identical; raw totals are not (spins).
    let fa = aa.profile.total_filtered as f64;
    let fp = ap.profile.total_filtered as f64;
    assert!((fa - fp).abs() / fp < 0.01);
    assert!(aa.profile.total_insts > ap.profile.total_insts);
}

/// End-to-end on the demo app: the whole stack through the facade crate.
#[test]
fn facade_end_to_end_demo() {
    use looppoint_repro::looppoint::{
        error_pct, extrapolate, simulate_representatives, simulate_whole,
    };
    let spec = looppoint_repro::workloads::matrix_demo(2);
    let n = spec.effective_threads(4);
    let p = build(&spec, InputClass::Test, 4, WaitPolicy::Passive);
    let simcfg = SimConfig::gainestown(n);
    let analysis = analyze(&p, n, &LoopPointConfig::with_slice_base(2_000)).unwrap();
    let results = simulate_representatives(&analysis, &p, n, &simcfg, true).unwrap();
    let prediction = extrapolate(&results);
    let full = simulate_whole(&p, n, &simcfg).unwrap();
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    assert!(err < 10.0, "demo end-to-end error {err:.2}%");
}
