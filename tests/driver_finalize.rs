//! Driver exit-path tests: telemetry must survive *failing* runs.
//!
//! Historically `--trace-out`/`--metrics-out` were written only on the
//! success path, so any pipeline error lost every recorded span and
//! counter — exactly the runs one most wants telemetry for. The driver now
//! routes all exits through a single finalize step; these tests pin that
//! behavior by running the real binary.
//!
//! They also pin the exit-code contract scripts depend on:
//! `0` success, `1` pipeline/service error, `2` configuration or usage
//! error, and signal death (no exit code) for killed runs.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::Command;

fn driver() -> Command {
    Command::new(env!("CARGO_BIN_EXE_run-looppoint"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("lp-driver-finalize-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn parse_json(path: &Path) -> lp_obs::json::Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    lp_obs::json::parse(&text)
        .unwrap_or_else(|e| panic!("{} must be valid JSON: {e:?}", path.display()))
}

#[test]
fn failing_run_still_writes_parseable_telemetry() {
    let d = tmpdir("fail");
    let metrics = d.join("metrics.json");
    let trace = d.join("trace.json");
    let diag = d.join("diag.json");
    // A step budget far below what analysis needs forces a pipeline error.
    let out = driver()
        .args(["-p", "demo-matrix-1", "-n", "2", "--max-steps", "1000"])
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--diag-report")
        .arg(&diag)
        .output()
        .expect("driver must run");
    assert_eq!(
        out.status.code(),
        Some(1),
        "pipeline errors must exit 1: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("step limit"), "unexpected stderr: {stderr}");

    // All three exports exist and parse, despite the failure.
    let m = parse_json(&metrics);
    assert!(m.get("counters").is_some(), "metrics must have counters");
    let t = parse_json(&trace);
    assert!(
        !t.get("traceEvents")
            .and_then(|v| v.as_arr())
            .unwrap_or(&[])
            .is_empty(),
        "trace must contain the spans recorded before the failure"
    );
    // No workload completed, so the report array is empty — but present
    // and parseable.
    assert_eq!(parse_json(&diag).as_arr().map(<[_]>::len), Some(0));
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn killed_run_leaves_parseable_metrics_at_most_one_interval_stale() {
    let d = tmpdir("kill");
    let metrics = d.join("metrics.json");
    // Enough work to outlive the first flushes, and a short interval so
    // the file appears quickly.
    let mut child = driver()
        .args([
            "-p",
            "demo-matrix-1,demo-matrix-2,demo-matrix-3,demo-matrix-1,demo-matrix-2,demo-matrix-3",
            "-n",
            "4",
            "--flush-interval-ms",
            "50",
        ])
        .arg("--metrics-out")
        .arg(&metrics)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("driver must start");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !metrics.exists() && std::time::Instant::now() < deadline {
        if let Ok(Some(status)) = child.try_wait() {
            panic!("driver exited ({status}) before the first periodic flush");
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(metrics.exists(), "no periodic flush within 30 s");
    child.kill().expect("kill");
    let status = child.wait().expect("wait");
    // Signal death carries no exit code — scripts distinguish it from
    // the numeric 1/2 error exits.
    assert_eq!(status.code(), None, "killed run must die by signal");
    // The mid-run file is complete, valid JSON (atomic temp+rename).
    let m = parse_json(&metrics);
    assert!(m.get("counters").is_some(), "killed-run metrics truncated");
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn successful_run_writes_diag_reports_that_sum() {
    let d = tmpdir("ok");
    let diag = d.join("diag.json");
    let out = driver()
        .args(["-p", "demo-matrix-1,demo-matrix-2", "-n", "2"])
        .arg("--diag-report")
        .arg(&diag)
        .output()
        .expect("driver must run");
    assert!(
        out.status.success(),
        "run failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = parse_json(&diag);
    let reports = doc.as_arr().expect("diag file is a JSON array");
    assert_eq!(reports.len(), 2, "one report per program");
    for r in reports {
        let report = lp_diag::DiagReport::from_value(r).expect("valid diag report");
        let sum: f64 = report.clusters.iter().map(|c| c.error_cycles).sum();
        assert!(
            (sum - report.error_cycles).abs() <= 1e-6 * report.error_cycles.abs().max(1.0),
            "{}: cluster errors {sum} must sum to total {}",
            report.workload,
            report.error_cycles
        );
        assert!(!report.clusters.is_empty());
        assert!(report.profile.wall_us > 0);
    }
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn config_errors_exit_2_before_any_work() {
    // Unknown flag.
    let out = driver().arg("--no-such-flag").output().expect("run");
    assert_eq!(out.status.code(), Some(2), "bad flag must exit 2");

    // Unknown program name: rejected up front, before telemetry files
    // are created.
    let d = tmpdir("cfg");
    let metrics = d.join("metrics.json");
    let out = driver()
        .args(["-p", "no-such-workload"])
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "unknown program must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown program"),
        "unexpected stderr: {stderr}"
    );
    assert!(
        !metrics.exists(),
        "config errors must not leave telemetry files behind"
    );

    // Farm client subcommands validate usage the same way.
    let out = driver()
        .args(["shutdown", "--farm", "127.0.0.1:1", "--mode", "sideways"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "bad shutdown mode must exit 2");
    let _ = std::fs::remove_dir_all(&d);
}

/// Full service-mode round trip through the real binary: `serve` on an
/// ephemeral port, `submit --wait` twice (second is a dedup hit),
/// `status`, then `shutdown` — every leg must exit 0.
#[test]
fn farm_serve_submit_shutdown_roundtrip() {
    let d = tmpdir("farm");
    let mut daemon = driver()
        .args(["serve", "--farm-listen", "127.0.0.1:0", "--workers", "1"])
        .arg("--farm-dir")
        .arg(&d)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon must start");
    // The first stdout line is the parseable bind announcement.
    let mut reader = BufReader::new(daemon.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read bind line");
    let addr = line
        .strip_prefix("farm: listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected bind line: {line:?}"))
        .to_string();

    // Two identical submissions: one compute, one dedup/cache hit.
    for _ in 0..2 {
        let out = driver()
            .args([
                "submit",
                "--farm",
                &addr,
                "-p",
                "demo-matrix-1",
                "--wait",
                "--slice-base",
                "2000",
            ])
            .output()
            .expect("submit");
        assert_eq!(
            out.status.code(),
            Some(0),
            "submit --wait failed: {}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let out = driver()
        .args(["status", "--farm", &addr])
        .output()
        .expect("status");
    assert_eq!(out.status.code(), Some(0));
    let snap = lp_obs::json::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("queue snapshot is JSON");
    assert_eq!(snap.get("done").and_then(|v| v.as_u64()), Some(2));

    let out = driver()
        .args(["shutdown", "--farm", &addr])
        .output()
        .expect("shutdown");
    assert_eq!(out.status.code(), Some(0));
    let status = daemon.wait().expect("daemon join");
    assert_eq!(status.code(), Some(0), "drained daemon must exit 0");
    let _ = std::fs::remove_dir_all(&d);
}
