//! Inspect a workload the way the paper's tooling does: disassemble its
//! images, build the DCFG from a constrained replay, list discovered loops
//! with iteration counts, and emit a Graphviz rendering.
//!
//! Run with: `cargo run --release --example inspect_program [app] [dot-file]`

use lp_dcfg::DcfgBuilder;
use lp_omp::WaitPolicy;
use lp_pinball::{Pinball, RecordConfig};
use lp_workloads::{build, InputClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "619.lbm_s.1".into());
    let spec = lp_workloads::find(&name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let nthreads = spec.effective_threads(4);
    let program = build(&spec, InputClass::Test, 4, WaitPolicy::Passive);

    println!("== {} ==", program.name());
    println!(
        "{} images, {} instruction slots total\n",
        program.images().len(),
        program.code_size()
    );

    // Show the first instructions of the main image.
    let main_img = &program.images()[program.entry_main().image.0 as usize];
    let listing = program.disassemble(main_img);
    println!("main image listing (first 25 lines):");
    for line in listing.lines().take(25) {
        println!("{line}");
    }

    // DCFG from a recorded, replayed execution.
    let pinball = Pinball::record(&program, nthreads, RecordConfig::default())?;
    let mut builder = DcfgBuilder::new(program.clone(), nthreads);
    pinball.replay(program.clone(), &mut [&mut builder], u64::MAX)?;
    let dcfg = builder.finish();

    println!(
        "\nDCFG: {} blocks, {} edges, {} routines, {} natural loops",
        dcfg.blocks().len(),
        dcfg.edges().len(),
        dcfg.routines().len(),
        dcfg.loops().len()
    );
    println!("\nloops (main-image headers are legal region boundaries):");
    let mut loops: Vec<_> = dcfg.loops().to_vec();
    loops.sort_by_key(|l| std::cmp::Reverse(l.iterations));
    for l in loops.iter().take(12) {
        let where_ = if program.is_library_pc(l.header) {
            "library (filtered)"
        } else {
            "main image"
        };
        println!(
            "  {:<28} {:>9} iterations, {:>2} blocks  [{where_}]",
            program.symbolize(l.header),
            l.iterations,
            l.blocks.len()
        );
    }

    // Graphviz export.
    if let Some(path) = std::env::args().nth(2) {
        std::fs::write(&path, dcfg.to_dot())?;
        println!("\nwrote Graphviz rendering to {path} (render with `dot -Tsvg`)");
    } else {
        println!("\n(pass a second argument to write the DCFG as a Graphviz .dot file)");
    }
    Ok(())
}
