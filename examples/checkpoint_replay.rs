//! Record a pinball, demonstrate deterministic constrained replay, take a
//! region checkpoint at a (PC, count) marker, and contrast constrained vs
//! unconstrained timing — §III-H and §V-A.1 in miniature.
//!
//! Run with: `cargo run --release --example checkpoint_replay`

use looppoint::constrained::simulate_constrained;
use looppoint::{analyze, LoopPointConfig};
use lp_isa::Machine;
use lp_omp::WaitPolicy;
use lp_pinball::{Pinball, RecordConfig};
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = lp_workloads::find("657.xz_s.2").unwrap();
    let nthreads = spec.effective_threads(8);
    let program = build(&spec, InputClass::Train, 8, WaitPolicy::Passive);
    println!(
        "== pinballs and replay for {} ({} threads) ==\n",
        spec.name, nthreads
    );

    // Record under flow control (equal thread progress).
    let pinball = Pinball::record(&program, nthreads, RecordConfig::default())?;
    println!(
        "recorded pinball: {} instructions, {} shared-access order events",
        pinball.instructions(),
        pinball.events().len()
    );

    // Constrained replay is bit-deterministic.
    let a = pinball.replay(program.clone(), &mut [], u64::MAX)?;
    let b = pinball.replay(program.clone(), &mut [], u64::MAX)?;
    assert_eq!(a, b);
    println!(
        "two replays retire identical streams: {} instructions each",
        a.instructions
    );

    // Take a region checkpoint at a (PC, count) marker found by analysis.
    let analysis = analyze(&program, nthreads, &LoopPointConfig::with_slice_base(8_000))?;
    let marker = analysis
        .looppoints
        .iter()
        .find_map(|r| r.start)
        .expect("a bounded region");
    let ckpt = pinball.checkpoint_at(program.clone(), marker)?;
    println!(
        "\ncheckpoint at marker {marker}: skips {} instructions of replay",
        ckpt.instructions_before()
    );
    let mut tail = pinball.replayer_from(program.clone(), &ckpt);
    let mut tail_insts = 0u64;
    while tail.step()?.is_some() {
        tail_insts += 1;
    }
    assert_eq!(
        ckpt.instructions_before() + tail_insts,
        pinball.instructions()
    );
    println!("resumed replay completes the remaining {tail_insts} instructions exactly");

    // Constrained vs unconstrained timing of the whole app.
    let simcfg = SimConfig::gainestown(nthreads);
    let constrained = simulate_constrained(&pinball, &program, &simcfg, u64::MAX)?;
    let unconstrained = lp_sim::simulate_full(program.clone(), nthreads, simcfg, u64::MAX)?;
    println!(
        "\nconstrained runtime:   {:>10} cycles (artificial shared-access stalls)",
        constrained.cycles
    );
    println!("unconstrained runtime: {:>10} cycles", unconstrained.cycles);
    println!(
        "constrained-vs-unconstrained gap: {:.1}% — why LoopPoint simulates regions unconstrained",
        (constrained.cycles as f64 / unconstrained.cycles as f64 - 1.0) * 100.0
    );

    // A plain functional run gives the same final memory as replay.
    let mut m = Machine::new(program, nthreads);
    m.run_to_completion(u64::MAX)?;
    println!(
        "\nfunctional run retires {} instructions (scheduling-dependent)",
        m.global_retired()
    );
    Ok(())
}
