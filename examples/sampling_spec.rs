//! Sample a SPEC-like application under both OpenMP wait policies and
//! compare LoopPoint against the naive instruction-count baseline —
//! the §II motivation in one program.
//!
//! Run with: `cargo run --release --example sampling_spec [app-name]`

use looppoint::baselines::{analyze_naive, extrapolate_naive, simulate_naive_regions};
use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives, simulate_whole, LoopPointConfig,
};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "627.cam4_s.1".into());
    let spec = lp_workloads::find(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; try e.g. 627.cam4_s.1"));
    let nthreads = spec.effective_threads(8);
    let simcfg = SimConfig::gainestown(8);
    let lp_cfg = LoopPointConfig::with_slice_base(8_000);

    println!("== {name}: LoopPoint vs naive MT-SimPoint, active vs passive ==\n");
    println!(
        "{:<10} {:>16} {:>16}",
        "policy", "LoopPoint err%", "naive err%"
    );
    for policy in [WaitPolicy::Passive, WaitPolicy::Active] {
        let program = build(&spec, InputClass::Train, 8, policy);

        // LoopPoint.
        let analysis = analyze(&program, nthreads, &lp_cfg)?;
        let results = simulate_representatives(&analysis, &program, nthreads, &simcfg, true)?;
        let prediction = extrapolate(&results);
        let full = simulate_whole(&program, nthreads, &simcfg)?;
        let lp_err = error_pct(prediction.total_cycles, full.cycles as f64);

        // Naive baseline: fixed instruction-count slices, no filtering.
        let naive = analyze_naive(
            &analysis.pinball,
            &program,
            &analysis.dcfg,
            lp_cfg.slice_base * nthreads as u64,
            &lp_cfg.simpoint,
            u64::MAX,
        )?;
        let naive_results = simulate_naive_regions(&naive, &program, nthreads, &simcfg, u64::MAX)?;
        let naive_err = error_pct(extrapolate_naive(&naive_results), full.cycles as f64);

        println!(
            "{:<10} {:>15.2}% {:>15.2}%",
            policy.to_string(),
            lp_err,
            naive_err
        );
    }
    println!(
        "\nExpected shape (paper §II/§V-A): LoopPoint stays ~2%; the naive adaptation\n\
         errs, and errs worse under the active policy where spin loops shift\n\
         instruction-count boundaries between runs."
    );
    Ok(())
}
