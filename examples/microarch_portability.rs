//! Fig. 5b in example form: analyze once, predict two microarchitectures.
//!
//! Run with: `cargo run --release --example microarch_portability`

use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives, simulate_whole, LoopPointConfig,
};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = lp_workloads::find("603.bwaves_s.1").unwrap();
    let nthreads = spec.effective_threads(8);
    let program = build(&spec, InputClass::Train, 8, WaitPolicy::Passive);

    println!(
        "== microarchitecture portability of looppoints ({}) ==\n",
        spec.name
    );
    // ONE analysis: architecture-level only (no microarchitectural inputs).
    let analysis = analyze(&program, nthreads, &LoopPointConfig::with_slice_base(8_000))?;
    println!(
        "analysis chose {} looppoints from {} slices (microarchitecture-independent)\n",
        analysis.looppoints.len(),
        analysis.profile.slices.len()
    );

    for simcfg in [SimConfig::gainestown(8), SimConfig::gainestown_inorder(8)] {
        let results = simulate_representatives(&analysis, &program, nthreads, &simcfg, true)?;
        let prediction = extrapolate(&results);
        let full = simulate_whole(&program, nthreads, &simcfg)?;
        println!(
            "{:<24} predicted {:>10.0} cycles, actual {:>10}, error {:.2}%  (IPC {:.2})",
            simcfg.name,
            prediction.total_cycles,
            full.cycles,
            error_pct(prediction.total_cycles, full.cycles as f64),
            full.ipc(),
        );
    }
    println!("\nSame markers, both machines: the selection is microarchitecture-portable.");
    Ok(())
}
