//! Quickstart: the artifact's demo flow (`run-looppoint.py -p demo-matrix-1`)
//! end-to-end — profile, cluster, simulate representatives, extrapolate,
//! and report error + speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives, simulate_whole, speedups,
    LoopPointConfig,
};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, matrix_demo, InputClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nthreads = 8;
    let spec = matrix_demo(1);
    println!(
        "== LoopPoint quickstart: {} with {} threads ==",
        spec.name, nthreads
    );

    let program = build(&spec, InputClass::Test, nthreads, WaitPolicy::Passive);
    let simcfg = SimConfig::gainestown(nthreads);

    // 1. One-time, up-front analysis: record a flow-controlled pinball,
    //    replay it for the DCFG and spin-filtered BBV slices, cluster.
    let analysis = analyze(&program, nthreads, &LoopPointConfig::with_slice_base(4_000))?;
    println!(
        "analysis: {} slices -> {} looppoints (k={} clusters)",
        analysis.profile.slices.len(),
        analysis.looppoints.len(),
        analysis.clustering.k
    );
    for lp in &analysis.looppoints {
        println!(
            "  looppoint: slice {:3}  multiplier {:6.2}  start {:?}  end {:?}",
            lp.slice_index,
            lp.multiplier,
            lp.start.map(|m| m.to_string()),
            lp.end.map(|m| m.to_string()),
        );
    }

    // 2. Simulate each representative unconstrained (warmup + detailed),
    //    in parallel.
    let results = simulate_representatives(&analysis, &program, nthreads, &simcfg, true)?;

    // 3. Extrapolate whole-program performance (Eq. 1-2).
    let prediction = extrapolate(&results);

    // 4. Validate against the full detailed run (affordable at demo scale).
    let full = simulate_whole(&program, nthreads, &simcfg)?;
    let err = error_pct(prediction.total_cycles, full.cycles as f64);
    let sp = speedups(&analysis, &results, &full);

    println!(
        "\npredicted runtime: {:>12.0} cycles",
        prediction.total_cycles
    );
    println!("actual runtime:    {:>12} cycles", full.cycles);
    println!("prediction error:  {err:.2}%");
    println!(
        "speedup: theoretical serial {:.1}x / parallel {:.1}x; actual serial {:.1}x / parallel {:.1}x",
        sp.theoretical_serial, sp.theoretical_parallel, sp.actual_serial, sp.actual_parallel
    );
    Ok(())
}
