//! Offline drop-in subset of the `criterion` benchmarking crate.
//!
//! Implements the API surface the workspace's `criterion_micro` bench
//! target uses — [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! [`black_box`], benchmark groups with [`Throughput`] — with a simple
//! median-of-samples timer and a plain-text report instead of criterion's
//! statistical machinery and HTML output. Good enough to spot order-of-
//! magnitude regressions in the hot paths; not a statistics suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier: prevents the optimizer from deleting the
/// computation producing `x`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    /// Criterion-API shim: parses (and ignores) CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Criterion-API shim: prints the closing summary.
    pub fn final_summary(&self) {
        println!("benchmarks complete");
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration, then timed samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples (Bencher::iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().unwrap();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("  {name}: median {median:.2?} [min {min:.2?}, max {max:.2?}]{rate}");
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            println!("benchmarks complete");
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
