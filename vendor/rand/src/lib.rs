//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this tiny vendored crate provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `u64`/`u32`/`f64`/`bool`;
//! * [`Rng::gen_range`] over half-open integer ranges.
//!
//! The statistical quality (xoshiro256\*\* seeded through SplitMix64) is more
//! than adequate for k-means++ seeding and random projection; the stream is
//! **not** identical to the real `rand::StdRng` (ChaCha12), so clustering
//! seeds produce different — but equally valid and fully deterministic —
//! draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pre-configured generators (mirror of `rand::rngs`).
pub mod rngs {
    /// Deterministic pseudo-random generator (xoshiro256\*\*).
    ///
    /// Mirrors `rand::rngs::StdRng`'s role: a seedable, reproducible RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the real rand crate documents.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        // Avoid the (vanishingly unlikely) all-zero state.
        let state = if state == [0; 4] { [1, 2, 3, 4] } else { state };
        rngs::StdRng { state }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types drawable from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws a value in `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per draw, irrelevant for this workspace's uses.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Core generation methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of an inferred type (uniform over its "standard"
    /// distribution, like `rand`'s `Standard`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range `lo..hi`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ, {same} collisions");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        // Both endpoints of a tiny range are reachable.
        let mut seen = [false; 2];
        for _ in 0..1000 {
            seen[r.gen_range(0u64..2) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
