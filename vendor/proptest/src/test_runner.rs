//! Deterministic case generation: config and RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a string (used to derive a per-test seed from its name).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic RNG driving value generation (SplitMix64-seeded
/// xorshift*). Each `(test name, case index)` pair yields an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for case `case` of the test whose name hashed to `name_seed`.
    pub fn deterministic(name_seed: u64, case: u64) -> Self {
        // SplitMix64 of the combined seed: decorrelates consecutive cases.
        let mut z = name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0xDEAD_BEEF } else { z },
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n); panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic(1, 2);
        let mut b = TestRng::deterministic(1, 2);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_decorrelated() {
        let mut a = TestRng::deterministic(1, 0);
        let mut b = TestRng::deterministic(1, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::deterministic(3, 4);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
