//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// This offline subset generates directly (no value trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `depth` levels of `f`-generated
    /// branches over `self` as the leaf. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility and
    /// ignored (depth alone bounds recursion here).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = f(cur).boxed();
            cur = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        cur
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Picks uniformly among several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Numeric types usable as range strategies (`0u64..100`).
pub trait RangeValue: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            #[inline]
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let off = (((rng.next_u64() as u128) * span) >> 64) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    #[inline]
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl RangeValue for f32 {
    #[inline]
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range strategy");
        lo + (rng.unit_f64() as f32) * (hi - lo)
    }
}

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Draw in [start, end) and occasionally return end itself, so the
        // upper bound is reachable without a widening cast.
        if rng.next_u64().is_multiple_of(257) {
            *self.end()
        } else {
            T::draw(rng, *self.start(), *self.end())
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic(0xABCD, 7)
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i16..5).generate(&mut r);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn tuples_and_map() {
        let s = (0u8..4, 0u8..4).prop_map(|(a, b)| u16::from(a) * 10 + u16::from(b));
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 10 < 4 && v / 10 < 4);
        }
    }

    #[test]
    fn union_covers_all_options() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug)]
        #[allow(dead_code)] // Leaf's payload exercises generation, not reads.
        enum T {
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..4).prop_map(T::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = s.generate(&mut r);
            let d = depth(&t);
            assert!(d <= 3, "depth {d} exceeds bound");
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 1, "recursion should sometimes branch");
    }
}
