//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: either an exact size
/// or a (half-open / inclusive) range of sizes. Mirrors proptest's
/// `SizeRange` conversions.
#[derive(Debug, Clone)]
pub struct SizeSpec {
    /// Inclusive lower bound.
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeSpec {
    fn from(n: usize) -> Self {
        SizeSpec { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeSpec {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range for collection::vec");
        SizeSpec {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeSpec {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range for collection::vec");
        SizeSpec {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s with lengths drawn from `size` and elements from
/// `elem`. `size` may be an exact `usize`, a `Range<usize>`, or a
/// `RangeInclusive<usize>`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeSpec>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeSpec,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min).max(1);
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let s = vec(0u8..10, 2..7);
        let mut r = TestRng::deterministic(9, 9);
        let mut seen_min = false;
        let mut seen_large = false;
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((2..7).contains(&v.len()));
            seen_min |= v.len() == 2;
            seen_large |= v.len() == 6;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen_min && seen_large);
    }

    #[test]
    fn exact_and_inclusive_sizes() {
        let s = vec(0u8..10, 3usize);
        let mut r = TestRng::deterministic(1, 1);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r).len(), 3);
        }
        let s = vec(0u8..10, 2..=4);
        for _ in 0..100 {
            assert!((2..=4).contains(&s.generate(&mut r).len()));
        }
    }

    #[test]
    fn nested_vectors() {
        let s = vec(vec(0u64..4, 1..3), 1..4);
        let mut r = TestRng::deterministic(11, 3);
        let v = s.generate(&mut r);
        assert!(!v.is_empty());
        assert!(v.iter().all(|inner| !inner.is_empty()));
    }
}
