//! `any::<T>()` — whole-domain strategies with edge-case bias.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T` (integers are biased ~12% of
/// the time toward the edge values `MIN`, `MAX`, 0 and 1, which is where
/// arithmetic bugs live).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                if rng.next_u64().is_multiple_of(8) {
                    const EDGES: [$t; 4] = [<$t>::MIN, <$t>::MAX, 0, 1];
                    EDGES[rng.below(EDGES.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64().is_multiple_of(8) {
            const EDGES: [f64; 4] = [0.0, 1.0, -1.0, 1e300];
            EDGES[rng.below(EDGES.len())]
        } else {
            // Uniform over a wide but finite range.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_hit_edges_eventually() {
        let mut r = TestRng::deterministic(5, 5);
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..2000 {
            match u64::arbitrary(&mut r) {
                0 => saw_zero = true,
                u64::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    fn bools_take_both_values() {
        let mut r = TestRng::deterministic(6, 6);
        let trues = (0..100).filter(|_| bool::arbitrary(&mut r)).count();
        assert!(trues > 20 && trues < 80);
    }
}
