//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so this
//! vendored crate re-implements the exact `proptest` surface the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc comments,
//!   `x in strategy` and `x: Type` parameters);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_oneof!`];
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive` and
//!   `boxed`;
//! * [`strategy::Just`], range strategies (`0u64..100`, `0.5f64..2.0`),
//!   tuple strategies, [`collection::vec`] and [`arbitrary::any`].
//!
//! Semantics differences from real proptest, deliberately accepted:
//! generation is a fixed number of deterministic cases (default 32, seeded
//! from the test name, so failures reproduce exactly), and there is **no
//! shrinking** — a failing case panics with the case number so it can be
//! replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// The `proptest::prelude` — everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path used as `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Supports the subset of real proptest syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     /// Doc comment.
///     #[test]
///     fn my_prop(x in 0u64..100, flag: bool) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Entry with an explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    // Internal: no functions left.
    (@fns ($cfg:expr);) => {};
    // Internal: one function, then recurse on the remainder.
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let name_seed = $crate::test_runner::fnv1a(stringify!($name));
            for case in 0..cfg.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(name_seed, u64::from(case));
                $crate::proptest!(@bind __proptest_rng; $($params)*);
                $body
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    // Internal: parameter binders ("x in strategy" / "x: Type"), with or
    // without trailing entries.
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $x:ident in $s:expr) => {
        let $x = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    (@bind $rng:ident; $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $x:ident : $t:ty) => {
        let $x = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$t>(), &mut $rng);
    };
    (@bind $rng:ident; $x:ident : $t:ty, $($rest:tt)*) => {
        let $x = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    // Entry without a config (must come after the config arm).
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!` — this subset does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
